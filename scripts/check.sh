#!/usr/bin/env bash
# Local mirror of the CI gate: formatting, lints, build, tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
# Failure-handling suites, run explicitly so a filtered `cargo test`
# invocation can't silently skip them.
cargo test -q -p cosoft-server --test server_core
cargo test -q -p cosoft-server --test store_props no_leaks_after_all_instances_deregister
cargo test -q -p cosoft-core --test reconnect_sim
cargo test -q --test tcp_reconnect
