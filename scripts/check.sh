#!/usr/bin/env bash
# Local mirror of the CI gate: formatting, lints, build, tests, audit.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
# Protocol/source audit. Text lints: Message enum vs codec tags vs
# golden vectors, plus the manifest scan keeping the fault-injection
# feature out of default features and release dependency graphs.
# AST rules over the parsed workspace: panic-freedom
# ratchet against audit-baseline.toml, blocking calls reachable from
# the poll loop, lock-order cycles, restricted teardown APIs, crate
# lint headers, dispatch coverage.
cargo run -q -p cosoft-audit
# Failure-handling suites, run explicitly so a filtered `cargo test`
# invocation can't silently skip them.
cargo test -q -p cosoft-server --test server_core
cargo test -q -p cosoft-server --test store_props no_leaks_after_all_instances_deregister
cargo test -q -p cosoft-core --test reconnect_sim
cargo test -q --test tcp_reconnect
# Schedule-exploring checker: every interleaving of 3 clients over
# overlapping couple groups — and, since the shard refactor, the same
# explorer driving merge/split/disconnect schedules across 2 shards —
# with invariants checked at every step.
cargo test -q -p cosoft-server --test lock_model
# Shard handoff failure modes (requester death mid-merge, mutation
# during freeze, idempotent re-merge) plus the sharded end-to-end sim.
cargo test -q -p cosoft-server --test shard_handoff
cargo test -q -p cosoft-core --test shard_sim
# Fan-out throughput smoke: the encode-once broadcast bench must run
# and emit every group-size series into BENCH_fanout.json.
cargo run -q --release -p cosoft-bench --bin fanout -- --smoke
# Shard-scaling smoke: every shard-count series into BENCH_shard.json.
cargo run -q --release -p cosoft-bench --bin shard -- --smoke
# Connection scale: the readiness-driven host must carry ≥1k concurrent
# sockets on its fixed poll pool (gate), and the scaling bench must emit
# every conn-count series into BENCH_connscale.json (smoke). Both want
# ~2 fds per connection, so raise the soft nofile limit if we can.
ulimit -n 16384 2>/dev/null || true
cargo test -q --release --test tcp_connscale
cargo run -q --release -p cosoft-bench --bin connscale -- --smoke
# Chaos suite: scripted peer-side faults (torn/garbage/oversized
# frames, handshake stalls) plus, with the fault-injection feature,
# deterministic injected partial writes / short reads / WouldBlock
# storms and a seeded randomized soak. Every fault must end clean:
# exactly one Disconnected per torn connection, no poll-thread death.
cargo test -q --test tcp_chaos
cargo test -q --features fault-injection --test tcp_chaos
# Overload-control smoke: well-behaved goodput must hold within 90% of
# baseline against a 16x flooder (shed, told Busy, then evicted) —
# asserted by the bench's own unit tests, series into BENCH_overload.json.
cargo test -q -p cosoft-bench --lib overload
cargo run -q --release -p cosoft-bench --bin overload -- --smoke
# Delta-sync smoke: a single-attribute change in a depth-6 tree must
# travel in ≤25% of the full-snapshot bytes (gated by the bench's own
# unit tests), every depth series into BENCH_deltasync.json.
cargo test -q -p cosoft-bench --lib deltasync
cargo run -q --release -p cosoft-bench --bin deltasync -- --smoke
