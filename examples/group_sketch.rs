//! GroupDesign-style shared sketching on COSOFT coupling, including the
//! time-relaxed "keep modifications private until commitment" mode
//! (decouple → draw → synchronize-by-state → re-couple).
//!
//! Run with `cargo run --example group_sketch`.

use cosoft::apps::sketch::{
    board_path, clear_event, commit_private_work, draw_event, go_private, join_board,
    sketch_session, strokes,
};
use cosoft::core::harness::SimHarness;
use cosoft::wire::UserId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = SimHarness::with_latency(5, 1_000);
    let maya = h.add_session(sketch_session(UserId(1), "maya"));
    let noel = h.add_session(sketch_session(UserId(2), "noel"));
    h.settle();

    // Maya starts drawing alone.
    h.session_mut(maya).user_event(draw_event(vec![(10, 10), (100, 10), (100, 80)]))?;
    h.settle();

    // Noel joins late: the current picture transfers by state copy, then
    // the canvases couple for live strokes.
    let mayas_board = h.session(maya).gid(&board_path())?;
    join_board(h.session_mut(noel), mayas_board.clone())?;
    h.settle();
    println!("noel joined with {} stroke(s) already on the board", strokes(h.session(noel)).len());

    h.session_mut(noel).user_event(draw_event(vec![(50, 50), (60, 60)]))?;
    h.settle();
    println!(
        "live sync: maya={} noel={} strokes",
        strokes(h.session(maya)).len(),
        strokes(h.session(noel)).len()
    );

    // Noel goes private to try something without disturbing the group.
    go_private(h.session_mut(noel), mayas_board.clone())?;
    h.settle();
    for k in 0..3 {
        h.session_mut(noel).user_event(draw_event(vec![(200 + k, 200), (210 + k, 220)]))?;
    }
    h.settle();
    println!(
        "private phase: maya={} noel={} strokes",
        strokes(h.session(maya)).len(),
        strokes(h.session(noel)).len()
    );

    // Commitment: one state copy publishes the whole private batch.
    commit_private_work(h.session_mut(noel), mayas_board)?;
    h.settle();
    println!(
        "after commitment: maya={} noel={} strokes",
        strokes(h.session(maya)).len(),
        strokes(h.session(noel)).len()
    );

    // A clear propagates to everyone while coupled.
    h.session_mut(maya).user_event(clear_event())?;
    h.settle();
    println!(
        "after clear: maya={} noel={} strokes",
        strokes(h.session(maya)).len(),
        strokes(h.session(noel)).len()
    );
    Ok(())
}
