//! Quickstart: couple two UI objects between two application instances,
//! watch multiple execution synchronize them, then pull state, undo it,
//! and decouple — all on the deterministic simulated network.
//!
//! Run with `cargo run --example quickstart`.

use cosoft::core::harness::SimHarness;
use cosoft::core::session::Session;
use cosoft::uikit::{render, spec, Toolkit};
use cosoft::wire::{AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One simulated deployment: a server plus two instances, 2 ms apart.
    let mut h = SimHarness::with_latency(42, 2_000);

    let form = r#"form notes title="Shared Notes" {
      textfield text text=""
      toggle important checked=false
    }"#;
    let alice = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(form)?),
        UserId(1),
        "alice-ws",
        "notes",
    ));
    let bob = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(form)?),
        UserId(2),
        "bob-ws",
        "notes",
    ));
    h.settle();
    println!("registered: alice={:?} bob={:?}", h.instance_of(alice), h.instance_of(bob));

    // Couple alice's text field to bob's — partial coupling: the toggle
    // stays private.
    let field = ObjectPath::parse("notes.text")?;
    let bobs_field = h.session(bob).gid(&field)?;
    h.session_mut(alice).couple(&field, bobs_field.clone())?;
    h.settle();

    // Alice types; the callback event re-executes in bob's instance.
    h.session_mut(alice).user_event(UiEvent::new(
        field.clone(),
        EventKind::TextCommitted,
        vec![Value::Text("meet at noon".into())],
    ))?;
    h.settle();

    println!("\n-- after alice types (virtual time {} µs) --", h.net.now_us());
    println!("alice:\n{}", render::render(h.session(alice).toolkit().tree()));
    println!("bob:\n{}", render::render(h.session(bob).toolkit().tree()));

    // Bob flips his private toggle: no traffic, no effect on alice.
    let toggle = ObjectPath::parse("notes.important")?;
    let before = h.net.stats().messages_sent;
    h.session_mut(bob).user_event(UiEvent::new(
        toggle,
        EventKind::Toggled,
        vec![Value::Bool(true)],
    ))?;
    h.settle();
    println!(
        "bob's toggle was private: {} protocol messages sent for it",
        h.net.stats().messages_sent - before
    );

    // Decoupling: the objects keep existing and diverge independently.
    h.session_mut(alice).decouple(&field, bobs_field.clone())?;
    h.settle();
    h.session_mut(alice).user_event(UiEvent::new(
        field.clone(),
        EventKind::TextCommitted,
        vec![Value::Text("alice alone".into())],
    ))?;
    h.settle();
    let read = |h: &SimHarness, node, path: &ObjectPath| -> String {
        let tree = h.session(node).toolkit().tree();
        let id = tree.resolve(path).expect("widget exists");
        tree.attr(id, &AttrName::Text).expect("text attr").to_string()
    };
    println!("\n-- after decoupling --");
    println!("alice: {}", read(&h, alice, &field));
    println!("bob:   {}", read(&h, bob, &field));

    // Synchronization by state: alice pushes her divergent field onto
    // bob's (CopyTo), then bob undoes it from the server's historical UI
    // states — decoupled information exchange without re-coupling.
    h.session_mut(alice).copy_to(&field, bobs_field, CopyMode::Strict)?;
    h.settle();
    println!("bob after copy-to: {}", read(&h, bob, &field));
    let bobs_gid = h.session(bob).gid(&field)?;
    h.session_mut(bob).undo(bobs_gid);
    h.settle();
    println!("bob after undo:    {}", read(&h, bob, &field));
    println!(
        "\ntotals: {} messages, {} bytes, {} µs virtual time",
        h.net.stats().messages_sent,
        h.net.stats().bytes_sent,
        h.net.now_us()
    );
    Ok(())
}
