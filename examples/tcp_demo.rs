//! The same coupling stack over real TCP sockets: a server thread plus
//! two client sessions, coupling a text field end-to-end — then a
//! simulated network failure under one client, which redials, rejoins
//! under its resume token, and reconverges.
//!
//! Run with `cargo run --example tcp_demo`.

use std::time::Duration;

use cosoft::core::session::Session;
use cosoft::net::tcp::{ReconnectPolicy, TcpHostConfig};
use cosoft::runtime::{TcpServer, TcpSession};
use cosoft::server::LivenessConfig;
use cosoft::uikit::{spec, Toolkit};
use cosoft::wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

fn field_text(s: &Session, path: &ObjectPath) -> String {
    let tree = s.toolkit().tree();
    let id = tree.resolve(path).expect("widget exists");
    tree.attr(id, &AttrName::Text).expect("text attribute").to_string()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10s quarantine grace period keeps a dropped client's instance
    // id, couples, and access rights resumable while it redials.
    let server = TcpServer::spawn_with_liveness(
        "127.0.0.1:0",
        TcpHostConfig::default(),
        LivenessConfig { grace_us: 10_000_000, idle_timeout_us: 0, max_quarantined: 0 },
    )?;
    println!("server listening on {}", server.addr());

    let form = r#"form pad { textfield line text="" }"#;
    let make = |user, host: &str| {
        Session::new(
            Toolkit::from_tree(spec::build_tree(form).expect("static spec")),
            UserId(user),
            host,
            "tcp-demo",
        )
    };
    let mut alice = TcpSession::connect(server.addr(), make(1, "alice"))?;
    let mut bob = TcpSession::connect_with_reconnect(
        server.addr(),
        make(2, "bob"),
        ReconnectPolicy::default(),
    )?;
    println!(
        "registered over TCP: alice={:?} bob={:?}",
        alice.session().instance(),
        bob.session().instance()
    );

    // Couple alice's field to bob's.
    let path = ObjectPath::parse("pad.line")?;
    let bobs = bob.session().gid(&path)?;
    alice.session_mut().couple(&path, bobs)?;
    alice.pump_until(Duration::from_secs(5), |s| {
        s.is_coupled(&ObjectPath::parse("pad.line").expect("ok"))
    })?;
    bob.pump_until(Duration::from_secs(5), |s| {
        s.is_coupled(&ObjectPath::parse("pad.line").expect("ok"))
    })?;
    println!("coupled over TCP");

    // Alice types; the event crosses real sockets and re-executes at bob.
    alice.session_mut().user_event(UiEvent::new(
        path.clone(),
        EventKind::TextCommitted,
        vec![Value::Text("hello over tcp".into())],
    ))?;
    alice.flush()?;
    let synced = {
        let p = path.clone();
        bob.pump_until(Duration::from_secs(5), move |s| {
            let tree = s.toolkit().tree();
            tree.resolve(&p)
                .and_then(|id| tree.attr(id, &AttrName::Text).ok())
                .map(|v| v.as_text() == Some("hello over tcp"))
                .unwrap_or(false)
        })?
    };
    // Let alice finish her half of the floor-control round.
    alice.pump_for(Duration::from_millis(100))?;
    println!("synchronized: {synced}");
    println!("alice sees: {}", field_text(alice.session(), &path));
    println!("bob sees:   {}", field_text(bob.session(), &path));

    // The network fails under bob; alice keeps editing meanwhile. Bob's
    // client redials, rejoins under its resume token, and the session
    // pulls the missed state with a CopyFrom resync.
    let bob_instance = bob.session().instance();
    bob.client().sever();
    alice.session_mut().user_event(UiEvent::new(
        path.clone(),
        EventKind::TextCommitted,
        vec![Value::Text("edited while bob was gone".into())],
    ))?;
    alice.flush()?;
    let recovered = {
        let p = path.clone();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut ok = false;
        while std::time::Instant::now() < deadline && !ok {
            alice.pump_for(Duration::from_millis(50))?;
            bob.pump_for(Duration::from_millis(50))?;
            let tree = bob.session().toolkit().tree();
            ok = tree
                .resolve(&p)
                .and_then(|id| tree.attr(id, &AttrName::Text).ok())
                .map(|v| v.as_text() == Some("edited while bob was gone"))
                .unwrap_or(false);
        }
        ok
    };
    println!(
        "reconnected: {recovered} (same instance: {}, {} redial(s))",
        bob.session().instance() == bob_instance,
        bob.client().reconnects()
    );

    alice.close();
    bob.close();

    // Observability: what the round cost at both layers.
    let core = server.server_stats();
    println!(
        "server core: {} granted / {} rejected, {} messages out (max fan-out {}), \
         {} transfers completed",
        core.events_granted,
        core.events_rejected,
        core.messages_out,
        core.max_fanout,
        core.transfers_completed
    );
    println!(
        "liveness:    {} quarantine(s), {} resume(s), {} ping(s) answered, \
         {} expiries",
        core.quarantines, core.resumes, core.pings, core.quarantine_expiries
    );
    let net = server.net_stats();
    println!(
        "transport:   {} frames / {} bytes out, {} frames / {} bytes in, \
         {} coalesced writes, {} slow-consumer evictions",
        net.frames_out,
        net.bytes_out,
        net.frames_in,
        net.bytes_in,
        net.coalesced_writes,
        net.slow_consumer_evictions
    );
    Ok(())
}
