//! The COSOFT classroom scenario of §4: a teacher on the electronic
//! blackboard, three students on workstations. Students work privately;
//! one asks for help, the intelligent demon reports another; the teacher
//! inspects the buffered requests and opens a joint session by remotely
//! coupling the student's parameter panel to the blackboard — the
//! simulation displays regenerate locally (indirect coupling).
//!
//! Run with `cargo run --example classroom`.

use cosoft::apps::classroom::{
    demon_check, display_curve, inbox, join_student, leave_student, request_help, set_param_event,
    student_session, teacher_session,
};
use cosoft::core::harness::SimHarness;
use cosoft::uikit::render;
use cosoft::wire::{EventKind, ObjectPath, UiEvent, UserId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = SimHarness::with_latency(7, 1_500);
    let teacher = h.add_session(teacher_session(UserId(1)));
    let anna = h.add_session(student_session(UserId(2), "anna"));
    let ben = h.add_session(student_session(UserId(3), "ben"));
    let cara = h.add_session(student_session(UserId(4), "cara"));
    h.settle();

    // Everyone works privately on the exercise first.
    h.session_mut(anna).user_event(set_param_event("exercise", "amplitude", 2.0))?;
    h.session_mut(ben).user_event(set_param_event("exercise", "amplitude", 0.5))?;
    h.session_mut(cara).user_event(set_param_event("exercise", "frequency", 3.0))?;
    h.settle();
    println!("private phase done; no coupling yet, {} msgs", h.net.stats().messages_sent);

    // Anna asks for help directly; Ben's demon notices repeated failures.
    request_help(h.session_mut(anna), "my curve looks wrong");
    h.settle();
    let answer = ObjectPath::parse("exercise.answer")?;
    let mut attempts = 0;
    for wrong in ["1.3", "0.7"] {
        h.session_mut(ben).user_event(UiEvent::new(
            answer.clone(),
            EventKind::TextCommitted,
            vec![Value::Text(wrong.into())],
        ))?;
        demon_check(h.session_mut(ben), "2.0", &mut attempts, 2);
    }
    h.settle();

    println!("\nteacher inbox:");
    for msg in inbox(h.session(teacher)) {
        println!("  • {msg}");
    }

    // The teacher opens a joint session with Anna: remote-couple the
    // parameter panels. The classroom roster comes from the server.
    h.session_mut(teacher).query_instances();
    h.settle();
    let ti = h.instance_of(teacher).expect("registered");
    let ai = h.instance_of(anna).expect("registered");
    join_student(h.session_mut(teacher), ti, ai);
    h.settle();
    println!("\njoint session with anna opened (RemoteCouple of the parameter panels)");

    // The teacher demonstrates on the blackboard; Anna's display follows
    // because the *parameters* are coupled — the curve itself never
    // crosses the wire.
    let bytes_before = h.net.stats().bytes_sent;
    h.session_mut(teacher).user_event(set_param_event("board", "amplitude", 2.0))?;
    h.session_mut(teacher).user_event(set_param_event("board", "frequency", 1.0))?;
    h.settle();
    let wire_cost = h.net.stats().bytes_sent - bytes_before;
    let teacher_curve = display_curve(h.session(teacher).toolkit().tree(), "board");
    let anna_curve = display_curve(h.session(anna).toolkit().tree(), "exercise");
    println!(
        "displays identical: {} | curve points: {} | bytes on wire: {} (indirect coupling)",
        teacher_curve == anna_curve,
        teacher_curve.len(),
        wire_cost
    );

    // Ben stays uncoupled and unaffected.
    let ben_curve = display_curve(h.session(ben).toolkit().tree(), "exercise");
    println!("ben's private display untouched: {}", ben_curve != teacher_curve);

    println!("\nblackboard:\n{}", render::render(h.session(teacher).toolkit().tree()));

    // Close the joint session; Anna continues on her own.
    leave_student(h.session_mut(teacher), ti, ai);
    h.settle();
    h.session_mut(anna).user_event(set_param_event("exercise", "amplitude", 4.0))?;
    h.settle();
    let after = display_curve(h.session(teacher).toolkit().tree(), "board");
    println!(
        "after decoupling, anna's work no longer reaches the board: {}",
        after == teacher_curve
    );
    Ok(())
}
