//! The paper's headline feature: coupling between **heterogeneous**
//! application instances. A monitoring dashboard (labels and a table)
//! couples with an editing tool (text fields and a slider) through
//! declared correspondences; structurally different forms are
//! reconciled by destructive merging and flexible matching.
//!
//! Run with `cargo run --example heterogeneous`.

use cosoft::core::harness::SimHarness;
use cosoft::core::session::Session;
use cosoft::uikit::{render, spec, Toolkit};
use cosoft::wire::{AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value, WidgetKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = SimHarness::with_latency(3, 1_000);

    // Two *different applications*: an editor and a read-only dashboard.
    let editor_spec = r#"form editor title="Parameter Editor" {
      textfield name text="reactor-7"
      slider pressure value=0.4 min=0.0 max=1.0
      textfield notes text=""
    }"#;
    let dashboard_spec = r#"form dash title="Operations Dashboard" {
      label name text="(unknown)"
      slider pressure value=0.0 min=0.0 max=1.0
      label notes text=""
    }"#;
    let editor = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(editor_spec)?),
        UserId(1),
        "editor-ws",
        "param-editor",
    ));
    let dash = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(dashboard_spec)?),
        UserId(2),
        "ops-wall",
        "dashboard",
    ));
    h.settle();

    // The dashboard declares that editor text fields may drive its
    // labels: a correspondence relation on their relevant attributes
    // (§3.3 "directly compatible ... if a correspondence relation is
    // declared").
    h.session_mut(dash).correspondences_mut().declare(
        WidgetKind::TextField,
        WidgetKind::Label,
        vec![(AttrName::Text, AttrName::Text)],
    );

    // Couple field↔label and slider↔slider across the two applications.
    for (src, dst) in [
        ("editor.name", "dash.name"),
        ("editor.pressure", "dash.pressure"),
        ("editor.notes", "dash.notes"),
    ] {
        let dst_gid = h.session(dash).gid(&ObjectPath::parse(dst)?)?;
        h.session_mut(editor).couple(&ObjectPath::parse(src)?, dst_gid)?;
    }
    h.settle();

    // Initial synchronization by state — across widget kinds.
    let name_path = ObjectPath::parse("editor.name")?;
    let dash_name = h.session(dash).gid(&ObjectPath::parse("dash.name")?)?;
    h.session_mut(editor).copy_to(&name_path, dash_name, CopyMode::Strict)?;
    h.settle();

    // Live events: typing into the editor's field re-executes on the
    // dashboard's *label*; dragging the slider re-executes on the
    // dashboard's slider.
    h.session_mut(editor).user_event(UiEvent::new(
        ObjectPath::parse("editor.notes")?,
        EventKind::TextCommitted,
        vec![Value::Text("pressure rising".into())],
    ))?;
    h.session_mut(editor).user_event(UiEvent::new(
        ObjectPath::parse("editor.pressure")?,
        EventKind::ValueChanged,
        vec![Value::Float(0.83)],
    ))?;
    h.settle();

    println!("editor instance:\n{}", render::render(h.session(editor).toolkit().tree()));
    println!(
        "dashboard instance (different application!):\n{}",
        render::render(h.session(dash).toolkit().tree())
    );

    // Structure reconciliation: push the whole editor form onto a third,
    // structurally different console using flexible matching — shared
    // components sync, console-only widgets survive, editor-only widgets
    // are merged in.
    let console_spec = r#"form editor title="Legacy Console" {
      textfield name text="(stale)"
      canvas scope
    }"#;
    let console = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(console_spec)?),
        UserId(3),
        "legacy",
        "console",
    ));
    h.settle();
    let console_root = h.session(console).gid(&ObjectPath::parse("editor")?)?;
    h.session_mut(editor).copy_to(
        &ObjectPath::parse("editor")?,
        console_root.clone(),
        CopyMode::FlexibleMatch,
    )?;
    h.settle();
    println!(
        "legacy console after FLEXIBLE MATCH (scope conserved, slider merged):\n{}",
        render::render(h.session(console).toolkit().tree())
    );

    // Destructive merging instead forces identical structure.
    h.session_mut(editor).copy_to(
        &ObjectPath::parse("editor")?,
        console_root,
        CopyMode::DestructiveMerge,
    )?;
    h.settle();
    println!(
        "legacy console after DESTRUCTIVE MERGE (structure copied, scope destroyed):\n{}",
        render::render(h.session(console).toolkit().tree())
    );
    Ok(())
}
