//! Cooperative TORI (§4): two researchers couple their query forms for a
//! joint retrieval session. Operator menus, input fields, view menus and
//! the query invocation synchronize; each instance evaluates the query
//! against its own database (multiple evaluation).
//!
//! Run with `cargo run --example tori_retrieval`.

use std::sync::Arc;

use cosoft::apps::tori::{events, result_rows, tori_session};
use cosoft::core::harness::SimHarness;
use cosoft::retrieval::sample_literature_db;
use cosoft::wire::{ObjectPath, UserId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut h = SimHarness::with_latency(11, 2_000);

    // Researcher A searches the lab's corpus; researcher B is connected
    // to a *different* database — the coupled query still works.
    let corpus_a = Arc::new(sample_literature_db(7, 400));
    let corpus_b = Arc::new(sample_literature_db(99, 400));
    let a = h.add_session(tori_session(UserId(1), corpus_a));
    let b = h.add_session(tori_session(UserId(2), corpus_b));
    h.settle();

    // Couple the whole query forms.
    let form = ObjectPath::parse("tori")?;
    let remote = h.session(b).gid(&form)?;
    h.session_mut(a).couple(&form, remote)?;
    h.settle();
    println!("query forms coupled");

    // A fills the form: author substring "hoppe", years 1990–1994.
    h.session_mut(a).user_event(events::set_operator("author", "substring"))?;
    h.session_mut(a).user_event(events::set_value("author", "hoppe"))?;
    h.settle();
    h.session_mut(a).user_event(events::set_operator("year", "range"))?;
    h.session_mut(a).user_event(events::set_value("year", "1990..1994"))?;
    h.settle();

    // A invokes the query; the activation re-executes at B too.
    h.session_mut(a).user_event(events::invoke())?;
    h.settle();

    let rows_a = result_rows(h.session(a));
    let rows_b = result_rows(h.session(b));
    println!("\nA's corpus answered {} rows; first ones:", rows_a.len());
    for row in rows_a.iter().take(4) {
        println!("  {row}");
    }
    println!("\nB's corpus answered {} rows (different database!):", rows_b.len());
    for row in rows_b.iter().take(4) {
        println!("  {row}");
    }

    // B drills down from a result: activating a row partially
    // instantiates the next query, which — being a coupled form — also
    // updates A's author field.
    if !rows_b.is_empty() {
        h.session_mut(b).user_event(events::activate_row(0))?;
        h.settle();
        h.session_mut(b).user_event(events::invoke())?;
        h.settle();
        println!(
            "\nafter B's drill-down both see {} (A) / {} (B) rows",
            result_rows(h.session(a)).len(),
            result_rows(h.session(b)).len()
        );
    }

    println!(
        "\nsession totals: {} messages, {} bytes, {} µs virtual time",
        h.net.stats().messages_sent,
        h.net.stats().bytes_sent,
        h.net.now_us()
    );
    Ok(())
}
