//! TCP runtime: glue that runs the sans-I/O server core and client
//! sessions over real sockets (`cosoft-net`'s TCP transport).
//!
//! The deterministic simulation ([`cosoft_core::harness::SimHarness`]) is
//! the primary habitat for tests and benchmarks; this module exists so
//! the very same cores also run distributed across processes/threads —
//! see `examples/tcp_demo.rs` and the `tcp_end_to_end` integration test.

use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cosoft_core::session::Session;
use cosoft_net::tcp::{
    ClientEvent, ConnId, NetEvent, ReconnectPolicy, RecvError, TcpClient, TcpHost, TcpHostConfig,
    TcpStats, TcpStatsHandle,
};
use cosoft_server::{
    LivenessConfig, Outgoing, OverloadConfig, RouterStats, ServerStats, ShardRouter,
};

/// A COSOFT server listening on TCP.
///
/// The accept/dispatch loop runs on a background thread until the value
/// is dropped. Outbound delivery goes through the transport's
/// per-connection writer queues, so one stalled client never delays the
/// dispatch loop or its peers; consumers evicted by the slow-consumer
/// policy surface as disconnects and take the §3.2 auto-decoupling path.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Mutex<(ServerStats, RouterStats)>>,
    net_stats: TcpStatsHandle,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer").field("addr", &self.addr).finish()
    }
}

impl TcpServer {
    /// Binds and starts serving (use `127.0.0.1:0` for an ephemeral
    /// port) with the default transport configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(addr: &str) -> io::Result<TcpServer> {
        TcpServer::spawn_with_config(addr, TcpHostConfig::default())
    }

    /// Binds and starts serving with an explicit outbound-queue and
    /// slow-consumer configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_config(addr: &str, config: TcpHostConfig) -> io::Result<TcpServer> {
        TcpServer::spawn_with_liveness(addr, config, LivenessConfig::default())
    }

    /// Binds and starts serving with a client-liveness policy: silently
    /// dropped connections are quarantined for `liveness.grace_us`
    /// microseconds (their instance id, couples, and access rights held
    /// for a `Rejoin`) before the §3.2 auto-decoupling deregistration
    /// runs.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_liveness(
        addr: &str,
        config: TcpHostConfig,
        liveness: LivenessConfig,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_sharded(addr, config, liveness, 1)
    }

    /// Binds and starts serving with the server brain split into
    /// `shards` [`cosoft_server::ServerCore`]s keyed by couple-component,
    /// behind a [`ShardRouter`]. Disjoint components never contend on a
    /// shared lock table or history store; a cross-shard `Couple` runs
    /// the router's two-phase component handoff transparently. With
    /// `shards == 1` this is exactly the classic single-core server.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_sharded(
        addr: &str,
        config: TcpHostConfig,
        liveness: LivenessConfig,
        shards: usize,
    ) -> io::Result<TcpServer> {
        TcpServer::spawn_with_overload(addr, config, liveness, shards, OverloadConfig::default())
    }

    /// Binds and starts serving with per-endpoint admission control: each
    /// shard core enforces `overload`'s per-class message budgets and the
    /// global byte budget, answering excess traffic with
    /// `Busy { retry_after_ms }` and escalating sustained abuse to the
    /// §3.2 auto-decoupling eviction. The default [`OverloadConfig`] is
    /// fully open (no budgets), making this a superset of
    /// [`TcpServer::spawn_sharded`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_overload(
        addr: &str,
        config: TcpHostConfig,
        liveness: LivenessConfig,
        shards: usize,
        overload: OverloadConfig,
    ) -> io::Result<TcpServer> {
        let host = TcpHost::bind_with_config(addr, config)?;
        let local = host.local_addr();
        let net_stats = host.stats_handle();
        let stats = Arc::new(Mutex::new((ServerStats::default(), RouterStats::default())));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let published = stats.clone();
        // The dispatch loop is event-driven: the transport's poll
        // threads push into the event channel and the recv below wakes
        // immediately. The timeout is only a liveness *tick* — it must
        // fire often enough for quarantine grace / idle deadlines to
        // expire without traffic (a quarter of the shortest deadline),
        // and otherwise just paces the once-a-second stats heartbeat.
        // Shutdown does not wait for it either: `Drop` wakes the loop
        // with a dummy connection.
        let tick = {
            let mut t = Duration::from_secs(1);
            for us in [liveness.grace_us, liveness.idle_timeout_us] {
                if us > 0 {
                    t = t.min(Duration::from_micros(us / 4).max(Duration::from_millis(5)));
                }
            }
            t
        };
        let thread = std::thread::Builder::new().name("cosoft-server".into()).spawn(move || {
            let mut router: ShardRouter<ConnId> = ShardRouter::with_liveness(shards, liveness);
            router.set_overload(overload);
            let start = Instant::now();
            let mut last_published = (router.stats(), router.router_stats());
            let mut published_at = Instant::now();
            while !stop.load(Ordering::SeqCst) {
                let first = match host.events().recv_timeout(tick) {
                    Ok(e) => Some(e),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                };
                // Drain every already-ready event before writing
                // anything: one wakeup becomes one coalesced batch per
                // destination instead of a write per event. The cap
                // bounds how long a firehose can defer the first reply.
                let mut outgoing = Outgoing::new();
                let mut next = first;
                let mut budget = 256usize;
                while let Some(event) = next {
                    match event {
                        NetEvent::Connected(_) => {}
                        NetEvent::Message(conn, msg) => outgoing.extend(router.handle(conn, msg)),
                        NetEvent::Disconnected(conn) => outgoing.extend(router.disconnect(conn)),
                    }
                    budget -= 1;
                    if budget == 0 {
                        break;
                    }
                    next = host.events().try_recv().ok();
                }
                // Advance the liveness clock even on idle timeouts so
                // quarantine grace periods expire without traffic.
                outgoing.extend(router.tick(start.elapsed().as_micros() as u64));
                // One coalesced write per destination; broadcast frames
                // stay pre-encoded all the way down. Failures mean the
                // peer vanished or was evicted as a slow consumer — its
                // Disconnected event will clean up.
                let _ = host.send_batch(&outgoing.into_frames());
                // Publish after a change, but also at least once a
                // second: pure publish-on-change left snapshot readers
                // staring at stale counters whenever the last handled
                // event raced a snapshot, and on idle streaks after a
                // burst.
                let current = (router.stats(), router.router_stats());
                let stale = published_at.elapsed() >= Duration::from_secs(1);
                if current != last_published || stale {
                    if let Ok(mut s) = published.lock() {
                        *s = current;
                    }
                    last_published = current;
                    published_at = Instant::now();
                }
            }
            // Final forced publish: without it, counters from the last
            // dispatch turn before shutdown were silently dropped.
            if let Ok(mut s) = published.lock() {
                *s = (router.stats(), router.router_stats());
            }
        })?;
        Ok(TcpServer { addr: local, shutdown, stats, net_stats, thread: Some(thread) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server core's observability counters (floor
    /// control, fan-out, transfer liveness), summed across shards and
    /// re-published at least once a second and on shutdown.
    pub fn server_stats(&self) -> ServerStats {
        self.stats.lock().map(|s| s.0).unwrap_or_default()
    }

    /// Snapshot of the shard router's counters (handoffs, cross-shard
    /// commands, rebalances). All zero on a single-shard server.
    pub fn router_stats(&self) -> RouterStats {
        self.stats.lock().map(|s| s.1).unwrap_or_default()
    }

    /// Snapshot of the transport counters (bytes/frames in and out,
    /// queue depths, slow-consumer evictions).
    pub fn net_stats(&self) -> TcpStats {
        self.net_stats.snapshot()
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the dispatch loop right away instead of letting shutdown
        // wait out the liveness tick: a dummy connection surfaces as a
        // Connected event (handled as a no-op) and the loop re-checks
        // the flag. Wildcard binds are not reliably connectable, so aim
        // at the loopback of the same family.
        let wake_ip = if self.addr.ip().is_unspecified() {
            match self.addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.addr.ip()
        };
        let wake_addr = SocketAddr::new(wake_ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&wake_addr, Duration::from_millis(100));
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

/// A client session bound to a TCP connection.
///
/// Wraps a [`Session`] and pumps its outbox/inbox over the socket.
pub struct TcpSession {
    session: Session,
    client: TcpClient,
}

impl std::fmt::Debug for TcpSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSession").field("session", &self.session).finish()
    }
}

impl TcpSession {
    /// Connects a session to a server and pumps until registration
    /// completes.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; times out with `TimedOut` if the
    /// server does not answer the registration within 5 seconds.
    pub fn connect(addr: SocketAddr, session: Session) -> io::Result<TcpSession> {
        TcpSession::finish_connect(TcpClient::connect(addr)?, session)
    }

    /// Like [`TcpSession::connect`], but the underlying client redials
    /// with exponential backoff when the connection drops. On each
    /// successful reconnect the session automatically begins its rejoin
    /// (resume token, couple re-assertion, `CopyFrom` resync) during the
    /// next pump.
    ///
    /// # Errors
    ///
    /// Propagates failures of the initial connection and registration.
    pub fn connect_with_reconnect(
        addr: SocketAddr,
        session: Session,
        policy: ReconnectPolicy,
    ) -> io::Result<TcpSession> {
        TcpSession::finish_connect(TcpClient::connect_with_reconnect(addr, policy)?, session)
    }

    fn finish_connect(client: TcpClient, session: Session) -> io::Result<TcpSession> {
        let mut s = TcpSession { session, client };
        s.flush()?;
        let deadline = Instant::now() + Duration::from_secs(5);
        while s.session.instance().is_none() {
            if Instant::now() > deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "registration timed out"));
            }
            s.pump_for(Duration::from_millis(20))?;
        }
        Ok(s)
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying transport client (reconnect counters live here).
    pub fn client(&self) -> &TcpClient {
        &self.client
    }

    /// Mutable access to the wrapped session. Call [`TcpSession::flush`]
    /// (or any pump) afterwards to push queued protocol messages out.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Sends everything queued in the session's outbox.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn flush(&mut self) -> io::Result<()> {
        for msg in self.session.drain_outbox() {
            self.client.send(&msg)?;
        }
        Ok(())
    }

    /// Reacts to transport lifecycle events (reconnect-enabled clients
    /// only): a completed reconnect starts the session's rejoin.
    fn drain_client_events(&mut self) {
        let Some(events) = self.client.events() else {
            return;
        };
        let mut pending = Vec::new();
        while let Ok(event) = events.try_recv() {
            pending.push(event);
        }
        for event in pending {
            if let ClientEvent::Reconnected { .. } = event {
                self.session.begin_rejoin();
            }
        }
    }

    /// Flushes the outbox, tolerating send failures when the client can
    /// reconnect: messages written into a dead connection are lost with
    /// it (the rejoin resync regenerates what matters), so a redial in
    /// progress must not abort the pump.
    fn flush_for_pump(&mut self) -> io::Result<()> {
        if self.client.events().is_none() {
            return self.flush();
        }
        for msg in self.session.drain_outbox() {
            if self.client.send(&msg).is_err() {
                break;
            }
        }
        Ok(())
    }

    /// Pumps incoming messages (and resulting outbox traffic) for at
    /// least `window`.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn pump_for(&mut self, window: Duration) -> io::Result<()> {
        self.drain_client_events();
        self.flush_for_pump()?;
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(());
            }
            match self.client.recv_within(deadline - now) {
                Ok(msg) => {
                    self.session.on_message(msg);
                    self.drain_client_events();
                    self.flush_for_pump()?;
                }
                Err(RecvError::Timeout) => {
                    // Quiet but alive: check for lifecycle transitions
                    // so a rejoin starts promptly.
                    self.drain_client_events();
                    self.flush_for_pump()?;
                }
                Err(RecvError::Disconnected) => {
                    // Gone for good (closed, or the reconnect loop gave
                    // up): nothing will ever arrive again. Drain the
                    // last lifecycle events and sit out the remainder of
                    // the window instead of hot-spinning on the dead
                    // receiver, which is what the collapsed recv_timeout
                    // used to force here.
                    self.drain_client_events();
                    self.flush_for_pump()?;
                    let now = Instant::now();
                    if now < deadline {
                        std::thread::sleep(deadline - now);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Pumps until `predicate` holds on the session or `timeout` elapses.
    /// Returns whether the predicate held.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn pump_until<F>(&mut self, timeout: Duration, mut predicate: F) -> io::Result<bool>
    where
        F: FnMut(&Session) -> bool,
    {
        let deadline = Instant::now() + timeout;
        loop {
            if predicate(&self.session) {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            self.pump_for(Duration::from_millis(10))?;
        }
    }

    /// Gracefully leaves the session and closes the socket.
    ///
    /// Deterministic handshake, no timing guesswork: `flush` enqueues
    /// the session's goodbye (`Deregister`), and [`TcpClient::close`]
    /// waits — on the writer thread's flush signal, not a sleep — until
    /// those frames reached the socket before shutting it down.
    pub fn close(mut self) {
        self.session.leave();
        let _ = self.flush();
        self.client.close();
    }
}
