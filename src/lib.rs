//! COSOFT — flexible communication in heterogeneous multi-user environments.
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `examples/` for runnable scenarios.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod runtime;

pub use cosoft_apps as apps;
pub use cosoft_baselines as baselines;
pub use cosoft_core as core;
pub use cosoft_net as net;
pub use cosoft_retrieval as retrieval;
pub use cosoft_server as server;
pub use cosoft_uikit as uikit;
pub use cosoft_wire as wire;
