//! `cosoft-apps` — the application scenarios of §4, built on the public
//! coupling API:
//!
//! * [`classroom`] — COSOFT face-to-face teaching: teacher blackboard +
//!   student workstations, indirect coupling of simulation parameters,
//!   buffered help requests, the intelligent demon, and the interactive
//!   join procedure;
//! * [`tori`] — the cooperative TORI database-retrieval interface:
//!   generated query forms, coupled operator menus / input fields / view
//!   menus, multiple evaluation of queries (even against different
//!   databases), result-driven query instantiation;
//! * [`sketch`] — a GroupDesign-style multi-user sketch editor with the
//!   time-relaxed private-until-commitment mode expressed through
//!   decoupling and synchronization-by-state.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classroom;
pub mod sketch;
pub mod tori;
