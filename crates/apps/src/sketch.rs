//! A GroupDesign-style multi-user sketch editor (reference \[2\] in the paper),
//! rebuilt on COSOFT coupling: a canvas whose strokes synchronize through
//! event re-execution, with GroupDesign's signature *time-relaxed* mode —
//! keep modifications private until commitment — expressed as
//! decouple → draw → `CopyTo` (synchronization by state) → re-couple.

use cosoft_core::session::Session;
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{
    AttrName, CopyMode, EventKind, GlobalObjectId, ObjectPath, UiEvent, UserId, Value,
};

/// UI spec of a sketch pad instance.
pub const SKETCH_SPEC: &str = r#"form canvas title="Group Sketch" {
  canvas board width=640 height=480
  label status text=""
}"#;

/// The canvas path within a sketch instance.
pub fn board_path() -> ObjectPath {
    ObjectPath::parse("canvas.board").expect("static path")
}

/// Builds a sketch-pad session.
pub fn sketch_session(user: UserId, name: &str) -> Session {
    let tree = spec::build_tree(SKETCH_SPEC).expect("static spec");
    Session::new(Toolkit::from_tree(tree), user, &format!("pad-{name}"), "group-sketch")
}

/// A stroke-drawing event.
pub fn draw_event(points: Vec<(i32, i32)>) -> UiEvent {
    UiEvent::new(board_path(), EventKind::StrokeAdded, vec![Value::Stroke(points)])
}

/// A canvas-clear event.
pub fn clear_event() -> UiEvent {
    UiEvent::simple(board_path(), EventKind::CanvasCleared)
}

/// The strokes currently on a session's board.
pub fn strokes(session: &Session) -> Vec<Vec<(i32, i32)>> {
    session
        .toolkit()
        .tree()
        .resolve(&board_path())
        .and_then(|id| session.toolkit().tree().attr(id, &AttrName::Strokes).ok())
        .and_then(|v| match v {
            Value::StrokeList(s) => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Joins another pad's board: couples the canvases and pulls the current
/// picture so the late joiner starts synchronized (§3.1 initial sync by
/// UI state). Returns the copy request id.
///
/// # Errors
///
/// Session errors when this session is not registered yet.
pub fn join_board(
    session: &mut Session,
    remote_board: GlobalObjectId,
) -> Result<u64, cosoft_core::SessionError> {
    let req = session.copy_from(remote_board.clone(), &board_path(), CopyMode::Strict)?;
    session.couple(&board_path(), remote_board)?;
    Ok(req)
}

/// GroupDesign's private mode: decouple from the shared board.
///
/// # Errors
///
/// Session errors when this session is not registered yet.
pub fn go_private(
    session: &mut Session,
    remote_board: GlobalObjectId,
) -> Result<(), cosoft_core::SessionError> {
    session.decouple(&board_path(), remote_board)
}

/// Commit private work: push the whole picture by state copy, then
/// re-couple ("participants ... decouple from others, work alone for some
/// time, and then join the work group again" — the periodical
/// synchronization the paper argues for).
///
/// # Errors
///
/// Session errors when this session is not registered yet.
pub fn commit_private_work(
    session: &mut Session,
    remote_board: GlobalObjectId,
) -> Result<u64, cosoft_core::SessionError> {
    let req = session.copy_to(&board_path(), remote_board.clone(), CopyMode::Strict)?;
    session.couple(&board_path(), remote_board)?;
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_core::harness::SimHarness;

    #[test]
    fn strokes_replicate_between_coupled_pads() {
        let mut h = SimHarness::new(1);
        let a = h.add_session(sketch_session(UserId(1), "a"));
        let b = h.add_session(sketch_session(UserId(2), "b"));
        h.settle();
        let remote = h.session(b).gid(&board_path()).unwrap();
        h.session_mut(a).couple(&board_path(), remote).unwrap();
        h.settle();

        h.session_mut(a).user_event(draw_event(vec![(0, 0), (10, 10)])).unwrap();
        h.settle();
        h.session_mut(b).user_event(draw_event(vec![(5, 5), (6, 6)])).unwrap();
        h.settle();

        assert_eq!(strokes(h.session(a)), strokes(h.session(b)));
        assert_eq!(strokes(h.session(a)).len(), 2);

        h.session_mut(b).user_event(clear_event()).unwrap();
        h.settle();
        assert!(strokes(h.session(a)).is_empty());
        assert!(strokes(h.session(b)).is_empty());
    }

    #[test]
    fn late_joiner_pulls_existing_picture() {
        let mut h = SimHarness::new(2);
        let a = h.add_session(sketch_session(UserId(1), "a"));
        h.settle();
        h.session_mut(a).user_event(draw_event(vec![(1, 1), (2, 2)])).unwrap();
        h.settle();

        let c = h.add_session(sketch_session(UserId(3), "late"));
        h.settle();
        let board_a = h.session(a).gid(&board_path()).unwrap();
        join_board(h.session_mut(c), board_a).unwrap();
        h.settle();

        assert_eq!(strokes(h.session(c)).len(), 1, "picture transferred on join");
        // And live after the join:
        h.session_mut(a).user_event(draw_event(vec![(9, 9), (8, 8)])).unwrap();
        h.settle();
        assert_eq!(strokes(h.session(c)).len(), 2);
    }

    #[test]
    fn private_work_until_commitment() {
        let mut h = SimHarness::new(3);
        let a = h.add_session(sketch_session(UserId(1), "a"));
        let b = h.add_session(sketch_session(UserId(2), "b"));
        h.settle();
        let board_b = h.session(b).gid(&board_path()).unwrap();
        h.session_mut(a).couple(&board_path(), board_b.clone()).unwrap();
        h.settle();

        // a goes private and sketches three strokes b cannot see.
        go_private(h.session_mut(a), board_b.clone()).unwrap();
        h.settle();
        for k in 0..3 {
            h.session_mut(a).user_event(draw_event(vec![(k, k), (k + 1, k)])).unwrap();
        }
        h.settle();
        assert_eq!(strokes(h.session(a)).len(), 3);
        assert_eq!(strokes(h.session(b)).len(), 0, "private until commitment");

        // Commitment: one state copy transfers the whole picture.
        commit_private_work(h.session_mut(a), board_b).unwrap();
        h.settle();
        assert_eq!(strokes(h.session(b)).len(), 3);
        // Coupled again: live strokes flow.
        h.session_mut(b).user_event(draw_event(vec![(50, 50), (51, 51)])).unwrap();
        h.settle();
        assert_eq!(strokes(h.session(a)).len(), 4);
    }
}
