//! Cooperative TORI (§4): the "Task-Oriented database Retrieval
//! Interface" made multi-user by coupling its query and result forms.
//!
//! Reproduced elements:
//!
//! * query forms generated from a high-level description (the table
//!   schema): per-attribute comparison-operator menus and text input
//!   fields, a view menu selecting the projected attributes, and a query
//!   invocation button — exactly the objects §4 lists as coupled;
//! * result forms with the "use result data to partially instantiate new
//!   query forms" operation (row activation fills the query field);
//! * **multiple evaluation**: invoking a query is a coupled event, so the
//!   query re-executes in every coupled instance — possibly against
//!   *different databases*, the flexibility the paper trades against
//!   evaluate-once-and-share.

use std::sync::Arc;

use cosoft_core::session::Session;
use cosoft_retrieval::{Predicate, Query, Table};
use cosoft_uikit::{spec, Toolkit, WidgetTree};
use cosoft_wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

/// Comparison operators offered by the per-attribute operator menus.
pub const OPERATORS: [&str; 5] = ["substring", "equals", "prefix", "like-one-of", "range"];

/// Generates the TORI query-form spec from a table schema ("TORI
/// generates \[forms\] from high-level descriptions").
pub fn query_form_spec(table: &Table) -> String {
    let mut out = String::from("form tori title=\"TORI Retrieval\" {\n");
    let ops = OPERATORS.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>().join(", ");
    for col in table.column_names() {
        out.push_str(&format!(
            "  panel attr_{col} {{\n    label name text=\"{col}\"\n    menu op items=[{ops}] selected=0\n    textfield value text=\"\"\n  }}\n"
        ));
    }
    let views =
        table.column_names().iter().map(|c| format!("\"{c}\"")).collect::<Vec<_>>().join(", ");
    out.push_str(&format!(
        "  menu view items=[\"all\", {views}] selected=0\n  button invoke title=\"Run query\"\n  table results columns=[{views}] rows=[] selected=-1\n  label status text=\"\"\n}}\n"
    ));
    out
}

fn attr_of(tree: &WidgetTree, path: &str, attr: &AttrName) -> Option<Value> {
    tree.resolve(&ObjectPath::parse(path).ok()?).and_then(|id| tree.attr(id, attr).ok().cloned())
}

/// Reads the query described by the form's widgets and builds the
/// predicate + projection.
fn build_query(tree: &WidgetTree, table: &Table) -> Result<Query, cosoft_retrieval::DbError> {
    let mut conjuncts = Vec::new();
    for col in table.column_names() {
        let op_idx = attr_of(tree, &format!("tori.attr_{col}.op"), &AttrName::Selected)
            .and_then(|v| v.as_int())
            .unwrap_or(0)
            .clamp(0, OPERATORS.len() as i64 - 1) as usize;
        let operand = attr_of(tree, &format!("tori.attr_{col}.value"), &AttrName::Text)
            .and_then(|v| v.as_text().map(str::to_owned))
            .unwrap_or_default();
        let predicate = Predicate::from_operator(col, OPERATORS[op_idx], &operand)?;
        if predicate != Predicate::True {
            conjuncts.push(predicate);
        }
    }
    let mut query = Query::new();
    if !conjuncts.is_empty() {
        query = query.filter(Predicate::And(conjuncts));
    }
    // The view menu: entry 0 is "all"; entry k>0 projects to column k-1.
    let view_idx =
        attr_of(tree, "tori.view", &AttrName::Selected).and_then(|v| v.as_int()).unwrap_or(0);
    if view_idx > 0 {
        if let Some(col) = table.column_names().get(view_idx as usize - 1) {
            query = query.select([(*col).to_owned()]);
        }
    }
    Ok(query)
}

/// Executes the form's query against `table` and writes the result rows
/// into the `tori.results` table widget plus a status line.
pub fn evaluate_into_form(tree: &mut WidgetTree, table: &Table) {
    let outcome = build_query(tree, table).and_then(|q| q.run(table));
    let (rows, status) = match outcome {
        Ok(result) => {
            let n = result.len();
            (result.to_lines(), format!("{n} rows"))
        }
        Err(e) => (Vec::new(), format!("error: {e}")),
    };
    if let Some(id) = tree.resolve(&ObjectPath::parse("tori.results").expect("static")) {
        tree.set_attr(id, AttrName::custom("rows"), Value::TextList(rows))
            .expect("results widget is a table");
    }
    if let Some(id) = tree.resolve(&ObjectPath::parse("tori.status").expect("static")) {
        tree.set_attr(id, AttrName::Text, Value::Text(status)).expect("status is a label");
    }
}

/// Builds a cooperative TORI session over its own database instance.
///
/// Callbacks:
/// * `tori.invoke` activation evaluates the query **locally** — when the
///   form is coupled, the same activation re-executes in every instance,
///   each against its own database (multiple evaluation);
/// * `tori.results` row activation partially instantiates a new query:
///   the first cell of the selected row is written into the first
///   attribute's value field.
pub fn tori_session(user: UserId, table: Arc<Table>) -> Session {
    let tree = spec::build_tree(&query_form_spec(&table)).expect("generated spec is valid");
    let mut session = Session::new(Toolkit::from_tree(tree), user, &format!("tori-{user}"), "tori");
    let eval_table = table.clone();
    session.toolkit_mut().on(
        ObjectPath::parse("tori.invoke").expect("static"),
        EventKind::Activate,
        move |tree, _| evaluate_into_form(tree, &eval_table),
    );
    let first_col = table.column_names().first().map(|c| (*c).to_owned());
    session.toolkit_mut().on(
        ObjectPath::parse("tori.results").expect("static"),
        EventKind::RowActivated,
        move |tree, event| {
            let Some(col) = &first_col else { return };
            let Some(row_idx) = event.params.first().and_then(Value::as_int) else { return };
            let rows = tree
                .resolve(&ObjectPath::parse("tori.results").expect("static"))
                .and_then(|id| tree.attr(id, &AttrName::custom("rows")).ok())
                .and_then(|v| v.as_text_list().map(<[String]>::to_vec))
                .unwrap_or_default();
            let Some(row) = rows.get(row_idx as usize) else { return };
            let first_cell = row.split('\t').next().unwrap_or("").to_owned();
            // Partially instantiate a new query from result data.
            if let Some(id) =
                tree.resolve(&ObjectPath::parse(&format!("tori.attr_{col}.value")).expect("ok"))
            {
                tree.set_attr(id, AttrName::Text, Value::Text(first_cell))
                    .expect("value is a text field");
            }
        },
    );
    session
}

/// Current result lines of a TORI form.
pub fn result_rows(session: &Session) -> Vec<String> {
    session
        .toolkit()
        .tree()
        .resolve(&ObjectPath::parse("tori.results").expect("static"))
        .and_then(|id| session.toolkit().tree().attr(id, &AttrName::custom("rows")).ok())
        .and_then(|v| v.as_text_list().map(<[String]>::to_vec))
        .unwrap_or_default()
}

/// Event helpers for driving a TORI form.
pub mod events {
    use super::*;

    /// Commits text into an attribute's value field.
    pub fn set_value(col: &str, text: &str) -> UiEvent {
        UiEvent::new(
            ObjectPath::parse(&format!("tori.attr_{col}.value")).expect("static"),
            EventKind::TextCommitted,
            vec![Value::Text(text.to_owned())],
        )
    }

    /// Selects a comparison operator for an attribute.
    pub fn set_operator(col: &str, op: &str) -> UiEvent {
        let idx = OPERATORS.iter().position(|o| *o == op).unwrap_or(0) as i64;
        UiEvent::new(
            ObjectPath::parse(&format!("tori.attr_{col}.op")).expect("static"),
            EventKind::SelectionChanged,
            vec![Value::Int(idx)],
        )
    }

    /// Selects a view (0 = all columns, k = column k-1 only).
    pub fn set_view(idx: i64) -> UiEvent {
        UiEvent::new(
            ObjectPath::parse("tori.view").expect("static"),
            EventKind::SelectionChanged,
            vec![Value::Int(idx)],
        )
    }

    /// Invokes the query.
    pub fn invoke() -> UiEvent {
        UiEvent::simple(ObjectPath::parse("tori.invoke").expect("static"), EventKind::Activate)
    }

    /// Activates a result row.
    pub fn activate_row(idx: i64) -> UiEvent {
        UiEvent::new(
            ObjectPath::parse("tori.results").expect("static"),
            EventKind::RowActivated,
            vec![Value::Int(idx)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_core::harness::SimHarness;
    use cosoft_retrieval::sample_literature_db;

    fn db() -> Arc<Table> {
        Arc::new(sample_literature_db(7, 200))
    }

    #[test]
    fn spec_generates_and_parses() {
        let table = db();
        let tree = spec::build_tree(&query_form_spec(&table)).unwrap();
        assert!(tree.resolve(&ObjectPath::parse("tori.attr_author.op").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("tori.attr_year.value").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("tori.invoke").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("tori.results").unwrap()).is_some());
    }

    #[test]
    fn single_user_query_round_trip() {
        let mut h = SimHarness::new(1);
        let n = h.add_session(tori_session(UserId(1), db()));
        h.settle();
        h.session_mut(n).user_event(events::set_value("author", "Zhao")).unwrap();
        h.session_mut(n).user_event(events::invoke()).unwrap();
        h.settle();
        let rows = result_rows(h.session(n));
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.starts_with("Zhao")));
    }

    #[test]
    fn coupled_invocation_evaluates_in_both_instances() {
        let mut h = SimHarness::new(2);
        let a = h.add_session(tori_session(UserId(1), db()));
        let b = h.add_session(tori_session(UserId(2), db()));
        h.settle();

        // Couple the whole query forms (§4: query forms, operator menus,
        // text fields, view menus, and the invocation are synchronized).
        let root = ObjectPath::parse("tori").unwrap();
        let remote = h.session(b).gid(&root).unwrap();
        h.session_mut(a).couple(&root, remote).unwrap();
        h.settle();

        h.session_mut(a).user_event(events::set_value("author", "Hoppe")).unwrap();
        h.settle();
        h.session_mut(a).user_event(events::invoke()).unwrap();
        h.settle();

        let rows_a = result_rows(h.session(a));
        let rows_b = result_rows(h.session(b));
        assert!(!rows_a.is_empty());
        assert_eq!(rows_a, rows_b, "same database ⇒ same multiple-evaluation result");
        assert!(h.session(b).remote_executions() >= 2, "field edit + invoke re-executed");
    }

    #[test]
    fn multiple_evaluation_against_different_databases() {
        // "queries can be sent to different databases" — instance b has a
        // different corpus, so the same coupled query yields different
        // results. This is the flexibility multiple evaluation buys.
        let mut h = SimHarness::new(3);
        let a = h.add_session(tori_session(UserId(1), Arc::new(sample_literature_db(7, 200))));
        let b = h.add_session(tori_session(UserId(2), Arc::new(sample_literature_db(99, 200))));
        h.settle();
        let root = ObjectPath::parse("tori").unwrap();
        let remote = h.session(b).gid(&root).unwrap();
        h.session_mut(a).couple(&root, remote).unwrap();
        h.settle();

        h.session_mut(a).user_event(events::set_value("author", "Stefik")).unwrap();
        h.settle();
        h.session_mut(a).user_event(events::invoke()).unwrap();
        h.settle();

        let rows_a = result_rows(h.session(a));
        let rows_b = result_rows(h.session(b));
        assert!(!rows_a.is_empty() && !rows_b.is_empty());
        assert_ne!(rows_a, rows_b, "different databases ⇒ different results");
    }

    #[test]
    fn operator_menu_and_view_menu_shape_the_query() {
        let mut h = SimHarness::new(4);
        let n = h.add_session(tori_session(UserId(1), db()));
        h.settle();
        // year range 1990..1994, project to author only (view index 1 =
        // first column).
        h.session_mut(n).user_event(events::set_operator("year", "range")).unwrap();
        h.session_mut(n).user_event(events::set_value("year", "1990..1994")).unwrap();
        h.session_mut(n).user_event(events::set_view(1)).unwrap();
        h.session_mut(n).user_event(events::invoke()).unwrap();
        h.settle();
        let rows = result_rows(h.session(n));
        assert!(!rows.is_empty());
        // Single projected column: no tab separators.
        assert!(rows.iter().all(|r| !r.contains('\t')), "{rows:?}");
    }

    #[test]
    fn row_activation_partially_instantiates_next_query() {
        let mut h = SimHarness::new(5);
        let n = h.add_session(tori_session(UserId(1), db()));
        h.settle();
        h.session_mut(n).user_event(events::invoke()).unwrap();
        h.settle();
        let rows = result_rows(h.session(n));
        assert!(!rows.is_empty());
        let expected_author = rows[0].split('\t').next().unwrap().to_owned();

        h.session_mut(n).user_event(events::activate_row(0)).unwrap();
        h.settle();
        let field = h
            .session(n)
            .toolkit()
            .tree()
            .resolve(&ObjectPath::parse("tori.attr_author.value").unwrap())
            .unwrap();
        assert_eq!(
            h.session(n).toolkit().tree().attr(field, &AttrName::Text).unwrap(),
            &Value::Text(expected_author)
        );
    }

    #[test]
    fn malformed_query_reports_error_status() {
        let mut h = SimHarness::new(6);
        let n = h.add_session(tori_session(UserId(1), db()));
        h.settle();
        h.session_mut(n).user_event(events::set_operator("year", "range")).unwrap();
        h.session_mut(n).user_event(events::set_value("year", "not-a-range")).unwrap();
        h.session_mut(n).user_event(events::invoke()).unwrap();
        h.settle();
        let status = h
            .session(n)
            .toolkit()
            .tree()
            .resolve(&ObjectPath::parse("tori.status").unwrap())
            .and_then(|id| h.session(n).toolkit().tree().attr(id, &AttrName::Text).ok().cloned())
            .unwrap();
        assert!(status.to_string().contains("error"), "{status}");
        assert!(result_rows(h.session(n)).is_empty());
    }
}
