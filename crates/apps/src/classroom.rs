//! The COSOFT classroom (§4): "Computer Support for Face-to-face
//! Teaching" — a teacher on the electronic blackboard, students on local
//! workstations, flexible coupling between their (heterogeneous)
//! environments.
//!
//! Reproduced elements:
//!
//! * teacher presentation environment vs. student exercise environment
//!   (different UI structures — heterogeneous instances);
//! * a parameter-driven simulation display: only the *parameter* widgets
//!   are coupled; each instance regenerates the display locally
//!   (**indirect coupling**, the §4 efficiency lesson);
//! * buffered student help requests ("these messages are buffered and can
//!   be inspected by the teacher"), raised directly or by an "intelligent
//!   demon" watching the student's answer;
//! * the interactive join procedure: the teacher queries the classroom
//!   roster and uses `RemoteCouple` to link a student's exercise objects
//!   to the blackboard.

use cosoft_core::session::Session;
use cosoft_uikit::{spec, Toolkit, WidgetTree};
use cosoft_wire::{
    AttrName, EventKind, GlobalObjectId, InstanceId, ObjectPath, Target, UiEvent, UserId, Value,
};

/// UI spec of the teacher's presentation environment (the Liveboard).
pub const TEACHER_SPEC: &str = r#"form board title="COSOFT Blackboard" {
  label topic text="Oscillation exercise"
  panel params {
    slider amplitude value=1.0 min=0.0 max=4.0
    slider frequency value=1.0 min=0.25 max=4.0
  }
  simview display
  textfield discussion text=""
  list inbox items=[]
}"#;

/// UI spec of a student's exercise environment — structurally different
/// from the teacher's (heterogeneous applications).
pub const STUDENT_SPEC: &str = r#"form exercise title="Exercise 3" {
  label task text="Set the parameters so the curve peaks at 2.0"
  panel params {
    slider amplitude value=1.0 min=0.0 max=4.0
    slider frequency value=1.0 min=0.25 max=4.0
  }
  simview display
  textfield answer text=""
  button request_help title="Ask the teacher"
}"#;

/// Number of sample points the simulation display renders.
pub const DISPLAY_POINTS: usize = 64;

/// Command name of a buffered help request (§3.4 protocol extension).
pub const HELP_REQUEST_CMD: &str = "cosoft-help-request";

fn params_path(root: &str) -> ObjectPath {
    ObjectPath::parse(&format!("{root}.params")).expect("static path")
}

/// Recomputes the simulation display from the parameter widgets: a
/// sampled `amplitude * sin(frequency * x)` curve stored as an `IntList`
/// in the `simview` widget (fixed-point, ×1000).
///
/// This is the *dependent object* of the indirect-coupling lesson: it is
/// regenerated locally from coupled parameters instead of shipping the
/// whole curve over the wire.
pub fn regenerate_display(tree: &mut WidgetTree, root: &str) {
    let read = |tree: &WidgetTree, p: &str| -> f64 {
        tree.resolve(&ObjectPath::parse(p).expect("static"))
            .and_then(|id| tree.attr(id, &AttrName::ValueNum).ok().and_then(Value::as_float))
            .unwrap_or(1.0)
    };
    let amplitude = read(tree, &format!("{root}.params.amplitude"));
    let frequency = read(tree, &format!("{root}.params.frequency"));
    let points: Vec<i64> = (0..DISPLAY_POINTS)
        .map(|i| {
            let x = i as f64 / DISPLAY_POINTS as f64 * std::f64::consts::TAU;
            (amplitude * (frequency * x).sin() * 1000.0).round() as i64
        })
        .collect();
    if let Some(id) = tree.resolve(&ObjectPath::parse(&format!("{root}.display")).expect("static"))
    {
        tree.set_attr(id, AttrName::custom("curve"), Value::IntList(points))
            .expect("simview accepts any attribute");
    }
}

/// Reads the rendered curve of an environment's display.
pub fn display_curve(tree: &WidgetTree, root: &str) -> Vec<i64> {
    tree.resolve(&ObjectPath::parse(&format!("{root}.display")).expect("static"))
        .and_then(|id| tree.attr(id, &AttrName::custom("curve")).ok())
        .and_then(|v| v.as_int_list().map(<[i64]>::to_vec))
        .unwrap_or_default()
}

fn wire_simulation(session: &mut Session, root: &'static str) {
    for param in ["amplitude", "frequency"] {
        let path = ObjectPath::parse(&format!("{root}.params.{param}")).expect("static path");
        session.toolkit_mut().on(path, EventKind::ValueChanged, move |tree, _| {
            regenerate_display(tree, root);
        });
    }
}

/// Builds the teacher session: presentation environment, simulation
/// wiring, and the help-request inbox handler that buffers incoming
/// requests into the `board.inbox` list widget.
pub fn teacher_session(user: UserId) -> Session {
    let tree = spec::build_tree(TEACHER_SPEC).expect("static spec");
    let mut session = Session::new(Toolkit::from_tree(tree), user, "liveboard", "cosoft-teacher");
    wire_simulation(&mut session, "board");
    session.on_command(HELP_REQUEST_CMD, |toolkit, from, payload| {
        let text = format!("{from}: {}", String::from_utf8_lossy(payload));
        let inbox = ObjectPath::parse("board.inbox").expect("static path");
        if let Some(id) = toolkit.tree().resolve(&inbox) {
            let mut items = toolkit
                .tree()
                .attr(id, &AttrName::Items)
                .ok()
                .and_then(|v| v.as_text_list().map(<[String]>::to_vec))
                .unwrap_or_default();
            items.push(text);
            toolkit
                .tree_mut()
                .set_attr(id, AttrName::Items, Value::TextList(items))
                .expect("inbox is a list");
        }
    });
    regenerate_display(session.toolkit_mut().tree_mut(), "board");
    session
}

/// Builds a student session: exercise environment, simulation wiring, and
/// the request-help button plus the "intelligent demon" watching the
/// answer field.
pub fn student_session(user: UserId, name: &str) -> Session {
    let tree = spec::build_tree(STUDENT_SPEC).expect("static spec");
    let mut session =
        Session::new(Toolkit::from_tree(tree), user, &format!("ws-{name}"), "cosoft-student");
    wire_simulation(&mut session, "exercise");
    regenerate_display(session.toolkit_mut().tree_mut(), "exercise");
    session
}

/// A student explicitly asks for help: sent as a broadcast so the teacher
/// instance (whoever that is) receives and buffers it.
pub fn request_help(student: &mut Session, message: &str) {
    student.send_command(Target::Broadcast, HELP_REQUEST_CMD, message.as_bytes().to_vec());
}

/// The "intelligent demon": inspects a student's answer after each commit
/// and raises an automatic help request after `max_attempts` non-empty
/// wrong answers. Returns `true` if a request was raised.
///
/// The demon is deliberately simple — the paper only requires that
/// requests can be "generated by an intelligent demon" rather than typed
/// by the student.
pub fn demon_check(
    student: &mut Session,
    expected: &str,
    attempts: &mut u32,
    max_attempts: u32,
) -> bool {
    let answer = student
        .toolkit()
        .tree()
        .resolve(&ObjectPath::parse("exercise.answer").expect("static path"))
        .and_then(|id| {
            student
                .toolkit()
                .tree()
                .attr(id, &AttrName::Text)
                .ok()
                .and_then(|v| v.as_text().map(str::to_owned))
        })
        .unwrap_or_default();
    if answer.is_empty() || answer == expected {
        return false;
    }
    *attempts += 1;
    if *attempts >= max_attempts {
        request_help(
            student,
            &format!("demon: {} wrong attempts, last answer {answer:?}", *attempts),
        );
        *attempts = 0;
        true
    } else {
        false
    }
}

/// The teacher's interactive join procedure (§4): couple the blackboard's
/// parameter panel with a selected student's parameter panel via
/// `RemoteCouple`, "initiated from outside the respective applications".
///
/// Couples the parameter panel (complex object) — the simulation displays
/// stay uncoupled and regenerate locally (indirect coupling).
pub fn join_student(teacher: &mut Session, teacher_instance: InstanceId, student: InstanceId) {
    teacher.remote_couple(
        GlobalObjectId::new(teacher_instance, params_path("board")),
        GlobalObjectId::new(student, params_path("exercise")),
    );
}

/// Ends a joint session.
pub fn leave_student(teacher: &mut Session, teacher_instance: InstanceId, student: InstanceId) {
    teacher.remote_decouple(
        GlobalObjectId::new(teacher_instance, params_path("board")),
        GlobalObjectId::new(student, params_path("exercise")),
    );
}

/// Reads the teacher's buffered inbox.
pub fn inbox(teacher: &Session) -> Vec<String> {
    teacher
        .toolkit()
        .tree()
        .resolve(&ObjectPath::parse("board.inbox").expect("static path"))
        .and_then(|id| teacher.toolkit().tree().attr(id, &AttrName::Items).ok())
        .and_then(|v| v.as_text_list().map(<[String]>::to_vec))
        .unwrap_or_default()
}

/// Command name for requesting a stylized description of a remote
/// environment ("a (potentially simplified) graphical representation of
/// the student's environment", §4).
pub const DESCRIBE_CMD: &str = "cosoft-describe";
/// Command name of the description reply.
pub const DESCRIPTION_CMD: &str = "cosoft-description";

/// Teaches a session to answer environment-description requests: on
/// `DESCRIBE_CMD` it replies with the pathnames and kinds of its
/// couplable objects (rendered outline), addressed back to the asker.
pub fn enable_describe(session: &mut Session) {
    session.on_command(DESCRIBE_CMD, |toolkit, from, _payload| {
        let outline = match toolkit.tree().root() {
            Some(root) => {
                let mut lines = Vec::new();
                for id in toolkit.tree().walk(root) {
                    let w = toolkit.tree().widget(id).expect("live widget");
                    let path = toolkit.tree().path_of(id).expect("live widget");
                    lines.push(format!("{} {}", w.kind(), path));
                }
                lines.join("\n")
            }
            None => String::new(),
        };
        // Reply through the same extension mechanism. We cannot reach the
        // session from inside a toolkit callback, so the reply is staged
        // on a well-known label widget and flushed by `pump_describe`.
        let staging = ObjectPath::parse("__describe_reply").expect("static");
        let _ = staging; // staged below via the inbox-free convention:
                         // store the pending reply in a custom attribute of the root.
        if let Some(root) = toolkit.tree().root() {
            toolkit
                .tree_mut()
                .set_attr_unchecked(
                    root,
                    AttrName::custom("__describe_reply"),
                    Value::Text(format!("{}\n{outline}", from.0)),
                )
                .ok();
        }
    });
}

/// Flushes a staged description reply (set by [`enable_describe`]'s
/// handler) out through `CoSendCommand`. Call after settling deliveries.
/// Returns whether a reply was sent.
pub fn pump_describe(session: &mut Session) -> bool {
    let Some(root) = session.toolkit().tree().root() else { return false };
    let staged = session
        .toolkit()
        .tree()
        .attr(root, &AttrName::custom("__describe_reply"))
        .ok()
        .and_then(|v| v.as_text().map(str::to_owned));
    let Some(staged) = staged else { return false };
    session
        .toolkit_mut()
        .tree_mut()
        .set_attr_unchecked(root, AttrName::custom("__describe_reply"), Value::Text(String::new()))
        .ok();
    let Some((to, outline)) = staged.split_once('\n') else { return false };
    let Ok(instance) = to.parse::<u64>() else { return false };
    session.send_command(
        Target::Instance(InstanceId(instance)),
        DESCRIPTION_CMD,
        outline.as_bytes().to_vec(),
    );
    true
}

/// The classroom roster shown on the teacher's board: a list widget named
/// `board.roster` whose items are "instance-id  user  host" lines built
/// from an `InstanceList` reply. Returns the listed student instances in
/// item order.
pub fn update_roster(
    teacher: &mut Session,
    entries: &[cosoft_wire::InstanceInfo],
) -> Vec<InstanceId> {
    let me = teacher.instance();
    let students: Vec<&cosoft_wire::InstanceInfo> =
        entries.iter().filter(|e| Some(e.instance) != me).collect();
    let items: Vec<String> =
        students.iter().map(|e| format!("{}  {}  {}", e.instance, e.user, e.host)).collect();
    let tree = teacher.toolkit_mut().tree_mut();
    let roster_path = ObjectPath::parse("board.roster").expect("static");
    let id = match tree.resolve(&roster_path) {
        Some(id) => id,
        None => {
            let root = tree.root().expect("board exists");
            tree.create(root, cosoft_wire::WidgetKind::List, "roster").expect("unique name")
        }
    };
    tree.set_attr(id, AttrName::Items, Value::TextList(items)).expect("roster is a list");
    students.iter().map(|e| e.instance).collect()
}

/// The complete interactive join procedure of §4: (1) refresh the roster
/// from the server, (2) the caller picks an entry, (3) `RemoteCouple`
/// links the boards. This helper performs step 3 given the pick.
pub fn join_selected(teacher: &mut Session, roster: &[InstanceId], selected: usize) -> bool {
    let Some(&student) = roster.get(selected) else { return false };
    let Some(me) = teacher.instance() else { return false };
    join_student(teacher, me, student);
    true
}

/// Convenience: a slider event for a parameter of an environment.
pub fn set_param_event(root: &str, param: &str, value: f64) -> UiEvent {
    UiEvent::new(
        ObjectPath::parse(&format!("{root}.params.{param}")).expect("static path"),
        EventKind::ValueChanged,
        vec![Value::Float(value)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_core::harness::SimHarness;

    #[test]
    fn simulation_regenerates_from_params() {
        let mut s = student_session(UserId(1), "anna");
        let before = display_curve(s.toolkit().tree(), "exercise");
        assert_eq!(before.len(), DISPLAY_POINTS);
        s.toolkit_mut()
            .deliver(&set_param_event("exercise", "amplitude", 2.0))
            .expect("valid event");
        let after = display_curve(s.toolkit().tree(), "exercise");
        assert_ne!(before, after);
        // Amplitude 2 doubles the fixed-point peak (~2000).
        assert!(after.iter().max().copied().unwrap_or(0) > 1900);
    }

    #[test]
    fn indirect_coupling_syncs_displays_via_params() {
        let mut h = SimHarness::new(1);
        let t = h.add_session(teacher_session(UserId(1)));
        let s = h.add_session(student_session(UserId(2), "ben"));
        h.settle();
        let ti = h.instance_of(t).unwrap();
        let si = h.instance_of(s).unwrap();
        join_student(h.session_mut(t), ti, si);
        h.settle();

        // The student drags the amplitude slider.
        h.session_mut(s)
            .user_event(set_param_event("exercise", "amplitude", 3.0))
            .expect("valid event");
        h.settle();

        // Both displays regenerated locally to the same curve — although
        // the display objects themselves were never coupled.
        let teacher_curve = display_curve(h.session(t).toolkit().tree(), "board");
        let student_curve = display_curve(h.session(s).toolkit().tree(), "exercise");
        assert_eq!(teacher_curve, student_curve);
        assert!(teacher_curve.iter().max().copied().unwrap() > 2900);
        // The displays are not coupled; only the parameter panel is.
        assert!(!h.session(t).is_coupled(&ObjectPath::parse("board.display").unwrap()));
        assert!(h.session(t).is_coupled(&ObjectPath::parse("board.params").unwrap()));
    }

    #[test]
    fn decoupling_restores_private_work() {
        let mut h = SimHarness::new(2);
        let t = h.add_session(teacher_session(UserId(1)));
        let s = h.add_session(student_session(UserId(2), "cara"));
        h.settle();
        let ti = h.instance_of(t).unwrap();
        let si = h.instance_of(s).unwrap();
        join_student(h.session_mut(t), ti, si);
        h.settle();
        leave_student(h.session_mut(t), ti, si);
        h.settle();

        h.session_mut(s)
            .user_event(set_param_event("exercise", "frequency", 4.0))
            .expect("valid event");
        h.settle();
        let teacher_curve = display_curve(h.session(t).toolkit().tree(), "board");
        let student_curve = display_curve(h.session(s).toolkit().tree(), "exercise");
        assert_ne!(teacher_curve, student_curve, "decoupled work is private again");
    }

    #[test]
    fn help_requests_are_buffered_in_order() {
        let mut h = SimHarness::new(3);
        let t = h.add_session(teacher_session(UserId(1)));
        let s1 = h.add_session(student_session(UserId(2), "dina"));
        let s2 = h.add_session(student_session(UserId(3), "emil"));
        h.settle();

        request_help(h.session_mut(s1), "stuck on frequency");
        h.settle();
        request_help(h.session_mut(s2), "what is amplitude?");
        h.settle();

        let msgs = inbox(h.session(t));
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("stuck on frequency"));
        assert!(msgs[1].contains("what is amplitude?"));
    }

    #[test]
    fn demon_raises_request_after_repeated_failures() {
        let mut h = SimHarness::new(4);
        let t = h.add_session(teacher_session(UserId(1)));
        let s = h.add_session(student_session(UserId(2), "finn"));
        h.settle();

        let answer_path = ObjectPath::parse("exercise.answer").unwrap();
        let mut attempts = 0;
        for (i, wrong) in ["1.0", "3.5"].iter().enumerate() {
            h.session_mut(s)
                .user_event(UiEvent::new(
                    answer_path.clone(),
                    EventKind::TextCommitted,
                    vec![Value::Text((*wrong).into())],
                ))
                .expect("valid event");
            let raised = demon_check(h.session_mut(s), "2.0", &mut attempts, 2);
            assert_eq!(raised, i == 1, "raised only on the second failure");
        }
        h.settle();
        let msgs = inbox(h.session(t));
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("demon"));

        // A correct answer never triggers the demon.
        h.session_mut(s)
            .user_event(UiEvent::new(
                answer_path,
                EventKind::TextCommitted,
                vec![Value::Text("2.0".into())],
            ))
            .expect("valid event");
        assert!(!demon_check(h.session_mut(s), "2.0", &mut attempts, 2));
    }

    #[test]
    fn describe_round_trip_lists_remote_objects() {
        let mut h = SimHarness::new(7);
        let t = h.add_session(teacher_session(UserId(1)));
        let s = h.add_session(student_session(UserId(2), "ines"));
        h.settle();
        enable_describe(h.session_mut(s));

        // Teacher asks the student for a stylized environment outline.
        let si = h.instance_of(s).unwrap();
        h.session_mut(t).send_command(cosoft_wire::Target::Instance(si), DESCRIBE_CMD, Vec::new());
        h.settle();
        assert!(pump_describe(h.session_mut(s)), "reply staged and flushed");
        h.settle();

        let outlines: Vec<String> = h
            .session_mut(t)
            .take_events()
            .into_iter()
            .filter_map(|e| match e {
                cosoft_core::SessionEvent::CommandReceived { command, payload, .. }
                    if command == DESCRIPTION_CMD =>
                {
                    Some(String::from_utf8_lossy(&payload).into_owned())
                }
                _ => None,
            })
            .collect();
        assert_eq!(outlines.len(), 1);
        assert!(outlines[0].contains("exercise.params.amplitude"), "{}", outlines[0]);
        assert!(outlines[0].contains("textfield exercise.answer"), "{}", outlines[0]);
    }

    #[test]
    fn roster_and_join_selected() {
        let mut h = SimHarness::new(8);
        let t = h.add_session(teacher_session(UserId(1)));
        let s1 = h.add_session(student_session(UserId(2), "jo"));
        let _s2 = h.add_session(student_session(UserId(3), "kim"));
        h.settle();

        h.session_mut(t).query_instances();
        h.settle();
        let entries = h
            .session_mut(t)
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                cosoft_core::SessionEvent::InstanceList(entries) => Some(entries),
                _ => None,
            })
            .expect("roster reply");
        let roster = update_roster(h.session_mut(t), &entries);
        assert_eq!(roster.len(), 2, "teacher excluded from roster");

        // The roster list widget was created on the board.
        let tree = h.session(t).toolkit().tree();
        let roster_widget = tree.resolve(&ObjectPath::parse("board.roster").unwrap()).unwrap();
        match tree.attr(roster_widget, &AttrName::Items).unwrap() {
            Value::TextList(items) => assert_eq!(items.len(), 2),
            other => panic!("expected items, got {other:?}"),
        }

        // Join the first student and verify coupling works end to end.
        assert!(join_selected(h.session_mut(t), &roster, 0));
        assert!(!join_selected(h.session_mut(t), &roster, 99), "out of range pick");
        h.settle();
        h.session_mut(s1).user_event(set_param_event("exercise", "amplitude", 3.5)).unwrap();
        h.settle();
        let board = display_curve(h.session(t).toolkit().tree(), "board");
        assert!(board.iter().max().copied().unwrap() > 3_400);
    }

    #[test]
    fn teacher_can_join_multiple_students() {
        let mut h = SimHarness::new(5);
        let t = h.add_session(teacher_session(UserId(1)));
        let s1 = h.add_session(student_session(UserId(2), "gus"));
        let s2 = h.add_session(student_session(UserId(3), "hana"));
        h.settle();
        let ti = h.instance_of(t).unwrap();
        let i1 = h.instance_of(s1).unwrap();
        let i2 = h.instance_of(s2).unwrap();
        join_student(h.session_mut(t), ti, i1);
        h.settle();
        join_student(h.session_mut(t), ti, i2);
        h.settle();

        // One student's change reaches everyone through the closure.
        h.session_mut(s1)
            .user_event(set_param_event("exercise", "amplitude", 0.5))
            .expect("valid event");
        h.settle();
        for (node, root) in [(t, "board"), (s1, "exercise"), (s2, "exercise")] {
            let curve = display_curve(h.session(node).toolkit().tree(), root);
            let peak = curve.iter().max().copied().unwrap();
            assert!((400..=500).contains(&peak), "{root}: peak {peak}");
        }
    }
}
