//! Compatibility between UI objects (§3.3).
//!
//! * **Directly compatible** primitives: same type, or a declared
//!   [`CorrespondenceTable`] entry mapping each relevant attribute of the
//!   source to an attribute of the destination.
//! * **s-compatible** complex objects: a one-to-one mapping between direct
//!   components such that each pair is directly compatible (primitives) or
//!   s-compatible (complex), recursively. Matching uses a (kind, name)
//!   heuristic — name-equal children first, then same-kind children in
//!   order — "sometimes it can be pre-defined, or certain heuristics have
//!   to be used to avoid combinatorial explosion".
//! * **Destructive merging**: copy attribute values *and structure*,
//!   destroying conflicting destination children and creating missing
//!   ones.
//! * **Flexible matching**: synchronize the identical substructure;
//!   differing substructures are conserved (extra destination children
//!   survive) and merged (missing source children are created).

use std::collections::HashMap;
use std::fmt;

use cosoft_uikit::{UiError, WidgetId, WidgetTree};
use cosoft_wire::{AttrName, StateNode, WidgetKind};

/// Error produced by state application and compatibility checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompatError {
    /// The two primitive object types are not directly compatible.
    NotDirectlyCompatible {
        /// Source widget kind.
        src: WidgetKind,
        /// Destination widget kind.
        dst: WidgetKind,
    },
    /// No one-to-one structural mapping exists.
    NotStructurallyCompatible {
        /// Human-readable reason naming the first mismatch.
        reason: String,
    },
    /// An underlying toolkit operation failed.
    Ui(UiError),
}

impl fmt::Display for CompatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatError::NotDirectlyCompatible { src, dst } => {
                write!(f, "{src} and {dst} are not directly compatible")
            }
            CompatError::NotStructurallyCompatible { reason } => {
                write!(f, "not structurally compatible: {reason}")
            }
            CompatError::Ui(e) => write!(f, "toolkit error: {e}"),
        }
    }
}

impl std::error::Error for CompatError {}

impl From<UiError> for CompatError {
    fn from(e: UiError) -> Self {
        CompatError::Ui(e)
    }
}

/// Declared correspondence relations between widget kinds (§3.3:
/// "a correspondence relation is declared for their relevant attributes").
#[derive(Debug, Clone, Default)]
pub struct CorrespondenceTable {
    map: HashMap<(WidgetKind, WidgetKind), Vec<(AttrName, AttrName)>>,
}

impl CorrespondenceTable {
    /// Creates an empty table (only same-kind objects are compatible).
    pub fn new() -> Self {
        CorrespondenceTable::default()
    }

    /// Declares that `src` objects can be copied/coupled onto `dst`
    /// objects, mapping each source attribute to a destination attribute.
    pub fn declare(&mut self, src: WidgetKind, dst: WidgetKind, pairs: Vec<(AttrName, AttrName)>) {
        self.map.insert((src, dst), pairs);
    }

    /// Declares a correspondence in both directions with the attribute
    /// pairs reversed for the way back.
    pub fn declare_symmetric(
        &mut self,
        a: WidgetKind,
        b: WidgetKind,
        pairs: Vec<(AttrName, AttrName)>,
    ) {
        let reversed = pairs.iter().map(|(x, y)| (y.clone(), x.clone())).collect();
        self.declare(a.clone(), b.clone(), pairs);
        self.declare(b, a, reversed);
    }

    /// The declared attribute mapping from `src` to `dst`, if any.
    pub fn mapping(&self, src: &WidgetKind, dst: &WidgetKind) -> Option<&[(AttrName, AttrName)]> {
        self.map.get(&(src.clone(), dst.clone())).map(Vec::as_slice)
    }

    /// Whether `src` is directly compatible with `dst`: same kind, or a
    /// declared correspondence.
    pub fn directly_compatible(&self, src: &WidgetKind, dst: &WidgetKind) -> bool {
        src == dst || self.mapping(src, dst).is_some()
    }

    /// Translates a source attribute name for the destination kind.
    /// Same-kind pairs translate identically; corresponding kinds go
    /// through the declared pairs; unmapped attributes return `None`.
    pub fn translate(
        &self,
        src: &WidgetKind,
        dst: &WidgetKind,
        attr: &AttrName,
    ) -> Option<AttrName> {
        if src == dst {
            return Some(attr.clone());
        }
        self.mapping(src, dst)?.iter().find(|(s, _)| s == attr).map(|(_, d)| d.clone())
    }
}

/// Checks s-compatibility between a source snapshot and a destination
/// snapshot (§3.3's definition, used for coupling-time checks and the L5
/// benchmark).
///
/// Returns `Ok(())` or the first structural mismatch.
///
/// # Errors
///
/// [`CompatError::NotDirectlyCompatible`] or
/// [`CompatError::NotStructurallyCompatible`].
pub fn check_s_compatible(
    src: &StateNode,
    dst: &StateNode,
    corr: &CorrespondenceTable,
) -> Result<(), CompatError> {
    if !corr.directly_compatible(&src.kind, &dst.kind) {
        return Err(CompatError::NotDirectlyCompatible {
            src: src.kind.clone(),
            dst: dst.kind.clone(),
        });
    }
    if src.children.len() != dst.children.len() {
        return Err(CompatError::NotStructurallyCompatible {
            reason: format!(
                "{} has {} components, {} has {}",
                src.name,
                src.children.len(),
                dst.name,
                dst.children.len()
            ),
        });
    }
    let pairs = match_children(
        &src.children.iter().collect::<Vec<_>>(),
        &dst.children.iter().map(|c| (c.kind.clone(), c.name.clone())).collect::<Vec<_>>(),
        corr,
    );
    let mut matched_dst = vec![false; dst.children.len()];
    for (si, di) in &pairs {
        matched_dst[*di] = true;
        check_s_compatible(&src.children[*si], &dst.children[*di], corr)?;
    }
    if pairs.len() != src.children.len() {
        let unmatched = src
            .children
            .iter()
            .enumerate()
            .find(|(i, _)| !pairs.iter().any(|(si, _)| si == i))
            .map(|(_, c)| c.name.clone())
            .unwrap_or_default();
        return Err(CompatError::NotStructurallyCompatible {
            reason: format!("no counterpart for component {unmatched}"),
        });
    }
    Ok(())
}

/// Greedy one-to-one matching between source children and destination
/// `(kind, name)` descriptors: exact-name compatible matches first, then
/// first-fit by kind compatibility in order.
fn match_children(
    src: &[&StateNode],
    dst: &[(WidgetKind, String)],
    corr: &CorrespondenceTable,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut dst_taken = vec![false; dst.len()];
    let mut src_matched = vec![false; src.len()];
    // Pass 1: same name + compatible kind.
    for (si, s) in src.iter().enumerate() {
        for (di, (dkind, dname)) in dst.iter().enumerate() {
            if !dst_taken[di] && *dname == s.name && corr.directly_compatible(&s.kind, dkind) {
                pairs.push((si, di));
                dst_taken[di] = true;
                src_matched[si] = true;
                break;
            }
        }
    }
    // Pass 2: first unmatched compatible kind, in order.
    for (si, s) in src.iter().enumerate() {
        if src_matched[si] {
            continue;
        }
        for (di, (dkind, _)) in dst.iter().enumerate() {
            if !dst_taken[di] && corr.directly_compatible(&s.kind, dkind) {
                pairs.push((si, di));
                dst_taken[di] = true;
                src_matched[si] = true;
                break;
            }
        }
    }
    pairs.sort();
    pairs
}

/// Statistics about one state application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Attribute values written.
    pub attrs_written: usize,
    /// Widgets created (destructive merge / flexible match only).
    pub created: usize,
    /// Widgets destroyed (destructive merge only).
    pub destroyed: usize,
    /// Semantic payloads delivered to `load` hooks (filled by the caller).
    pub semantic_loaded: usize,
}

/// Applies `snapshot` to the widget at `dst` requiring strict structural
/// compatibility (§3.1 "copying UI state").
///
/// # Errors
///
/// Fails without modifying the tree if the source and destination are not
/// s-compatible.
pub fn apply_strict(
    tree: &mut WidgetTree,
    dst: WidgetId,
    snapshot: &StateNode,
    corr: &CorrespondenceTable,
) -> Result<ApplyReport, CompatError> {
    // Validate first so failure leaves the tree untouched.
    let dst_snapshot = tree.snapshot(dst, false)?;
    check_s_compatible(snapshot, &dst_snapshot, corr)?;
    let mut report = ApplyReport::default();
    apply_matched(tree, dst, snapshot, corr, &mut report)?;
    Ok(report)
}

/// Writes the (translated) attributes of `snap` onto `dst` and recurses
/// over the already-validated child matching.
fn apply_matched(
    tree: &mut WidgetTree,
    dst: WidgetId,
    snap: &StateNode,
    corr: &CorrespondenceTable,
    report: &mut ApplyReport,
) -> Result<(), CompatError> {
    let dst_kind = tree.widget(dst)?.kind().clone();
    for (attr, value) in &snap.attrs {
        if let Some(translated) = corr.translate(&snap.kind, &dst_kind, attr) {
            tree.set_attr_unchecked(dst, translated, value.clone())?;
            report.attrs_written += 1;
        }
    }
    let dst_children: Vec<(WidgetKind, String, WidgetId)> = tree
        .widget(dst)?
        .children()
        .iter()
        .map(|&c| {
            let w = tree.widget(c).expect("live child");
            (w.kind().clone(), w.name().to_owned(), c)
        })
        .collect();
    let descriptors: Vec<(WidgetKind, String)> =
        dst_children.iter().map(|(k, n, _)| (k.clone(), n.clone())).collect();
    let pairs = match_children(&snap.children.iter().collect::<Vec<_>>(), &descriptors, corr);
    for (si, di) in pairs {
        apply_matched(tree, dst_children[di].2, &snap.children[si], corr, report)?;
    }
    Ok(())
}

/// Instantiates a snapshot subtree as fresh widgets under `parent`.
fn instantiate(
    tree: &mut WidgetTree,
    parent: WidgetId,
    snap: &StateNode,
    report: &mut ApplyReport,
) -> Result<WidgetId, CompatError> {
    let id = tree.create(parent, snap.kind.clone(), &snap.name)?;
    report.created += 1;
    for (attr, value) in &snap.attrs {
        tree.set_attr_unchecked(id, attr.clone(), value.clone())?;
        report.attrs_written += 1;
    }
    for child in &snap.children {
        instantiate(tree, id, child, report)?;
    }
    Ok(id)
}

/// Applies `snapshot` with **destructive merging** (§3.3): the
/// destination's structure is forced to match the source — conflicting
/// destination children are destroyed, missing ones created.
///
/// # Errors
///
/// Only on toolkit failures; structure differences are resolved, not
/// reported.
pub fn apply_destructive(
    tree: &mut WidgetTree,
    dst: WidgetId,
    snapshot: &StateNode,
    corr: &CorrespondenceTable,
) -> Result<ApplyReport, CompatError> {
    let mut report = ApplyReport::default();
    merge_node(tree, dst, snapshot, corr, true, &mut report)?;
    Ok(report)
}

/// Applies `snapshot` with **flexible matching** (§3.3): the identical
/// substructure is synchronized; destination-only children are conserved
/// and source-only children are merged in.
///
/// # Errors
///
/// Only on toolkit failures.
pub fn apply_flexible(
    tree: &mut WidgetTree,
    dst: WidgetId,
    snapshot: &StateNode,
    corr: &CorrespondenceTable,
) -> Result<ApplyReport, CompatError> {
    let mut report = ApplyReport::default();
    merge_node(tree, dst, snapshot, corr, false, &mut report)?;
    Ok(report)
}

fn merge_node(
    tree: &mut WidgetTree,
    dst: WidgetId,
    snap: &StateNode,
    corr: &CorrespondenceTable,
    destructive: bool,
    report: &mut ApplyReport,
) -> Result<(), CompatError> {
    // Attributes of this node.
    let dst_kind = tree.widget(dst)?.kind().clone();
    if corr.directly_compatible(&snap.kind, &dst_kind) {
        for (attr, value) in &snap.attrs {
            if let Some(translated) = corr.translate(&snap.kind, &dst_kind, attr) {
                tree.set_attr_unchecked(dst, translated, value.clone())?;
                report.attrs_written += 1;
            }
        }
    }
    // Children.
    let dst_children: Vec<(WidgetKind, String, WidgetId)> = tree
        .widget(dst)?
        .children()
        .iter()
        .map(|&c| {
            let w = tree.widget(c).expect("live child");
            (w.kind().clone(), w.name().to_owned(), c)
        })
        .collect();
    let descriptors: Vec<(WidgetKind, String)> =
        dst_children.iter().map(|(k, n, _)| (k.clone(), n.clone())).collect();
    let pairs = match_children(&snap.children.iter().collect::<Vec<_>>(), &descriptors, corr);
    let mut dst_matched = vec![false; dst_children.len()];
    let mut src_matched = vec![false; snap.children.len()];
    for (si, di) in &pairs {
        dst_matched[*di] = true;
        src_matched[*si] = true;
        merge_node(tree, dst_children[*di].2, &snap.children[*si], corr, destructive, report)?;
    }
    if destructive {
        // Conflicting destination children are destroyed.
        for (di, (_, _, id)) in dst_children.iter().enumerate() {
            if !dst_matched[di] {
                report.destroyed += tree.destroy(*id)?.len();
            }
        }
    }
    // Missing source children are created (both modes; flexible matching
    // "conserves differing substructures by merging").
    for (si, child) in snap.children.iter().enumerate() {
        if !src_matched[si] {
            // A name clash with a conserved (incompatible) child would
            // reject creation; disambiguate like a user renaming on merge.
            let name_taken = {
                let w = tree.widget(dst)?;
                w.children()
                    .iter()
                    .any(|&c| tree.widget(c).map(|cw| cw.name() == child.name).unwrap_or(false))
            };
            if name_taken {
                let mut renamed = child.clone();
                renamed.name = format!("{}_merged", child.name);
                instantiate(tree, dst, &renamed, report)?;
            } else {
                instantiate(tree, dst, child, report)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_uikit::spec::build_tree;
    use cosoft_wire::{ObjectPath, Value};

    fn corr() -> CorrespondenceTable {
        CorrespondenceTable::new()
    }

    fn snap_of(spec: &str) -> StateNode {
        let tree = build_tree(spec).unwrap();
        tree.snapshot(tree.root().unwrap(), true).unwrap()
    }

    #[test]
    fn same_kind_is_directly_compatible() {
        let c = corr();
        assert!(c.directly_compatible(&WidgetKind::TextField, &WidgetKind::TextField));
        assert!(!c.directly_compatible(&WidgetKind::TextField, &WidgetKind::Label));
    }

    #[test]
    fn correspondence_enables_cross_kind_compat() {
        let mut c = corr();
        c.declare_symmetric(
            WidgetKind::TextField,
            WidgetKind::Label,
            vec![(AttrName::Text, AttrName::Text)],
        );
        assert!(c.directly_compatible(&WidgetKind::TextField, &WidgetKind::Label));
        assert!(c.directly_compatible(&WidgetKind::Label, &WidgetKind::TextField));
        assert_eq!(
            c.translate(&WidgetKind::TextField, &WidgetKind::Label, &AttrName::Text),
            Some(AttrName::Text)
        );
        assert_eq!(
            c.translate(&WidgetKind::TextField, &WidgetKind::Label, &AttrName::Width),
            None,
            "unmapped attributes are skipped"
        );
    }

    #[test]
    fn identical_structures_are_s_compatible() {
        let a = snap_of(r#"form f { textfield x text="1" menu m selected=0 }"#);
        let b = snap_of(r#"form g { textfield x text="2" menu m selected=1 }"#);
        check_s_compatible(&a, &b, &corr()).unwrap();
    }

    #[test]
    fn name_differences_still_match_by_kind() {
        let a = snap_of(r#"form f { textfield author text="" }"#);
        let b = snap_of(r#"form g { textfield verfasser text="" }"#);
        check_s_compatible(&a, &b, &corr()).unwrap();
    }

    #[test]
    fn component_count_mismatch_is_incompatible() {
        let a = snap_of(r#"form f { textfield x text="" textfield y text="" }"#);
        let b = snap_of(r#"form g { textfield x text="" }"#);
        let err = check_s_compatible(&a, &b, &corr()).unwrap_err();
        assert!(matches!(err, CompatError::NotStructurallyCompatible { .. }));
    }

    #[test]
    fn kind_mismatch_without_correspondence_is_incompatible() {
        let a = snap_of(r#"form f { textfield x text="" }"#);
        let b = snap_of(r#"form g { slider x value=0.0 }"#);
        assert!(check_s_compatible(&a, &b, &corr()).is_err());
        // With a declared correspondence the same pair passes.
        let mut c = corr();
        c.declare(
            WidgetKind::TextField,
            WidgetKind::Slider,
            vec![(AttrName::Text, AttrName::custom("label"))],
        );
        check_s_compatible(&a, &b, &c).unwrap();
    }

    #[test]
    fn apply_strict_writes_relevant_attrs() {
        let snap = snap_of(r#"form f title="Src" { textfield x text="copied" }"#);
        let mut tree = build_tree(r#"form g title="Dst" { textfield x text="old" }"#).unwrap();
        let root = tree.root().unwrap();
        let report = apply_strict(&mut tree, root, &snap, &corr()).unwrap();
        assert!(report.attrs_written >= 2);
        let x = tree.resolve(&ObjectPath::parse("g.x").unwrap()).unwrap();
        assert_eq!(tree.attr(x, &AttrName::Text).unwrap(), &Value::Text("copied".into()));
        let g = tree.resolve(&ObjectPath::parse("g").unwrap()).unwrap();
        assert_eq!(tree.attr(g, &AttrName::Title).unwrap(), &Value::Text("Src".into()));
    }

    #[test]
    fn apply_strict_fails_atomically_on_mismatch() {
        let snap = snap_of(r#"form f title="Src" { textfield x text="new" slider s value=0.9 }"#);
        let mut tree = build_tree(r#"form g title="Dst" { textfield x text="old" }"#).unwrap();
        let root = tree.root().unwrap();
        assert!(apply_strict(&mut tree, root, &snap, &corr()).is_err());
        // Nothing was modified.
        let x = tree.resolve(&ObjectPath::parse("g.x").unwrap()).unwrap();
        assert_eq!(tree.attr(x, &AttrName::Text).unwrap(), &Value::Text("old".into()));
    }

    #[test]
    fn destructive_merge_copies_structure() {
        let snap = snap_of(
            r#"form f title="Src" {
                 textfield keep text="synced"
                 slider extra value=0.7
               }"#,
        );
        let mut tree = build_tree(
            r#"form g title="Dst" {
                 textfield keep text="old"
                 canvas conflicting
               }"#,
        )
        .unwrap();
        let root = tree.root().unwrap();
        let report = apply_destructive(&mut tree, root, &snap, &corr()).unwrap();
        assert_eq!(report.destroyed, 1, "conflicting canvas destroyed");
        assert_eq!(report.created, 1, "missing slider created");
        assert!(tree.resolve(&ObjectPath::parse("g.extra").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("g.conflicting").unwrap()).is_none());
        let keep = tree.resolve(&ObjectPath::parse("g.keep").unwrap()).unwrap();
        assert_eq!(tree.attr(keep, &AttrName::Text).unwrap(), &Value::Text("synced".into()));
    }

    #[test]
    fn flexible_match_conserves_extra_children() {
        let snap = snap_of(
            r#"form f title="Src" {
                 textfield shared text="synced"
                 slider newbie value=0.3
               }"#,
        );
        let mut tree = build_tree(
            r#"form g title="Dst" {
                 textfield shared text="old"
                 canvas private
               }"#,
        )
        .unwrap();
        let root = tree.root().unwrap();
        let report = apply_flexible(&mut tree, root, &snap, &corr()).unwrap();
        assert_eq!(report.destroyed, 0);
        assert_eq!(report.created, 1);
        // The private canvas survives; the new slider is merged in.
        assert!(tree.resolve(&ObjectPath::parse("g.private").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("g.newbie").unwrap()).is_some());
        let shared = tree.resolve(&ObjectPath::parse("g.shared").unwrap()).unwrap();
        assert_eq!(tree.attr(shared, &AttrName::Text).unwrap(), &Value::Text("synced".into()));
    }

    #[test]
    fn flexible_match_renames_on_name_clash() {
        // Destination has an *incompatible* child with the same name.
        let snap = snap_of(r#"form f { slider same value=0.5 }"#);
        let mut tree = build_tree(r#"form g { canvas same }"#).unwrap();
        let root = tree.root().unwrap();
        apply_flexible(&mut tree, root, &snap, &corr()).unwrap();
        assert!(tree.resolve(&ObjectPath::parse("g.same").unwrap()).is_some());
        assert!(tree.resolve(&ObjectPath::parse("g.same_merged").unwrap()).is_some());
    }

    #[test]
    fn destructive_merge_is_idempotent() {
        let snap = snap_of(r#"form f { textfield a text="x" slider b value=0.1 }"#);
        let mut tree = build_tree(r#"form g { canvas z }"#).unwrap();
        let root = tree.root().unwrap();
        apply_destructive(&mut tree, root, &snap, &corr()).unwrap();
        let after_first = tree.snapshot(root, true).unwrap();
        let report = apply_destructive(&mut tree, root, &snap, &corr()).unwrap();
        assert_eq!(report.created, 0);
        assert_eq!(report.destroyed, 0);
        assert_eq!(tree.snapshot(root, true).unwrap(), after_first);
    }

    #[test]
    fn destructive_merge_makes_target_s_compatible() {
        let snap = snap_of(r#"form f { panel p { textfield deep text="v" } slider s value=0.2 }"#);
        let mut tree = build_tree(r#"form g { label odd text="?" }"#).unwrap();
        let root = tree.root().unwrap();
        apply_destructive(&mut tree, root, &snap, &corr()).unwrap();
        let result = tree.snapshot(root, true).unwrap();
        check_s_compatible(&snap, &result, &corr()).unwrap();
    }

    #[test]
    fn cross_kind_apply_through_correspondence() {
        // TORI-style: couple a result label onto a query text field.
        let mut c = corr();
        c.declare(WidgetKind::TextField, WidgetKind::Label, vec![(AttrName::Text, AttrName::Text)]);
        let snap = snap_of(r#"textfield src text="result-42""#);
        let mut tree = build_tree(r#"label dst text="""#).unwrap();
        let root = tree.root().unwrap();
        apply_strict(&mut tree, root, &snap, &c).unwrap();
        assert_eq!(tree.attr(root, &AttrName::Text).unwrap(), &Value::Text("result-42".into()));
    }
}
