//! The client-side coupling runtime.
//!
//! A [`Session`] wraps one application instance's [`Toolkit`] and speaks
//! the COSOFT protocol: it intercepts user events on coupled objects
//! (§3.2 multiple execution), serves and applies state transfers (§3.1
//! synchronization by UI state), keeps the locally replicated coupling
//! information up to date, and dispatches application-defined commands
//! (§3.4).
//!
//! Like the server core, a `Session` is sans-I/O: callers feed incoming
//! messages through [`Session::on_message`] and pump
//! [`Session::drain_outbox`] into whatever transport carries the
//! protocol.

use std::collections::HashMap;
use std::fmt;

use cosoft_uikit::{FeedbackUndo, Toolkit, UiError};
use cosoft_wire::{
    delta, AccessRight, CopyMode, GlobalObjectId, InstanceId, InstanceInfo, Message, ObjectPath,
    StateNode, Target, UiEvent, UserId,
};

use crate::compat::{
    apply_destructive, apply_flexible, apply_strict, CompatError, CorrespondenceTable,
};
use crate::semantic::SemanticHooks;

/// Application-visible notification produced by a [`Session`].
#[derive(Debug)]
pub enum SessionEvent {
    /// The server accepted registration and assigned this instance id.
    Registered(InstanceId),
    /// A rejoin after a connection loss succeeded: the session kept (or
    /// was reassigned) this instance id and queued its resynchronization
    /// (couple re-assertion + state pulls).
    Resumed(InstanceId),
    /// The coupling group of a local object changed; an empty `group`
    /// means the object is no longer coupled.
    CoupleChanged {
        /// Local object.
        local: ObjectPath,
        /// New full group (empty when decoupled).
        group: Vec<GlobalObjectId>,
    },
    /// Floor control rejected a local event; its feedback was rolled back.
    EventRejected {
        /// The rejected event.
        event: UiEvent,
    },
    /// A state transfer initiated by this instance completed.
    CopyCompleted {
        /// The request id returned by the initiating call.
        req_id: u64,
    },
    /// A command arrived with no registered handler.
    CommandReceived {
        /// Sending instance.
        from: InstanceId,
        /// Symbolic command name.
        command: String,
        /// Packed message.
        payload: Vec<u8>,
    },
    /// Reply to [`Session::query_instances`].
    InstanceList(Vec<InstanceInfo>),
    /// Reply to [`Session::list_coupled`].
    CoupledSet {
        /// Queried object.
        object: GlobalObjectId,
        /// Its coupled set.
        coupled: Vec<GlobalObjectId>,
    },
    /// The server refused an operation.
    PermissionDenied {
        /// Description of the refused operation.
        what: String,
    },
    /// A server-side error.
    Error {
        /// What failed.
        context: String,
        /// Why.
        reason: String,
    },
}

/// Handler for an application-defined command (§3.4): "in the receiver
/// instances, a function (corresponding to the command) is defined to
/// unpack and interpret the message".
pub type CommandHandler = Box<dyn FnMut(&mut Toolkit, InstanceId, &[u8]) + Send>;

#[derive(Debug)]
struct PendingEvent {
    event: UiEvent,
    undo: FeedbackUndo,
    /// The path's remote-execution epoch when the echo was applied.
    epoch: u64,
}

/// Error produced by session operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The session has not received its [`Message::Welcome`] yet.
    NotRegistered,
    /// A toolkit operation failed.
    Ui(UiError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NotRegistered => write!(f, "session is not registered yet"),
            SessionError::Ui(e) => write!(f, "toolkit error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<UiError> for SessionError {
    fn from(e: UiError) -> Self {
        SessionError::Ui(e)
    }
}

/// One application instance's connection to the COSOFT world.
pub struct Session {
    toolkit: Toolkit,
    corr: CorrespondenceTable,
    hooks: SemanticHooks,
    instance: Option<InstanceId>,
    /// Registration credentials, kept so the session can re-register from
    /// scratch when a resume token is rejected after a reconnect.
    user: UserId,
    host: String,
    app_name: String,
    /// Resume token from the server's last `SessionToken` (present only
    /// when the server runs with a liveness grace period).
    resume_token: Option<u64>,
    /// Set between [`Session::begin_rejoin`] and the next `Welcome`.
    rejoining: bool,
    /// The instance id held before the rejoin started; group members
    /// carrying it are *us* under a previous identity and must not be
    /// used as resync sources.
    stale_instance: Option<InstanceId>,
    /// Locally replicated coupling information: local object → full group
    /// ("the coupling information is replicated for each object (to be
    /// completely available locally)", §3.2).
    coupling: HashMap<ObjectPath, Vec<GlobalObjectId>>,
    pending_events: HashMap<u64, PendingEvent>,
    /// Sequence numbers of pending events in issue order — the optimistic
    /// echo *stack*. A rejection in the middle unwinds the suffix in
    /// reverse and replays the survivors so nested echoes resolve
    /// correctly.
    pending_order: Vec<u64>,
    /// Per-path remote-execution epoch: bumped every time a remote
    /// `ExecuteEvent` applies to a local object. A rejected echo is only
    /// rolled back if no remote execution touched its object since the
    /// echo was applied — otherwise the (authoritative) remote value must
    /// survive, even when it happens to equal the echo.
    remote_epoch: HashMap<ObjectPath, u64>,
    command_handlers: HashMap<String, CommandHandler>,
    /// Last successfully applied transfer per local object, as transmitted
    /// by the server (version, state). The server sends attribute-level
    /// deltas against this base on subsequent transfers; a missing or
    /// stale entry makes the session reject the delta, which triggers the
    /// server's full-snapshot fallback. Kept across rejoins so resync
    /// transfers can still ride the delta path.
    sync_bases: HashMap<ObjectPath, (u64, StateNode)>,
    next_seq: u64,
    next_req: u64,
    outbox: Vec<Message>,
    events: Vec<SessionEvent>,
    /// Events re-executed locally on behalf of remote origins (metric).
    remote_executions: u64,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("instance", &self.instance)
            .field("coupled_objects", &self.coupling.len())
            .field("pending_events", &self.pending_events.len())
            .finish()
    }
}

impl Session {
    /// Creates a session around a toolkit and queues its registration.
    pub fn new(toolkit: Toolkit, user: UserId, host: &str, app_name: &str) -> Self {
        let mut s = Session {
            toolkit,
            corr: CorrespondenceTable::new(),
            hooks: SemanticHooks::new(),
            instance: None,
            user,
            host: host.to_owned(),
            app_name: app_name.to_owned(),
            resume_token: None,
            rejoining: false,
            stale_instance: None,
            coupling: HashMap::new(),
            pending_events: HashMap::new(),
            pending_order: Vec::new(),
            remote_epoch: HashMap::new(),
            command_handlers: HashMap::new(),
            sync_bases: HashMap::new(),
            next_seq: 1,
            next_req: 1,
            outbox: Vec::new(),
            events: Vec::new(),
            remote_executions: 0,
        };
        s.outbox.push(Message::Register {
            user,
            host: host.to_owned(),
            app_name: app_name.to_owned(),
        });
        s
    }

    /// The toolkit (widget tree + callbacks).
    pub fn toolkit(&self) -> &Toolkit {
        &self.toolkit
    }

    /// Mutable toolkit access.
    pub fn toolkit_mut(&mut self) -> &mut Toolkit {
        &mut self.toolkit
    }

    /// Mutable access to the correspondence table for declaring cross-kind
    /// compatibility.
    pub fn correspondences_mut(&mut self) -> &mut CorrespondenceTable {
        &mut self.corr
    }

    /// Mutable access to the semantic store/load hook registry.
    pub fn hooks_mut(&mut self) -> &mut SemanticHooks {
        &mut self.hooks
    }

    /// The instance id assigned at registration, if received.
    pub fn instance(&self) -> Option<InstanceId> {
        self.instance
    }

    /// Events re-executed locally on behalf of remote origins.
    pub fn remote_executions(&self) -> u64 {
        self.remote_executions
    }

    /// The resume token from the server's last `SessionToken`, if any.
    pub fn resume_token(&self) -> Option<u64> {
        self.resume_token
    }

    /// Whether a rejoin is in flight (between [`Session::begin_rejoin`]
    /// and the server's `Welcome`).
    pub fn is_rejoining(&self) -> bool {
        self.rejoining
    }

    /// Queues a liveness probe; the server answers with a `Pong` carrying
    /// the returned nonce.
    pub fn ping(&mut self) -> u64 {
        let nonce = self.next_req;
        self.next_req += 1;
        self.outbox.push(Message::Ping { nonce });
        nonce
    }

    /// Starts session resumption after the transport reconnected.
    ///
    /// Optimistic echoes and in-flight floor-control requests are
    /// abandoned — their grants or rejections were lost with the old
    /// connection. If the server handed out a resume token, a
    /// [`Message::Rejoin`] is queued to reclaim the old instance id,
    /// couples, and access rights; otherwise the session falls back to a
    /// fresh [`Message::Register`]. Either way, the next `Welcome`
    /// triggers resynchronization: couples are re-asserted and each
    /// coupled group's authoritative state is pulled via `CopyFrom`
    /// (§3.1), after which [`SessionEvent::Resumed`] is reported.
    pub fn begin_rejoin(&mut self) {
        self.pending_events.clear();
        self.pending_order.clear();
        self.rejoining = true;
        self.stale_instance = self.instance;
        match self.resume_token {
            Some(token) => self.outbox.push(Message::Rejoin { resume_token: token }),
            None => self.outbox.push(Message::Register {
                user: self.user,
                host: self.host.clone(),
                app_name: self.app_name.clone(),
            }),
        }
    }

    /// The global id of a local object.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`] before the `Welcome` arrived.
    pub fn gid(&self, path: &ObjectPath) -> Result<GlobalObjectId, SessionError> {
        let instance = self.instance.ok_or(SessionError::NotRegistered)?;
        Ok(GlobalObjectId::new(instance, path.clone()))
    }

    /// Whether a local object (or an enclosing complex object) is coupled.
    pub fn is_coupled(&self, path: &ObjectPath) -> bool {
        self.coupled_base(path).is_some()
    }

    /// The coupling group of a local object, if coupled.
    pub fn group_of(&self, path: &ObjectPath) -> Option<&[GlobalObjectId]> {
        self.coupling.get(path).map(Vec::as_slice)
    }

    fn coupled_base(&self, path: &ObjectPath) -> Option<ObjectPath> {
        if self.coupling.contains_key(path) {
            return Some(path.clone());
        }
        let mut cur = path.clone();
        while let Some(parent) = cur.parent() {
            if self.coupling.contains_key(&parent) {
                return Some(parent);
            }
            cur = parent;
        }
        None
    }

    /// Messages waiting to be carried to the server.
    pub fn drain_outbox(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.outbox)
    }

    /// Application-visible notifications gathered since the last call.
    pub fn take_events(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }

    // ---- user-facing operations -------------------------------------------

    /// Processes a user event.
    ///
    /// Events on uncoupled objects are delivered entirely locally. Events
    /// on coupled objects apply their syntactic feedback immediately, then
    /// travel to the server for floor control; callbacks run only after
    /// [`Message::EventGranted`] arrives (§3.2).
    ///
    /// # Errors
    ///
    /// Toolkit validation errors ([`UiError::Disabled`] when the object is
    /// locked, unknown paths, malformed parameters).
    pub fn user_event(&mut self, event: UiEvent) -> Result<(), SessionError> {
        match self.coupled_base(&event.path) {
            None => {
                self.toolkit.deliver(&event)?;
                Ok(())
            }
            Some(_) => {
                let undo = self.toolkit.input(&event)?;
                let origin = self.gid(&event.path)?;
                let seq = self.next_seq;
                self.next_seq += 1;
                let epoch = self.remote_epoch.get(&event.path).copied().unwrap_or(0);
                self.pending_events.insert(seq, PendingEvent { event: event.clone(), undo, epoch });
                self.pending_order.push(seq);
                self.outbox.push(Message::Event { origin, event, seq });
                Ok(())
            }
        }
    }

    /// Requests a couple link from a local object to a remote object.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn couple(&mut self, src: &ObjectPath, dst: GlobalObjectId) -> Result<(), SessionError> {
        let src = self.gid(src)?;
        self.outbox.push(Message::Couple { src, dst });
        Ok(())
    }

    /// Removes the couple link between a local object and a remote object.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn decouple(&mut self, src: &ObjectPath, dst: GlobalObjectId) -> Result<(), SessionError> {
        let src = self.gid(src)?;
        self.outbox.push(Message::Decouple { src, dst });
        Ok(())
    }

    /// The complete join procedure of §3.1: initial synchronization by
    /// copying the remote object's state into the local object, then the
    /// couple link for continuous synchronization by multiple execution.
    /// Returns the copy's request id.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn join(
        &mut self,
        remote: GlobalObjectId,
        local: &ObjectPath,
        mode: CopyMode,
    ) -> Result<u64, SessionError> {
        let req = self.copy_from(remote.clone(), local, mode)?;
        self.couple(local, remote)?;
        Ok(req)
    }

    /// Leaves a coupling group entirely: removes the links between the
    /// local object and every remote member recorded in the locally
    /// replicated coupling information. Returns how many decouple
    /// requests were issued (0 when the object is not coupled).
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn leave_group(&mut self, local: &ObjectPath) -> Result<usize, SessionError> {
        let me = self.instance.ok_or(SessionError::NotRegistered)?;
        let peers: Vec<GlobalObjectId> = self
            .coupling
            .get(local)
            .map(|group| {
                group.iter().filter(|g| !(g.instance == me && g.path == *local)).cloned().collect()
            })
            .unwrap_or_default();
        for peer in &peers {
            self.decouple(local, peer.clone())?;
        }
        Ok(peers.len())
    }

    /// Third-party coupling of two remote objects (§3.3 `RemoteCouple`).
    pub fn remote_couple(&mut self, a: GlobalObjectId, b: GlobalObjectId) {
        self.outbox.push(Message::RemoteCouple { a, b });
    }

    /// Third-party decoupling of two remote objects.
    pub fn remote_decouple(&mut self, a: GlobalObjectId, b: GlobalObjectId) {
        self.outbox.push(Message::RemoteDecouple { a, b });
    }

    /// Active synchronization (§3.1 `CopyFrom`): pull the state of a
    /// remote object into a local one. Returns the request id echoed by
    /// [`SessionEvent::CopyCompleted`].
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn copy_from(
        &mut self,
        src: GlobalObjectId,
        dst: &ObjectPath,
        mode: CopyMode,
    ) -> Result<u64, SessionError> {
        let dst = self.gid(dst)?;
        let req_id = self.next_req;
        self.next_req += 1;
        self.outbox.push(Message::CopyFrom { src, dst, mode, req_id });
        Ok(req_id)
    }

    /// Passive synchronization (§3.1 `CopyTo`): push a local object's
    /// state to a remote object. Returns the request id.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`] or a toolkit error resolving `src`.
    pub fn copy_to(
        &mut self,
        src: &ObjectPath,
        dst: GlobalObjectId,
        mode: CopyMode,
    ) -> Result<u64, SessionError> {
        let src_gid = self.gid(src)?;
        let id = self.toolkit.tree().resolve_required(src).map_err(SessionError::Ui)?;
        let mut snapshot = self.toolkit.tree().snapshot(id, true).map_err(SessionError::Ui)?;
        self.hooks.fill_snapshot(self.toolkit.tree(), src, &mut snapshot);
        let req_id = self.next_req;
        self.next_req += 1;
        self.outbox.push(Message::CopyTo { src: src_gid, dst, snapshot, mode, req_id });
        Ok(req_id)
    }

    /// Third-party copy (§3.1 `RemoteCopy`) between two remote objects.
    /// Returns the request id.
    pub fn remote_copy(&mut self, src: GlobalObjectId, dst: GlobalObjectId, mode: CopyMode) -> u64 {
        let req_id = self.next_req;
        self.next_req += 1;
        self.outbox.push(Message::RemoteCopy { src, dst, mode, req_id });
        req_id
    }

    /// Asks the server to restore the last overwritten state of an object.
    pub fn undo(&mut self, object: GlobalObjectId) {
        self.outbox.push(Message::UndoState { object });
    }

    /// Asks the server to re-apply the last undone state of an object.
    pub fn redo(&mut self, object: GlobalObjectId) {
        self.outbox.push(Message::RedoState { object });
    }

    /// Declares an access-permission tuple for a local object.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotRegistered`].
    pub fn set_permission(
        &mut self,
        user: UserId,
        object: &ObjectPath,
        right: AccessRight,
    ) -> Result<(), SessionError> {
        let object = self.gid(object)?;
        self.outbox.push(Message::SetPermission { user, object, right });
        Ok(())
    }

    /// Sends an application-defined command (§3.4 `CoSendCommand`).
    pub fn send_command(&mut self, to: Target, command: &str, payload: Vec<u8>) {
        self.outbox.push(Message::CoSendCommand { to, command: command.to_owned(), payload });
    }

    /// Registers the unpack-and-interpret function for a command name.
    pub fn on_command<F>(&mut self, command: &str, handler: F)
    where
        F: FnMut(&mut Toolkit, InstanceId, &[u8]) + Send + 'static,
    {
        self.command_handlers.insert(command.to_owned(), Box::new(handler));
    }

    /// Requests the registration records of all instances.
    pub fn query_instances(&mut self) {
        self.outbox.push(Message::QueryInstances);
    }

    /// Requests the coupled set of any object.
    pub fn list_coupled(&mut self, object: GlobalObjectId) {
        self.outbox.push(Message::ListCoupled { object });
    }

    /// Destroys a local widget subtree; destroyed coupled objects are
    /// reported to the server, which applies the decoupling algorithm
    /// (§3.2).
    ///
    /// # Errors
    ///
    /// Toolkit errors resolving or destroying the widget.
    pub fn destroy(&mut self, path: &ObjectPath) -> Result<(), SessionError> {
        let id = self.toolkit.tree().resolve_required(path).map_err(SessionError::Ui)?;
        let destroyed = self.toolkit.tree_mut().destroy(id).map_err(SessionError::Ui)?;
        for p in destroyed {
            self.hooks.unregister(&p);
            self.sync_bases.remove(&p);
            if self.coupling.remove(&p).is_some() {
                if let Ok(gid) = self.gid(&p) {
                    self.outbox.push(Message::ObjectDestroyed { object: gid });
                }
            }
        }
        Ok(())
    }

    /// Queues a graceful deregistration.
    pub fn leave(&mut self) {
        self.outbox.push(Message::Deregister);
    }

    // ---- server-message processing -------------------------------------------

    /// Processes one message from the server.
    pub fn on_message(&mut self, msg: Message) {
        match msg {
            Message::Welcome { instance } => {
                self.instance = Some(instance);
                if self.rejoining {
                    self.rejoining = false;
                    let stale = self.stale_instance.take();
                    self.resync_after_rejoin(instance, stale);
                    self.events.push(SessionEvent::Resumed(instance));
                } else {
                    self.events.push(SessionEvent::Registered(instance));
                }
            }
            Message::SessionToken { resume_token } => {
                self.resume_token = Some(resume_token);
            }
            Message::CoupleUpdate { group } => self.on_couple_update(group),
            Message::EventGranted { seq, exec_id } => {
                self.pending_order.retain(|s| *s != seq);
                if let Some(PendingEvent { event, .. }) = self.pending_events.remove(&seq) {
                    // Disable the origin object for the duration of the
                    // group execution, run the callbacks, report done.
                    if let Some(id) = self.toolkit.tree().resolve(&event.path) {
                        self.toolkit.tree_mut().set_lock_disabled(id, true).ok();
                    }
                    self.toolkit.run_callbacks(&event);
                    self.outbox.push(Message::ExecuteDone { exec_id });
                }
            }
            Message::EventRejected { seq } => self.on_event_rejected(seq),
            Message::ExecuteEvent { exec_id, target, event } => {
                if let Some(id) = self.toolkit.tree().resolve(&target) {
                    self.toolkit.tree_mut().set_lock_disabled(id, true).ok();
                    // The remote value is authoritative over any local
                    // optimistic echo still pending on this object.
                    *self.remote_epoch.entry(target.clone()).or_insert(0) += 1;
                    let retargeted = event.retarget(target);
                    if self.toolkit.execute_remote(&retargeted).is_ok() {
                        self.remote_executions += 1;
                    }
                }
                // Always report done so the group never stalls on us.
                self.outbox.push(Message::ExecuteDone { exec_id });
            }
            Message::GroupUnlocked { objects, .. } => {
                for path in objects {
                    if let Some(id) = self.toolkit.tree().resolve(&path) {
                        self.toolkit.tree_mut().set_lock_disabled(id, false).ok();
                    }
                }
            }
            Message::StateRequest { req_id, path } => {
                let snapshot = self.toolkit.tree().resolve(&path).and_then(|id| {
                    let mut snap = self.toolkit.tree().snapshot(id, true).ok()?;
                    self.hooks.fill_snapshot(self.toolkit.tree(), &path, &mut snap);
                    Some(snap)
                });
                self.outbox.push(Message::StateReply { req_id, snapshot });
            }
            Message::ApplyState { req_id, path, snapshot, mode } => {
                let reply = self.apply_state(&path, &snapshot, mode);
                let (overwritten, error) = match reply {
                    Ok(prev) => {
                        // Cache the *transmitted* snapshot (not the
                        // post-reconciliation widget state) as the delta
                        // base: the server diffs against what it sent, so
                        // both sides must agree on the base bytes even
                        // when flexible reconciliation dropped attributes.
                        let version = delta::state_version(&snapshot);
                        self.sync_bases.insert(path.clone(), (version, snapshot));
                        (Some(prev), None)
                    }
                    Err(e) => (None, Some(e.to_string())),
                };
                self.outbox.push(Message::StateApplied { req_id, overwritten, error });
            }
            Message::ApplyDelta { req_id, path, base_version, new_version, delta, mode } => {
                let reply = self.apply_delta(&path, base_version, new_version, &delta, mode);
                let (overwritten, error) = match reply {
                    Ok(prev) => (Some(prev), None),
                    Err(e) => (None, Some(e)),
                };
                self.outbox.push(Message::StateApplied { req_id, overwritten, error });
            }
            Message::StateApplied { req_id, .. } => {
                self.events.push(SessionEvent::CopyCompleted { req_id });
            }
            Message::CommandDelivery { from, command, payload } => {
                match self.command_handlers.get_mut(&command) {
                    Some(handler) => handler(&mut self.toolkit, from, &payload),
                    None => {
                        self.events.push(SessionEvent::CommandReceived { from, command, payload })
                    }
                }
            }
            Message::InstanceList { entries } => {
                self.events.push(SessionEvent::InstanceList(entries));
            }
            Message::CoupledSet { object, coupled } => {
                self.events.push(SessionEvent::CoupledSet { object, coupled });
            }
            Message::PermissionDenied { what } => {
                self.events.push(SessionEvent::PermissionDenied { what });
            }
            Message::ErrorReply { context, reason } => {
                // A rejected rejoin (token expired past the grace period)
                // degrades to a fresh registration: the old identity is
                // gone, but the session can still come back as a new
                // instance and resync its couples from local knowledge.
                if self.rejoining && context == "rejoin" {
                    self.resume_token = None;
                    self.outbox.push(Message::Register {
                        user: self.user,
                        host: self.host.clone(),
                        app_name: self.app_name.clone(),
                    });
                } else {
                    self.events.push(SessionEvent::Error { context, reason });
                }
            }
            // Client-originated kinds arriving at a client are ignored.
            _ => {}
        }
    }

    /// Handles a floor-control rejection: the rejected echo and every
    /// *later* pending echo are rolled back in reverse order (they may
    /// stack on the same attributes), then the surviving later echoes are
    /// re-applied so their optimistic feedback — and their undo records —
    /// reflect the corrected base state.
    ///
    /// An echo whose object was touched by a remote execution since the
    /// echo was applied is *not* rolled back: the remote value is
    /// authoritative (the winner's re-execution already replaced the
    /// echo, possibly with an identical value).
    fn on_event_rejected(&mut self, seq: u64) {
        let Some(pos) = self.pending_order.iter().position(|s| *s == seq) else {
            return;
        };
        let suffix = self.pending_order.split_off(pos);
        let mut replay = Vec::new();
        for s in suffix.iter().rev() {
            if let Some(PendingEvent { event, undo, epoch }) = self.pending_events.remove(s) {
                let current_epoch = self.remote_epoch.get(&event.path).copied().unwrap_or(0);
                if epoch == current_epoch {
                    if let Some(id) = self.toolkit.tree().resolve(&event.path) {
                        undo.rollback(self.toolkit.tree_mut(), id).ok();
                    }
                }
                if *s == seq {
                    self.events.push(SessionEvent::EventRejected { event });
                } else {
                    replay.push((*s, event));
                }
            }
        }
        replay.reverse();
        for (s, event) in replay {
            let epoch = self.remote_epoch.get(&event.path).copied().unwrap_or(0);
            let undo = self
                .toolkit
                .tree()
                .resolve(&event.path)
                .and_then(|id| {
                    cosoft_uikit::feedback::apply_feedback(self.toolkit.tree_mut(), id, &event).ok()
                })
                .unwrap_or_default();
            self.pending_events.insert(s, PendingEvent { event, undo, epoch });
            self.pending_order.push(s);
        }
    }

    /// Resynchronizes after a successful rejoin (or fallback
    /// re-registration): for every locally coupled object, re-assert the
    /// couple links to the surviving remote members and pull one member's
    /// authoritative state with a flexible-match `CopyFrom` — the same
    /// §3.1 join procedure used for an initial join, replayed from the
    /// locally replicated coupling information.
    ///
    /// Members carrying our own id (current or pre-rejoin) are skipped:
    /// they are this very session, not a source of truth. Re-coupling is
    /// idempotent on the server, so asserting links that survived
    /// quarantine is harmless, while after a fallback re-registration it
    /// is what rebuilds the groups under the new identity.
    fn resync_after_rejoin(&mut self, me: InstanceId, stale: Option<InstanceId>) {
        let mut entries: Vec<(ObjectPath, Vec<GlobalObjectId>)> =
            self.coupling.iter().map(|(p, g)| (p.clone(), g.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (local, group) in entries {
            let peers: Vec<GlobalObjectId> = group
                .into_iter()
                .filter(|g| g.instance != me && Some(g.instance) != stale)
                .collect();
            let local_gid = GlobalObjectId::new(me, local.clone());
            for peer in &peers {
                self.outbox.push(Message::Couple { src: local_gid.clone(), dst: peer.clone() });
            }
            if let Some(source) = peers.first() {
                let req_id = self.next_req;
                self.next_req += 1;
                self.outbox.push(Message::CopyFrom {
                    src: source.clone(),
                    dst: local_gid,
                    mode: CopyMode::FlexibleMatch,
                    req_id,
                });
            }
        }
    }

    fn on_couple_update(&mut self, group: Vec<GlobalObjectId>) {
        let Some(me) = self.instance else { return };
        for member in group.iter().filter(|g| g.instance == me) {
            if group.len() > 1 {
                self.coupling.insert(member.path.clone(), group.clone());
                self.events.push(SessionEvent::CoupleChanged {
                    local: member.path.clone(),
                    group: group.clone(),
                });
            } else {
                self.coupling.remove(&member.path);
                self.events.push(SessionEvent::CoupleChanged {
                    local: member.path.clone(),
                    group: Vec::new(),
                });
            }
        }
    }

    fn apply_state(
        &mut self,
        path: &ObjectPath,
        snapshot: &StateNode,
        mode: CopyMode,
    ) -> Result<StateNode, CompatError> {
        let id = self
            .toolkit
            .tree()
            .resolve(path)
            .ok_or_else(|| CompatError::Ui(UiError::UnknownPath { path: path.clone() }))?;
        let prev = self.toolkit.tree().snapshot(id, false)?;
        match mode {
            CopyMode::Strict => apply_strict(self.toolkit.tree_mut(), id, snapshot, &self.corr)?,
            CopyMode::DestructiveMerge => {
                apply_destructive(self.toolkit.tree_mut(), id, snapshot, &self.corr)?
            }
            CopyMode::FlexibleMatch => {
                apply_flexible(self.toolkit.tree_mut(), id, snapshot, &self.corr)?
            }
        };
        self.hooks.deliver_snapshot(self.toolkit.tree_mut(), path, snapshot);
        Ok(prev)
    }

    /// Reconstructs the full transmitted state from a delta against the
    /// cached base, then applies it exactly like a snapshot transfer.
    /// Any mismatch (no base, wrong base version, unapplicable edit,
    /// reconstructed-version disagreement) is reported back as an error so
    /// the server falls back to a full snapshot.
    fn apply_delta(
        &mut self,
        path: &ObjectPath,
        base_version: u64,
        new_version: u64,
        d: &delta::StateDelta,
        mode: CopyMode,
    ) -> Result<StateNode, String> {
        let next = match self.sync_bases.get(path) {
            Some((have, base)) if *have == base_version => {
                delta::apply(base, d).map_err(|e| format!("delta base diverged: {e}"))?
            }
            Some((have, _)) => {
                return Err(format!(
                    "delta base version mismatch: have {have}, server assumed {base_version}"
                ));
            }
            None => return Err("delta base version mismatch: no base cached".to_owned()),
        };
        if delta::state_version(&next) != new_version {
            return Err("delta base diverged: reconstructed state version mismatch".to_owned());
        }
        let prev = self.apply_state(path, &next, mode).map_err(|e| e.to_string())?;
        self.sync_bases.insert(path.clone(), (new_version, next));
        Ok(prev)
    }
}
