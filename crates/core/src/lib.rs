//! `cosoft-core` — the paper's primary contribution: flexible coupling of
//! arbitrary UI objects between heterogeneous application instances
//! (Zhao & Hoppe, ICDCS 1994).
//!
//! * [`compat`] — direct compatibility, declared correspondences,
//!   s-compatibility, destructive merging and flexible matching (§3.3);
//! * [`semantic`] — application store/load hooks carrying semantic state
//!   along with UI state (§3.1);
//! * [`session`] — the client runtime: event interception and multiple
//!   execution (§3.2), state transfers (`CopyFrom` / `CopyTo` /
//!   `RemoteCopy`, §3.1), locally replicated coupling information,
//!   `RemoteCouple`/`RemoteDecouple` (§3.3) and the `CoSendCommand`
//!   protocol extension (§3.4);
//! * [`harness`] — a deterministic simulation harness wiring sessions and
//!   the server onto `cosoft-net`'s virtual-time network.
//!
//! # Example: coupling two text fields across instances
//!
//! ```
//! use cosoft_core::harness::SimHarness;
//! use cosoft_core::session::Session;
//! use cosoft_uikit::{spec, Toolkit};
//! use cosoft_wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut h = SimHarness::new(1);
//! let spec_src = r#"form f { textfield t text="" }"#;
//! let a = h.add_session(Session::new(
//!     Toolkit::from_tree(spec::build_tree(spec_src)?), UserId(1), "ws1", "demo"));
//! let b = h.add_session(Session::new(
//!     Toolkit::from_tree(spec::build_tree(spec_src)?), UserId(2), "ws2", "demo"));
//! h.settle(); // both register
//!
//! // Couple a's field to b's field, then type into a.
//! let path = ObjectPath::parse("f.t")?;
//! let remote = h.session(b).gid(&path)?;
//! h.session_mut(a).couple(&path, remote)?;
//! h.settle();
//! h.session_mut(a).user_event(UiEvent::new(
//!     path.clone(), EventKind::TextCommitted, vec![Value::Text("hello".into())]))?;
//! h.settle();
//!
//! // The event was re-executed in b.
//! let tree = h.session(b).toolkit().tree();
//! let id = tree.resolve(&path).unwrap();
//! assert_eq!(tree.attr(id, &AttrName::Text)?, &Value::Text("hello".into()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compat;
pub mod harness;
pub mod semantic;
pub mod session;

pub use compat::{
    apply_destructive, apply_flexible, apply_strict, check_s_compatible, ApplyReport, CompatError,
    CorrespondenceTable,
};
pub use harness::{SimHarness, SERVER_NODE};
pub use semantic::{LoadFn, SemanticHooks, StoreFn};
pub use session::{CommandHandler, Session, SessionError, SessionEvent};
