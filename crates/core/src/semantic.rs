//! Semantic-state hooks (§3.1 "synchronizing semantic state").
//!
//! "To keep UI and semantic states consistent, application programmers
//! have to define two functions for each semantic data structure to store
//! and load application data. They are automatically invoked in the
//! dominating and dominated application instances respectively when the
//! state of a UI object is copied."

use std::collections::HashMap;
use std::fmt;

use cosoft_uikit::WidgetTree;
use cosoft_wire::{ObjectPath, StateNode};

/// Serializes the semantic data attached to one UI object.
pub type StoreFn = Box<dyn FnMut(&WidgetTree) -> Vec<u8> + Send>;
/// Deserializes semantic data into the application after a state copy.
pub type LoadFn = Box<dyn FnMut(&mut WidgetTree, &[u8]) + Send>;

/// Registry of per-object store/load hooks.
#[derive(Default)]
pub struct SemanticHooks {
    hooks: HashMap<ObjectPath, (StoreFn, LoadFn)>,
}

impl fmt::Debug for SemanticHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SemanticHooks").field("registered", &self.hooks.len()).finish()
    }
}

impl SemanticHooks {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SemanticHooks::default()
    }

    /// Registers the store/load pair for the object at `path`, replacing
    /// any previous pair.
    pub fn register<S, L>(&mut self, path: ObjectPath, store: S, load: L)
    where
        S: FnMut(&WidgetTree) -> Vec<u8> + Send + 'static,
        L: FnMut(&mut WidgetTree, &[u8]) + Send + 'static,
    {
        self.hooks.insert(path, (Box::new(store), Box::new(load)));
    }

    /// Removes the hooks for `path`, returning whether a pair existed.
    pub fn unregister(&mut self, path: &ObjectPath) -> bool {
        self.hooks.remove(path).is_some()
    }

    /// Number of registered hook pairs.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Whether no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }

    /// Fills the `semantic` payloads of a snapshot taken at `base`: for
    /// every node with registered hooks, the store function runs and its
    /// bytes are attached (invoked "in the dominating instance").
    pub fn fill_snapshot(
        &mut self,
        tree: &WidgetTree,
        base: &ObjectPath,
        snapshot: &mut StateNode,
    ) {
        self.fill_rec(tree, base.clone(), snapshot);
    }

    fn fill_rec(&mut self, tree: &WidgetTree, path: ObjectPath, node: &mut StateNode) {
        if let Some((store, _)) = self.hooks.get_mut(&path) {
            node.semantic = store(tree);
        }
        for child in &mut node.children {
            if let Ok(child_path) = path.child(&child.name) {
                self.fill_rec(tree, child_path, child);
            }
        }
    }

    /// Delivers the `semantic` payloads of an applied snapshot to the
    /// load hooks under `base` (invoked "in the dominated instance").
    /// Returns how many payloads were delivered.
    pub fn deliver_snapshot(
        &mut self,
        tree: &mut WidgetTree,
        base: &ObjectPath,
        snapshot: &StateNode,
    ) -> usize {
        self.deliver_rec(tree, base.clone(), snapshot)
    }

    fn deliver_rec(&mut self, tree: &mut WidgetTree, path: ObjectPath, node: &StateNode) -> usize {
        let mut delivered = 0;
        if !node.semantic.is_empty() {
            if let Some((_, load)) = self.hooks.get_mut(&path) {
                load(tree, &node.semantic);
                delivered += 1;
            }
        }
        for child in &node.children {
            if let Ok(child_path) = path.child(&child.name) {
                delivered += self.deliver_rec(tree, child_path, child);
            }
        }
        delivered
    }
}

/// A standard semantic-payload codec, the kind of "standard extension for
/// typical applications" the paper's conclusion calls for: a string
/// key–value map with a deterministic, length-prefixed binary encoding.
///
/// Applications whose internal data fits a flat map can use
/// [`kv::encode`]/[`kv::decode`] as their store/load functions without
/// writing codecs of their own.
pub mod kv {
    use std::collections::BTreeMap;

    /// Encodes a key–value map (deterministic: `BTreeMap` ordering).
    pub fn encode(map: &BTreeMap<String, String>) -> Vec<u8> {
        let mut out = Vec::new();
        push_len(&mut out, map.len());
        for (k, v) in map {
            push_str(&mut out, k);
            push_str(&mut out, v);
        }
        out
    }

    /// Decodes a key–value map; returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<BTreeMap<String, String>> {
        let mut cursor = 0usize;
        let n = read_len(bytes, &mut cursor)?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = read_str(bytes, &mut cursor)?;
            let v = read_str(bytes, &mut cursor)?;
            map.insert(k, v);
        }
        if cursor == bytes.len() {
            Some(map)
        } else {
            None
        }
    }

    fn push_len(out: &mut Vec<u8>, mut n: usize) {
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn push_str(out: &mut Vec<u8>, s: &str) {
        push_len(out, s.len());
        out.extend_from_slice(s.as_bytes());
    }

    fn read_len(bytes: &[u8], cursor: &mut usize) -> Option<usize> {
        let mut shift = 0u32;
        let mut out = 0usize;
        loop {
            let byte = *bytes.get(*cursor)?;
            *cursor += 1;
            if shift >= usize::BITS {
                return None;
            }
            out |= usize::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(out);
            }
            shift += 7;
        }
    }

    fn read_str(bytes: &[u8], cursor: &mut usize) -> Option<String> {
        let n = read_len(bytes, cursor)?;
        let end = cursor.checked_add(n)?;
        let slice = bytes.get(*cursor..end)?;
        *cursor = end;
        String::from_utf8(slice.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_uikit::spec::build_tree;
    use cosoft_wire::WidgetKind;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn store_fills_and_load_delivers() {
        let tree = build_tree(r#"form f { textfield x text="q" }"#).unwrap();
        let mut hooks = SemanticHooks::new();
        let path = ObjectPath::parse("f.x").unwrap();
        let loaded = Arc::new(AtomicU64::new(0));
        let loaded2 = loaded.clone();
        hooks.register(
            path.clone(),
            |_tree| vec![7, 7, 7],
            move |_tree, bytes| {
                loaded2.store(bytes.len() as u64, Ordering::SeqCst);
            },
        );

        let base = ObjectPath::parse("f").unwrap();
        let mut snap = tree.snapshot(tree.root().unwrap(), true).unwrap();
        hooks.fill_snapshot(&tree, &base, &mut snap);
        assert_eq!(snap.children[0].semantic, vec![7, 7, 7]);
        assert!(snap.semantic.is_empty(), "no hook on the form itself");

        let mut tree2 = build_tree(r#"form f { textfield x text="" }"#).unwrap();
        let n = hooks.deliver_snapshot(&mut tree2, &base, &snap);
        assert_eq!(n, 1);
        assert_eq!(loaded.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_payloads_skip_load() {
        let mut hooks = SemanticHooks::new();
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        hooks.register(
            ObjectPath::parse("f").unwrap(),
            |_| Vec::new(),
            move |_, _| {
                calls2.fetch_add(1, Ordering::SeqCst);
            },
        );
        let mut tree = build_tree("form f").unwrap();
        let snap = StateNode::new(WidgetKind::Form, "f");
        let n = hooks.deliver_snapshot(&mut tree, &ObjectPath::parse("f").unwrap(), &snap);
        assert_eq!(n, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unregister_removes_hooks() {
        let mut hooks = SemanticHooks::new();
        let p = ObjectPath::parse("a").unwrap();
        hooks.register(p.clone(), |_| vec![1], |_, _| {});
        assert_eq!(hooks.len(), 1);
        assert!(hooks.unregister(&p));
        assert!(!hooks.unregister(&p));
        assert!(hooks.is_empty());
    }

    #[test]
    fn kv_codec_round_trips() {
        use std::collections::BTreeMap;
        let mut map = BTreeMap::new();
        map.insert("attempts".to_owned(), "3".to_owned());
        map.insert("solution".to_owned(), "x = 2.0".to_owned());
        map.insert("".to_owned(), "empty key ok".to_owned());
        let bytes = kv::encode(&map);
        assert_eq!(kv::decode(&bytes), Some(map));
        assert_eq!(kv::decode(&kv::encode(&BTreeMap::new())), Some(BTreeMap::new()));
    }

    #[test]
    fn kv_codec_rejects_garbage() {
        assert_eq!(kv::decode(&[0xff, 0xff, 0xff]), None);
        assert_eq!(kv::decode(&[2, 1, b'a']), None, "truncated");
        // Trailing bytes rejected.
        let mut bytes = kv::encode(&std::collections::BTreeMap::new());
        bytes.push(0);
        assert_eq!(kv::decode(&bytes), None);
    }

    #[test]
    fn kv_as_store_load_hooks() {
        use std::collections::BTreeMap;
        use std::sync::{Arc, Mutex};
        let model = Arc::new(Mutex::new(BTreeMap::from([("score".to_owned(), "42".to_owned())])));
        let mut hooks = SemanticHooks::new();
        let store_model = model.clone();
        let load_model = model.clone();
        hooks.register(
            ObjectPath::parse("f").unwrap(),
            move |_| kv::encode(&store_model.lock().unwrap()),
            move |_, bytes| {
                if let Some(m) = kv::decode(bytes) {
                    *load_model.lock().unwrap() = m;
                }
            },
        );
        let tree = build_tree("form f").unwrap();
        let mut snap = tree.snapshot(tree.root().unwrap(), true).unwrap();
        hooks.fill_snapshot(&tree, &ObjectPath::parse("f").unwrap(), &mut snap);
        model.lock().unwrap().clear();
        let mut tree2 = build_tree("form f").unwrap();
        hooks.deliver_snapshot(&mut tree2, &ObjectPath::parse("f").unwrap(), &snap);
        assert_eq!(model.lock().unwrap().get("score"), Some(&"42".to_owned()));
    }

    #[test]
    fn hooks_on_nested_objects() {
        let tree = build_tree(r#"form f { panel p { canvas c } }"#).unwrap();
        let mut hooks = SemanticHooks::new();
        hooks.register(ObjectPath::parse("f.p.c").unwrap(), |_| vec![1, 2], |_, _| {});
        let mut snap = tree.snapshot(tree.root().unwrap(), true).unwrap();
        hooks.fill_snapshot(&tree, &ObjectPath::parse("f").unwrap(), &mut snap);
        assert_eq!(snap.children[0].children[0].semantic, vec![1, 2]);
    }
}
