//! Simulation harness: wires any number of [`Session`]s and one
//! [`ServerCore`] onto the deterministic simulated network and pumps
//! messages until quiescence.
//!
//! All integration tests and benchmarks of the fully replicated (COSOFT)
//! architecture run on this harness; the virtual clock makes latency
//! measurements reproducible.

use std::collections::{BTreeMap, BTreeSet};

use cosoft_net::sim::{Latency, NodeId, SimNet};
use cosoft_server::{Delivery, Outgoing, ServerCore};
use cosoft_wire::InstanceId;

use crate::session::Session;

/// The server's fixed endpoint on the simulated network.
pub const SERVER_NODE: NodeId = NodeId(0);

/// A simulated COSOFT deployment: one server, N client sessions.
#[derive(Debug)]
pub struct SimHarness {
    /// The simulated network (exposed for latency/fault configuration and
    /// traffic statistics).
    pub net: SimNet,
    /// The server core.
    pub server: ServerCore<NodeId>,
    /// Sessions keyed by node id; a `BTreeMap` keeps outbox flushing (and
    /// therefore the whole simulation) deterministic.
    sessions: BTreeMap<NodeId, Session>,
    /// Nodes whose connection is currently severed: traffic in either
    /// direction is silently lost until [`SimHarness::reconnect`].
    offline: BTreeSet<NodeId>,
    next_node: u64,
}

impl SimHarness {
    /// Creates a harness with the given network seed and zero latency.
    pub fn new(seed: u64) -> Self {
        SimHarness {
            net: SimNet::new(seed),
            server: ServerCore::new(),
            sessions: BTreeMap::new(),
            offline: BTreeSet::new(),
            next_node: 1,
        }
    }

    /// Creates a harness with a fixed one-way latency in microseconds.
    pub fn with_latency(seed: u64, one_way_us: u64) -> Self {
        let mut h = Self::new(seed);
        h.net.set_latency(Latency::Fixed(one_way_us));
        h
    }

    /// Adds a session (its queued `Register` is sent on the next pump) and
    /// returns its network node id.
    pub fn add_session(&mut self, session: Session) -> NodeId {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        self.sessions.insert(node, session);
        node
    }

    /// Borrows a session by node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this harness.
    pub fn session(&self, node: NodeId) -> &Session {
        &self.sessions[&node]
    }

    /// Mutably borrows a session by node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this harness.
    pub fn session_mut(&mut self, node: NodeId) -> &mut Session {
        self.sessions.get_mut(&node).expect("unknown session node")
    }

    /// Removes a session abruptly (simulating a crash); the server
    /// observes the disconnect on the next pump.
    pub fn crash(&mut self, node: NodeId) {
        if self.sessions.remove(&node).is_some() {
            self.offline.remove(&node);
            let out = self.server.disconnect(node);
            self.deliver_server_out(out);
        }
    }

    /// Puts a server batch on the simulated network. A shared frame is
    /// decoded once and delivered (as the decoded message) to each of its
    /// endpoints; its pre-encoded body length feeds the byte accounting,
    /// so the simulation charges the wire cost without re-encoding.
    fn deliver_server_out(&mut self, out: Outgoing<NodeId>) {
        for item in out.into_items() {
            match item {
                Delivery::Unicast(dst, msg) => self.net.send(SERVER_NODE, dst, msg),
                Delivery::Shared(dsts, frame) => {
                    let body_len = frame.body().len();
                    let msg = frame.decode().expect("server-encoded frame decodes");
                    let mut dsts = dsts.into_iter();
                    if let Some(last) = dsts.next_back() {
                        for dst in dsts {
                            self.net.send_encoded(SERVER_NODE, dst, msg.clone(), body_len);
                        }
                        self.net.send_encoded(SERVER_NODE, last, msg, body_len);
                    }
                }
            }
        }
    }

    /// Severs a session's connection without destroying the session (a
    /// silently dropped link): the server observes the disconnect — and
    /// quarantines the instance when a liveness grace period is
    /// configured — while the client keeps its state and may later
    /// [`SimHarness::reconnect`]. Traffic to and from the node is lost in
    /// the meantime.
    pub fn disconnect(&mut self, node: NodeId) {
        if self.sessions.contains_key(&node) && self.offline.insert(node) {
            let out = self.server.disconnect(node);
            self.deliver_server_out(out);
        }
    }

    /// Restores a severed connection and starts the session's rejoin; the
    /// queued `Rejoin` (or fallback `Register`) goes out on the next pump.
    pub fn reconnect(&mut self, node: NodeId) {
        if self.offline.remove(&node) {
            if let Some(session) = self.sessions.get_mut(&node) {
                session.begin_rejoin();
            }
        }
    }

    /// Advances the virtual clock to `at_us` and runs the server's
    /// liveness tick: quarantines whose grace period has expired are
    /// deregistered here, with the usual auto-decouple notifications.
    pub fn tick_server(&mut self, at_us: u64) {
        self.net.advance_to(at_us);
        let out = self.server.tick(at_us);
        self.deliver_server_out(out);
    }

    /// The instance id a session received, if registered.
    pub fn instance_of(&self, node: NodeId) -> Option<InstanceId> {
        self.sessions.get(&node).and_then(Session::instance)
    }

    fn flush_outboxes(&mut self) {
        for (&node, session) in self.sessions.iter_mut() {
            // A severed connection loses outgoing messages; the session
            // regenerates what matters during its rejoin resync.
            let msgs = session.drain_outbox();
            if self.offline.contains(&node) {
                continue;
            }
            for msg in msgs {
                self.net.send(node, SERVER_NODE, msg);
            }
        }
    }

    /// Pumps the network until quiescence: flushes session outboxes,
    /// delivers messages (server ↔ sessions), and repeats until no
    /// messages remain. Returns the number of deliveries processed.
    ///
    /// # Panics
    ///
    /// Panics if the message count exceeds `max_steps` (runaway guard).
    pub fn pump(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        loop {
            self.flush_outboxes();
            if self.net.is_idle() {
                return steps;
            }
            while let Some(delivery) = self.net.step() {
                steps += 1;
                assert!(steps <= max_steps, "simulation exceeded {max_steps} deliveries");
                if delivery.dst == SERVER_NODE {
                    let out = self.server.handle(delivery.src, delivery.msg);
                    self.deliver_server_out(out);
                } else if self.offline.contains(&delivery.dst) {
                    // In-flight messages to a severed connection are lost.
                } else if let Some(session) = self.sessions.get_mut(&delivery.dst) {
                    session.on_message(delivery.msg);
                    for msg in session.drain_outbox() {
                        self.net.send(delivery.dst, SERVER_NODE, msg);
                    }
                }
                // Messages to crashed sessions are dropped silently.
            }
        }
    }

    /// Convenience: pump with a generous default cap.
    pub fn settle(&mut self) -> u64 {
        self.pump(1_000_000)
    }
}
