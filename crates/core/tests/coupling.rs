//! End-to-end tests of the coupling runtime over the simulated network:
//! every §3 mechanism exercised through the real protocol.

use cosoft_core::harness::SimHarness;
use cosoft_core::session::{Session, SessionEvent};
use cosoft_net::sim::NodeId;
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{
    AccessRight, AttrName, CopyMode, EventKind, ObjectPath, Target, UiEvent, UserId, Value,
    WidgetKind,
};

fn path(s: &str) -> ObjectPath {
    ObjectPath::parse(s).unwrap()
}

fn session(spec_src: &str, user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(spec_src).unwrap()),
        UserId(user),
        &format!("ws{user}"),
        "test-app",
    )
}

fn text_of(h: &SimHarness, node: NodeId, p: &str) -> String {
    let tree = h.session(node).toolkit().tree();
    let id = tree.resolve(&path(p)).unwrap();
    tree.attr(id, &AttrName::Text).unwrap().as_text().unwrap().to_owned()
}

fn type_text(h: &mut SimHarness, node: NodeId, p: &str, text: &str) {
    h.session_mut(node)
        .user_event(UiEvent::new(path(p), EventKind::TextCommitted, vec![Value::Text(text.into())]))
        .unwrap();
}

const FIELD_FORM: &str = r#"form f { textfield t text="" }"#;

#[test]
fn events_propagate_through_couple_chain() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    let c = h.add_session(session(FIELD_FORM, 3));
    h.settle();

    // a→b and b→c: the closure couples a with c too.
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    let gc = h.session(c).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    h.session_mut(b).couple(&path("f.t"), gc).unwrap();
    h.settle();

    type_text(&mut h, a, "f.t", "closure");
    h.settle();
    for node in [a, b, c] {
        assert_eq!(text_of(&h, node, "f.t"), "closure");
    }
    assert_eq!(h.session(b).remote_executions(), 1);
    assert_eq!(h.session(c).remote_executions(), 1);
    // Locks fully released after the round.
    assert!(h.server.locks().is_empty());
}

#[test]
fn uncoupled_events_stay_local() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    h.net.reset_stats();

    type_text(&mut h, a, "f.t", "private");
    h.settle();
    assert_eq!(text_of(&h, a, "f.t"), "private");
    assert_eq!(text_of(&h, b, "f.t"), "");
    assert_eq!(h.net.stats().messages_sent, 0, "no network traffic for local events");
}

#[test]
fn decoupled_objects_do_not_cease_to_exist() {
    // "these will not cease to exist when being decoupled so that coupling
    // can be used to transfer information between environments" (§2.2).
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb.clone()).unwrap();
    h.settle();
    type_text(&mut h, a, "f.t", "shared");
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "shared");

    h.session_mut(a).decouple(&path("f.t"), gb).unwrap();
    h.settle();
    assert!(!h.session(a).is_coupled(&path("f.t")));
    assert!(!h.session(b).is_coupled(&path("f.t")));

    // Both keep the transferred information and diverge independently.
    type_text(&mut h, a, "f.t", "a-alone");
    type_text(&mut h, b, "f.t", "b-alone");
    h.settle();
    assert_eq!(text_of(&h, a, "f.t"), "a-alone");
    assert_eq!(text_of(&h, b, "f.t"), "b-alone");
}

#[test]
fn floor_control_rejects_concurrent_events_and_rolls_back_feedback() {
    let mut h = SimHarness::with_latency(7, 1_000);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();

    // Both users type *before* any message is pumped: a's event reaches
    // the server first (FIFO on equal latency), locks the group, and b's
    // event is rejected.
    type_text(&mut h, a, "f.t", "from-a");
    type_text(&mut h, b, "f.t", "from-b");
    // Local echoes are visible immediately (syntactic feedback).
    assert_eq!(text_of(&h, a, "f.t"), "from-a");
    assert_eq!(text_of(&h, b, "f.t"), "from-b");
    h.settle();

    // a's event won; b's echo was rolled back and overwritten by the
    // re-execution of a's event.
    assert_eq!(text_of(&h, a, "f.t"), "from-a");
    assert_eq!(text_of(&h, b, "f.t"), "from-a");
    assert_eq!(h.server.rejected_events(), 1);
    let rejected: Vec<_> = h
        .session_mut(b)
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::EventRejected { .. }))
        .collect();
    assert_eq!(rejected.len(), 1);
    assert!(h.server.locks().is_empty());
}

#[test]
fn objects_are_disabled_while_group_is_locked() {
    let mut h = SimHarness::new(3);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();

    type_text(&mut h, a, "f.t", "locking");
    // Drive the simulation only partially: deliver the Event to the
    // server and the resulting grant/execute, but stop before the dones.
    for session in [a, b] {
        let msgs = h.session_mut(session).drain_outbox();
        for m in msgs {
            h.net.send(session, cosoft_core::SERVER_NODE, m);
        }
    }
    // Event reaches server; grant+execute go out.
    while let Some(d) = h.net.step() {
        if d.dst == cosoft_core::SERVER_NODE {
            let out = h.server.handle(d.src, d.msg).into_messages();
            for (dst, msg) in out {
                h.net.send(cosoft_core::SERVER_NODE, dst, msg);
            }
        } else {
            let dst = d.dst;
            h.session_mut(dst).on_message(d.msg);
            // Do NOT drain outboxes: ExecuteDone stays queued.
        }
    }
    // Mid-execution: both local objects are disabled.
    for node in [a, b] {
        let tree = h.session(node).toolkit().tree();
        let id = tree.resolve(&path("f.t")).unwrap();
        assert!(!tree.widget(id).unwrap().is_interactable(), "locked during execution");
    }
    // User input on a locked object fails loudly.
    let err = h
        .session_mut(b)
        .user_event(UiEvent::new(
            path("f.t"),
            EventKind::TextCommitted,
            vec![Value::Text("x".into())],
        ))
        .unwrap_err();
    assert!(matches!(err, cosoft_core::SessionError::Ui(cosoft_uikit::UiError::Disabled { .. })));

    // Finish the round: dones flow, unlock re-enables everything.
    h.settle();
    for node in [a, b] {
        let tree = h.session(node).toolkit().tree();
        let id = tree.resolve(&path("f.t")).unwrap();
        assert!(tree.widget(id).unwrap().is_interactable());
    }
}

#[test]
fn coupling_a_form_synchronizes_its_components() {
    let spec_src = r#"form f { textfield a text="" textfield b text="" }"#;
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(spec_src, 1));
    let b = h.add_session(session(spec_src, 2));
    h.settle();

    // Couple the whole forms, not the fields.
    let gb = h.session(b).gid(&path("f")).unwrap();
    h.session_mut(a).couple(&path("f"), gb).unwrap();
    h.settle();

    // An event *inside* the coupled form routes through the form's links.
    type_text(&mut h, a, "f.a", "component-sync");
    h.settle();
    assert_eq!(text_of(&h, b, "f.a"), "component-sync");
    assert_eq!(text_of(&h, b, "f.b"), "", "sibling untouched");
}

#[test]
fn components_reenable_after_event_inside_coupled_form() {
    // Regression: the event executes on `f.a` (a component of the coupled
    // form `f`); the unlock notice must re-enable `f.a`, not just `f`.
    let spec_src = r#"form f { textfield a text="" }"#;
    let mut h = SimHarness::new(6);
    let a = h.add_session(session(spec_src, 1));
    let b = h.add_session(session(spec_src, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f")).unwrap();
    h.session_mut(a).couple(&path("f"), gb).unwrap();
    h.settle();

    type_text(&mut h, a, "f.a", "first");
    h.settle();
    for node in [a, b] {
        let tree = h.session(node).toolkit().tree();
        let id = tree.resolve(&path("f.a")).unwrap();
        assert!(tree.widget(id).unwrap().is_interactable(), "field re-enabled after round");
    }
    // A second event must succeed (would fail with Disabled before the fix).
    type_text(&mut h, a, "f.a", "second");
    h.settle();
    assert_eq!(text_of(&h, b, "f.a"), "second");
}

#[test]
fn heterogeneous_coupling_via_correspondence() {
    // The teacher's display is a label; students edit text fields.
    let mut h = SimHarness::new(1);
    let teacher = h.add_session(session(r#"form f { label view text="" }"#, 1));
    let student = h.add_session(session(r#"form f { textfield answer text="" }"#, 2));
    h.settle();

    // The teacher declares that student text fields may drive its label.
    h.session_mut(teacher).correspondences_mut().declare(
        WidgetKind::TextField,
        WidgetKind::Label,
        vec![(AttrName::Text, AttrName::Text)],
    );
    let view = h.session(teacher).gid(&path("f.view")).unwrap();
    h.session_mut(student).couple(&path("f.answer"), view.clone()).unwrap();
    h.settle();

    // State copy across kinds (strict: structures are both leaves).
    h.session_mut(student).copy_to(&path("f.answer"), view, CopyMode::Strict).unwrap();
    h.settle();
    // First set some content, then push.
    type_text(&mut h, student, "f.answer", "42");
    h.settle();

    // The event was re-executed on the label: TextCommitted feedback sets
    // its text attribute.
    assert_eq!(text_of(&h, teacher, "f.view"), "42");
}

#[test]
fn copy_from_pulls_remote_state_with_semantics() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();

    // b has content and a semantic payload behind its form.
    type_text(&mut h, b, "f.t", "late-join-me");
    h.settle();
    h.session_mut(b).hooks_mut().register(path("f"), |_| b"semantic-blob".to_vec(), |_, _| {});
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let loaded = Arc::new(AtomicBool::new(false));
    let loaded2 = loaded.clone();
    h.session_mut(a).hooks_mut().register(
        path("f"),
        |_| Vec::new(),
        move |_, bytes| {
            assert_eq!(bytes, b"semantic-blob");
            loaded2.store(true, Ordering::SeqCst);
        },
    );

    // Late join: a pulls b's form state.
    let src = h.session(b).gid(&path("f")).unwrap();
    let req = h.session_mut(a).copy_from(src, &path("f"), CopyMode::Strict).unwrap();
    h.settle();

    assert_eq!(text_of(&h, a, "f.t"), "late-join-me");
    assert!(loaded.load(Ordering::SeqCst), "load hook ran in the dominated instance");
    let completed: Vec<_> = h
        .session_mut(a)
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::CopyCompleted { req_id } if *req_id == req))
        .collect();
    assert_eq!(completed.len(), 1);
}

#[test]
fn remote_copy_three_party_flow() {
    let mut h = SimHarness::new(1);
    let teacher = h.add_session(session(FIELD_FORM, 1));
    let s1 = h.add_session(session(FIELD_FORM, 2));
    let s2 = h.add_session(session(FIELD_FORM, 3));
    h.settle();

    type_text(&mut h, s1, "f.t", "model-solution");
    h.settle();

    // The teacher copies student 1's work to student 2 without touching
    // either directly.
    let src = h.session(s1).gid(&path("f.t")).unwrap();
    let dst = h.session(s2).gid(&path("f.t")).unwrap();
    h.session_mut(teacher).remote_copy(src, dst, CopyMode::Strict);
    h.settle();
    assert_eq!(text_of(&h, s2, "f.t"), "model-solution");
}

#[test]
fn destructive_merge_over_the_wire_reshapes_target() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(
        r#"form f title="Rich" { textfield x text="payload" slider s value=0.5 }"#,
        1,
    ));
    let b = h.add_session(session(r#"form f title="Poor" { canvas odd }"#, 2));
    h.settle();

    let dst = h.session(b).gid(&path("f")).unwrap();
    h.session_mut(a).copy_to(&path("f"), dst, CopyMode::DestructiveMerge).unwrap();
    h.settle();

    let tree = h.session(b).toolkit().tree();
    assert!(tree.resolve(&path("f.x")).is_some(), "missing child created");
    assert!(tree.resolve(&path("f.s")).is_some());
    assert!(tree.resolve(&path("f.odd")).is_none(), "conflicting child destroyed");
    assert_eq!(text_of(&h, b, "f.x"), "payload");
}

#[test]
fn strict_copy_incompatibility_reports_error() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(r#"form f { textfield x text="v" slider s value=0.1 }"#, 1));
    let b = h.add_session(session(r#"form f { canvas different }"#, 2));
    h.settle();

    let dst = h.session(b).gid(&path("f")).unwrap();
    h.session_mut(a).copy_to(&path("f"), dst, CopyMode::Strict).unwrap();
    h.settle();
    let errors: Vec<_> = h
        .session_mut(a)
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::Error { .. }))
        .collect();
    assert_eq!(errors.len(), 1);
    // b unchanged.
    assert!(h.session(b).toolkit().tree().resolve(&path("f.different")).is_some());
}

#[test]
fn undo_redo_round_trip_over_the_wire() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();

    type_text(&mut h, b, "f.t", "original");
    h.settle();

    // a pushes new state onto b (overwriting "original").
    type_text(&mut h, a, "f.t", "overwritten");
    h.settle();
    let dst = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).copy_to(&path("f.t"), dst.clone(), CopyMode::Strict).unwrap();
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "overwritten");

    // Undo restores the original.
    h.session_mut(b).undo(dst.clone());
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "original");

    // Redo re-applies the copy.
    h.session_mut(b).redo(dst);
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "overwritten");
}

#[test]
fn co_send_command_rpc_with_handler() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();

    // b registers an application-defined command that writes its field.
    h.session_mut(b).on_command("set-status", |toolkit, _from, payload| {
        let text = String::from_utf8_lossy(payload).into_owned();
        let id = toolkit.tree().resolve(&ObjectPath::parse("f.t").unwrap()).unwrap();
        toolkit.tree_mut().set_attr(id, AttrName::Text, Value::Text(text)).unwrap();
    });

    let b_instance = h.instance_of(b).unwrap();
    h.session_mut(a).send_command(
        Target::Instance(b_instance),
        "set-status",
        b"rpc-payload".to_vec(),
    );
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "rpc-payload");

    // Unhandled commands surface as events.
    h.session_mut(a).send_command(Target::Broadcast, "unknown-cmd", vec![1, 2]);
    h.settle();
    let received: Vec<_> = h
        .session_mut(b)
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::CommandReceived { command, .. } if command == "unknown-cmd"))
        .collect();
    assert_eq!(received.len(), 1);
}

#[test]
fn crash_auto_decouples_and_releases_group() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    let c = h.add_session(session(FIELD_FORM, 3));
    h.settle();

    let gb = h.session(b).gid(&path("f.t")).unwrap();
    let gc = h.session(c).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb.clone()).unwrap();
    h.settle();
    h.session_mut(b).couple(&path("f.t"), gc).unwrap();
    h.settle();
    assert_eq!(h.session(a).group_of(&path("f.t")).unwrap().len(), 3);

    // b crashes; the server auto-decouples its objects.
    h.crash(b);
    h.settle();

    // a and c remain coupled with each other (they were joined through b's
    // object, but the closure re-forms only over surviving links — a and c
    // had no direct link, so they decouple).
    assert!(!h.session(a).is_coupled(&path("f.t")));
    assert!(!h.session(c).is_coupled(&path("f.t")));

    // Typing in a stays local now.
    type_text(&mut h, a, "f.t", "after-crash");
    h.settle();
    assert_eq!(text_of(&h, a, "f.t"), "after-crash");
    assert_eq!(text_of(&h, c, "f.t"), "");
}

#[test]
fn destroy_decouples_the_destroyed_object() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    assert!(h.session(b).is_coupled(&path("f.t")));

    h.session_mut(a).destroy(&path("f.t")).unwrap();
    h.settle();
    assert!(!h.session(b).is_coupled(&path("f.t")));
    assert!(h.server.couples().is_empty());
}

#[test]
fn permissions_gate_coupling() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();

    // b locks down its field for user 1.
    h.session_mut(b).set_permission(UserId(1), &path("f.t"), AccessRight::Denied).unwrap();
    h.settle();

    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb.clone()).unwrap();
    h.settle();
    let denied: Vec<_> = h
        .session_mut(a)
        .take_events()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::PermissionDenied { .. }))
        .collect();
    assert_eq!(denied.len(), 1);
    assert!(!h.session(a).is_coupled(&path("f.t")));

    // Granting write makes the same couple succeed.
    h.session_mut(b).set_permission(UserId(1), &path("f.t"), AccessRight::Write).unwrap();
    h.settle();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    assert!(h.session(a).is_coupled(&path("f.t")));
}

#[test]
fn query_instances_supports_join_ui() {
    let mut h = SimHarness::new(1);
    let a = h.add_session(session(FIELD_FORM, 1));
    let _b = h.add_session(session(FIELD_FORM, 2));
    let _c = h.add_session(session(FIELD_FORM, 3));
    h.settle();

    h.session_mut(a).query_instances();
    h.settle();
    let lists: Vec<_> = h
        .session_mut(a)
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            SessionEvent::InstanceList(entries) => Some(entries),
            _ => None,
        })
        .collect();
    assert_eq!(lists.len(), 1);
    assert_eq!(lists[0].len(), 3);
}

#[test]
fn same_instance_coupling_mirrors_two_widgets() {
    // "including the case of two objects coupled within the same
    // application instance" (§3.3).
    let mut h = SimHarness::new(1);
    let a =
        h.add_session(session(r#"form f { textfield left text="" textfield right text="" }"#, 1));
    h.settle();
    let right = h.session(a).gid(&path("f.right")).unwrap();
    h.session_mut(a).couple(&path("f.left"), right).unwrap();
    h.settle();

    type_text(&mut h, a, "f.left", "mirrored");
    h.settle();
    assert_eq!(text_of(&h, a, "f.right"), "mirrored");
}

#[test]
fn join_copies_then_couples() {
    let mut h = SimHarness::new(12);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    type_text(&mut h, b, "f.t", "existing-work");
    h.settle();

    let remote = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).join(remote, &path("f.t"), CopyMode::Strict).unwrap();
    h.settle();
    // Initial state arrived AND live coupling works.
    assert_eq!(text_of(&h, a, "f.t"), "existing-work");
    type_text(&mut h, b, "f.t", "live-update");
    h.settle();
    assert_eq!(text_of(&h, a, "f.t"), "live-update");
}

#[test]
fn leave_group_detaches_from_every_peer() {
    let mut h = SimHarness::new(13);
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    let c = h.add_session(session(FIELD_FORM, 3));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    let gc = h.session(c).gid(&path("f.t")).unwrap();
    // a links directly to BOTH b and c (a star centred on a).
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    h.session_mut(a).couple(&path("f.t"), gc).unwrap();
    h.settle();
    assert_eq!(h.session(a).group_of(&path("f.t")).unwrap().len(), 3);

    let n = h.session_mut(a).leave_group(&path("f.t")).unwrap();
    assert_eq!(n, 2);
    h.settle();
    assert!(!h.session(a).is_coupled(&path("f.t")));
    // b and c were only connected through a, so they decouple too.
    assert!(!h.session(b).is_coupled(&path("f.t")));
    assert!(!h.session(c).is_coupled(&path("f.t")));

    // Leaving when uncoupled is a no-op.
    assert_eq!(h.session_mut(a).leave_group(&path("f.t")).unwrap(), 0);
}

#[test]
fn deterministic_replay_same_seed_same_bytes() {
    let run = |seed: u64| -> (u64, u64) {
        let mut h = SimHarness::with_latency(seed, 1_500);
        let a = h.add_session(session(FIELD_FORM, 1));
        let b = h.add_session(session(FIELD_FORM, 2));
        h.settle();
        let gb = h.session(b).gid(&path("f.t")).unwrap();
        h.session_mut(a).couple(&path("f.t"), gb).unwrap();
        h.settle();
        for i in 0..10 {
            type_text(&mut h, a, "f.t", &format!("v{i}"));
            h.settle();
        }
        (h.net.stats().bytes_sent, h.net.now_us())
    };
    assert_eq!(run(11), run(11));
}
