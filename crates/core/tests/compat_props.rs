//! Property-based tests of the §3.3 compatibility machinery over random
//! widget-tree snapshots.

use proptest::prelude::*;

use cosoft_core::{
    apply_destructive, apply_flexible, apply_strict, check_s_compatible, CorrespondenceTable,
};
use cosoft_uikit::WidgetTree;
use cosoft_wire::{AttrName, StateNode, Value, WidgetKind};

fn arb_leaf_kind() -> impl Strategy<Value = WidgetKind> {
    prop_oneof![
        Just(WidgetKind::TextField),
        Just(WidgetKind::Label),
        Just(WidgetKind::Slider),
        Just(WidgetKind::Menu),
        Just(WidgetKind::ToggleButton),
        Just(WidgetKind::Canvas),
    ]
}

fn arb_attr() -> impl Strategy<Value = (AttrName, Value)> {
    prop_oneof![
        "[a-z]{1,10}".prop_map(|s| (AttrName::Text, Value::Text(s))),
        any::<i64>().prop_map(|i| (AttrName::Selected, Value::Int(i))),
        any::<bool>().prop_map(|b| (AttrName::Checked, Value::Bool(b))),
        any::<f64>().prop_map(|x| (AttrName::ValueNum, Value::Float(x))),
    ]
}

/// Random snapshot trees with unique child names per level (the toolkit
/// enforces sibling-name uniqueness).
fn arb_snapshot() -> impl Strategy<Value = StateNode> {
    let leaf = (arb_leaf_kind(), 0..1000u32, prop::collection::vec(arb_attr(), 0..3)).prop_map(
        |(kind, n, attrs)| {
            let mut node = StateNode::new(kind, &format!("w{n}"));
            for (k, v) in attrs {
                node.attrs.insert(k, v);
            }
            node
        },
    );
    leaf.prop_recursive(3, 30, 5, |inner| {
        (0..1000u32, prop::collection::vec(inner, 0..5)).prop_map(|(n, mut children)| {
            // Deduplicate sibling names.
            let mut node = StateNode::new(WidgetKind::Panel, &format!("p{n}"));
            let mut seen = std::collections::BTreeSet::new();
            children.retain(|c| seen.insert(c.name.clone()));
            node.children = children;
            node
        })
    })
    .prop_map(|mut root| {
        root.kind = WidgetKind::Form;
        root.name = "root".to_owned();
        root
    })
}

fn fresh_target() -> (WidgetTree, cosoft_uikit::WidgetId) {
    let mut tree = WidgetTree::new();
    let root = tree.create_root(WidgetKind::Form, "root").expect("fresh tree");
    (tree, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Destructive merging always makes the target s-compatible with the
    /// source (§3.3: the structure is copied).
    #[test]
    fn destructive_merge_establishes_s_compatibility(snap in arb_snapshot()) {
        let corr = CorrespondenceTable::new();
        let (mut tree, root) = fresh_target();
        apply_destructive(&mut tree, root, &snap, &corr).expect("merge");
        let result = tree.snapshot(root, false).expect("snapshot");
        check_s_compatible(&snap, &result, &corr).expect("target must be s-compatible");
    }

    /// Destructive merging is idempotent: a second application changes
    /// nothing and creates/destroys nothing.
    #[test]
    fn destructive_merge_is_idempotent(snap in arb_snapshot()) {
        let corr = CorrespondenceTable::new();
        let (mut tree, root) = fresh_target();
        apply_destructive(&mut tree, root, &snap, &corr).expect("first merge");
        let first = tree.snapshot(root, false).expect("snapshot");
        let report = apply_destructive(&mut tree, root, &snap, &corr).expect("second merge");
        prop_assert_eq!(report.created, 0);
        prop_assert_eq!(report.destroyed, 0);
        prop_assert_eq!(tree.snapshot(root, false).expect("snapshot"), first);
    }

    /// After a destructive merge, a strict apply of the same snapshot
    /// succeeds (the structures now match exactly).
    #[test]
    fn strict_apply_succeeds_after_merge(snap in arb_snapshot()) {
        let corr = CorrespondenceTable::new();
        let (mut tree, root) = fresh_target();
        apply_destructive(&mut tree, root, &snap, &corr).expect("merge");
        apply_strict(&mut tree, root, &snap, &corr).expect("strict apply on merged target");
    }

    /// Flexible matching never destroys destination-only children.
    #[test]
    fn flexible_match_conserves_target_children(
        snap in arb_snapshot(),
        extra in 1..5usize,
    ) {
        let corr = CorrespondenceTable::new();
        let (mut tree, root) = fresh_target();
        // Give the target some private children first.
        let mut names = Vec::new();
        for i in 0..extra {
            let name = format!("private_{i}");
            tree.create(root, WidgetKind::Canvas, &name).expect("create");
            names.push(name);
        }
        let report = apply_flexible(&mut tree, root, &snap, &corr).expect("match");
        prop_assert_eq!(report.destroyed, 0, "flexible matching conserves");
        for name in names {
            let path = cosoft_wire::ObjectPath::parse(&format!("root.{name}")).expect("valid");
            prop_assert!(tree.resolve(&path).is_some(), "conserved child {} vanished", path);
        }
    }

    /// s-compatibility is reflexive on any snapshot.
    #[test]
    fn s_compatibility_is_reflexive(snap in arb_snapshot()) {
        let corr = CorrespondenceTable::new();
        check_s_compatible(&snap, &snap, &corr).expect("reflexive");
    }

    /// s-compatibility as implemented (greedy name-first matching) is
    /// symmetric for same-kind pairs: if a maps onto b, b maps onto a.
    #[test]
    fn s_compatibility_symmetric_same_kinds(a in arb_snapshot(), b in arb_snapshot()) {
        let corr = CorrespondenceTable::new();
        let ab = check_s_compatible(&a, &b, &corr).is_ok();
        let ba = check_s_compatible(&b, &a, &corr).is_ok();
        prop_assert_eq!(ab, ba);
    }
}
