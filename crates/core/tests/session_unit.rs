//! Session edge-path tests: pre-registration errors, event queries,
//! outbox/event draining semantics, and misdirected server messages.

use cosoft_core::harness::SimHarness;
use cosoft_core::session::{Session, SessionError, SessionEvent};
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{
    AccessRight, CopyMode, EventKind, GlobalObjectId, InstanceId, Message, ObjectPath, UiEvent,
    UserId,
};

const FORM: &str = r#"form f { textfield t text="" }"#;

fn path(p: &str) -> ObjectPath {
    ObjectPath::parse(p).expect("valid")
}

fn fresh() -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static")),
        UserId(1),
        "h",
        "unit",
    )
}

#[test]
fn new_session_queues_registration() {
    let mut s = fresh();
    let out = s.drain_outbox();
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0], Message::Register { .. }));
    assert!(s.drain_outbox().is_empty(), "drained");
    assert!(s.instance().is_none());
}

#[test]
fn operations_before_welcome_fail_cleanly() {
    let mut s = fresh();
    let remote = GlobalObjectId::new(InstanceId(9), path("x"));
    assert_eq!(s.gid(&path("f.t")).unwrap_err(), SessionError::NotRegistered);
    assert_eq!(s.couple(&path("f.t"), remote.clone()).unwrap_err(), SessionError::NotRegistered);
    assert_eq!(
        s.copy_from(remote.clone(), &path("f.t"), CopyMode::Strict).unwrap_err(),
        SessionError::NotRegistered
    );
    assert_eq!(
        s.copy_to(&path("f.t"), remote.clone(), CopyMode::Strict).unwrap_err(),
        SessionError::NotRegistered
    );
    assert_eq!(
        s.set_permission(UserId(2), &path("f.t"), AccessRight::Read).unwrap_err(),
        SessionError::NotRegistered
    );
}

#[test]
fn welcome_sets_instance_and_emits_event() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(5) });
    assert_eq!(s.instance(), Some(InstanceId(5)));
    let events = s.take_events();
    assert!(matches!(events[0], SessionEvent::Registered(InstanceId(5))));
    assert!(s.take_events().is_empty(), "events drained");
}

#[test]
fn uncoupled_event_on_unknown_widget_errors() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    let err = s.user_event(UiEvent::simple(path("f.missing"), EventKind::Activate)).unwrap_err();
    assert!(matches!(err, SessionError::Ui(cosoft_uikit::UiError::UnknownPath { .. })));
}

#[test]
fn copy_to_missing_source_errors() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    let remote = GlobalObjectId::new(InstanceId(2), path("x"));
    let err = s.copy_to(&path("f.missing"), remote, CopyMode::Strict).unwrap_err();
    assert!(matches!(err, SessionError::Ui(cosoft_uikit::UiError::UnknownPath { .. })));
}

#[test]
fn state_request_for_missing_object_replies_none() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();
    s.on_message(Message::StateRequest { req_id: 7, path: path("f.gone") });
    let out = s.drain_outbox();
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0], Message::StateReply { req_id: 7, snapshot: None }));
}

#[test]
fn apply_state_to_missing_object_reports_error() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();
    let snapshot = cosoft_wire::StateNode::new(cosoft_wire::WidgetKind::Label, "x");
    s.on_message(Message::ApplyState {
        req_id: 9,
        path: path("f.gone"),
        snapshot,
        mode: CopyMode::Strict,
    });
    let out = s.drain_outbox();
    assert_eq!(out.len(), 1);
    match &out[0] {
        Message::StateApplied { req_id: 9, overwritten: None, error: Some(_) } => {}
        other => panic!("expected failed StateApplied, got {other:?}"),
    }
}

#[test]
fn execute_event_for_missing_target_still_reports_done() {
    // The group must never stall because one replica lost the widget.
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();
    s.on_message(Message::ExecuteEvent {
        exec_id: 4,
        target: path("f.gone"),
        event: UiEvent::simple(path("f.gone"), EventKind::Activate),
    });
    let out = s.drain_outbox();
    assert!(out.iter().any(|m| matches!(m, Message::ExecuteDone { exec_id: 4 })));
    assert_eq!(s.remote_executions(), 0);
}

#[test]
fn spurious_server_messages_are_ignored() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();
    s.take_events(); // drop the Registered notification
                     // Replies for unknown seq/exec ids must be no-ops.
    s.on_message(Message::EventGranted { seq: 99, exec_id: 5 });
    s.on_message(Message::EventRejected { seq: 98 });
    s.on_message(Message::GroupUnlocked { exec_id: 1, objects: vec![path("f.gone")] });
    // Client-originated kinds arriving at a client are ignored.
    s.on_message(Message::Deregister);
    assert!(s.drain_outbox().is_empty());
    assert!(s.take_events().is_empty());
}

#[test]
fn list_coupled_surfaces_as_event() {
    let mut h = SimHarness::new(9);
    let a = h.add_session(fresh());
    let b = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(FORM).expect("static")),
        UserId(2),
        "h2",
        "unit",
    ));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).expect("registered");
    h.session_mut(a).couple(&path("f.t"), gb.clone()).expect("registered");
    h.settle();
    let ga = h.session(a).gid(&path("f.t")).expect("registered");
    h.session_mut(a).list_coupled(ga);
    h.settle();
    let sets: Vec<_> = h
        .session_mut(a)
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            SessionEvent::CoupledSet { coupled, .. } => Some(coupled),
            _ => None,
        })
        .collect();
    assert_eq!(sets.len(), 1);
    assert_eq!(sets[0], vec![gb]);
}

#[test]
fn leave_queues_deregister() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();
    s.leave();
    let out = s.drain_outbox();
    assert!(matches!(out[0], Message::Deregister));
}

// ---- delta transfers -------------------------------------------------------

fn textfield(text: &str) -> cosoft_wire::StateNode {
    cosoft_wire::StateNode::new(cosoft_wire::WidgetKind::TextField, "t")
        .with_attr(cosoft_wire::AttrName::Text, cosoft_wire::Value::Text(text.into()))
}

/// A snapshot transfer primes the delta base; a subsequent `ApplyDelta`
/// against it reconstructs and applies the new state.
#[test]
fn apply_delta_reconstructs_against_cached_base() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();

    let v1 = textfield("v1");
    let v2 = textfield("v2");
    s.on_message(Message::ApplyState {
        req_id: 1,
        path: path("f.t"),
        snapshot: v1.clone(),
        mode: CopyMode::Strict,
    });
    let out = s.drain_outbox();
    assert!(matches!(&out[0], Message::StateApplied { error: None, .. }), "prime: {out:?}");

    s.on_message(Message::ApplyDelta {
        req_id: 2,
        path: path("f.t"),
        base_version: cosoft_wire::delta::state_version(&v1),
        new_version: cosoft_wire::delta::state_version(&v2),
        delta: cosoft_wire::delta::diff(&v1, &v2),
        mode: CopyMode::Strict,
    });
    let out = s.drain_outbox();
    match &out[0] {
        Message::StateApplied { req_id: 2, overwritten: Some(prev), error: None } => {
            assert_eq!(prev.attrs.get(&cosoft_wire::AttrName::Text).unwrap().as_text(), Some("v1"));
        }
        other => panic!("expected successful StateApplied, got {other:?}"),
    }
    let tree = s.toolkit().tree();
    let id = tree.resolve(&path("f.t")).unwrap();
    let snap = tree.snapshot(id, false).unwrap();
    assert_eq!(snap.attrs.get(&cosoft_wire::AttrName::Text).unwrap().as_text(), Some("v2"));
}

/// A delta against a missing or stale base must be rejected with an error
/// reply (the server's cue to fall back to a full snapshot), leaving the
/// widget untouched.
#[test]
fn apply_delta_without_matching_base_is_rejected() {
    let mut s = fresh();
    s.on_message(Message::Welcome { instance: InstanceId(1) });
    s.drain_outbox();

    let v1 = textfield("v1");
    let v2 = textfield("v2");

    // No base cached at all.
    s.on_message(Message::ApplyDelta {
        req_id: 3,
        path: path("f.t"),
        base_version: cosoft_wire::delta::state_version(&v1),
        new_version: cosoft_wire::delta::state_version(&v2),
        delta: cosoft_wire::delta::diff(&v1, &v2),
        mode: CopyMode::Strict,
    });
    let out = s.drain_outbox();
    match &out[0] {
        Message::StateApplied { req_id: 3, overwritten: None, error: Some(e) } => {
            assert!(e.contains("base"), "error names the base mismatch: {e}");
        }
        other => panic!("expected rejected StateApplied, got {other:?}"),
    }

    // Prime with v1, then claim a delta against a *different* base version.
    s.on_message(Message::ApplyState {
        req_id: 4,
        path: path("f.t"),
        snapshot: v1.clone(),
        mode: CopyMode::Strict,
    });
    s.drain_outbox();
    s.on_message(Message::ApplyDelta {
        req_id: 5,
        path: path("f.t"),
        base_version: cosoft_wire::delta::state_version(&v2),
        new_version: cosoft_wire::delta::state_version(&v1),
        delta: cosoft_wire::delta::diff(&v2, &v1),
        mode: CopyMode::Strict,
    });
    let out = s.drain_outbox();
    assert!(
        matches!(&out[0], Message::StateApplied { req_id: 5, overwritten: None, error: Some(_) }),
        "stale base must be rejected, got {out:?}"
    );
    // The widget keeps the v1 text from the priming snapshot.
    let tree = s.toolkit().tree();
    let id = tree.resolve(&path("f.t")).unwrap();
    let snap = tree.snapshot(id, false).unwrap();
    assert_eq!(snap.attrs.get(&cosoft_wire::AttrName::Text).unwrap().as_text(), Some("v1"));
}
