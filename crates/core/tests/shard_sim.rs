//! End-to-end test of the sharded server over the simulated network:
//! real [`Session`]s, the real wire protocol, and a [`ShardRouter`]
//! with two [`ServerCore`] shards in place of the single brain. The
//! clients must not be able to tell the difference — cross-shard
//! couples merge components transparently, synchronization by multiple
//! execution works across the migrated group, and a later decouple
//! lets the lazy rebalancer spread components out again.

use std::collections::BTreeMap;

use cosoft_core::session::Session;
use cosoft_net::sim::{NodeId, SimNet};
use cosoft_server::{Delivery, Outgoing, ShardRouter};
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

const SERVER_NODE: NodeId = NodeId(0);
const FIELD_FORM: &str = r#"form f { textfield t text="" }"#;

fn path(s: &str) -> ObjectPath {
    ObjectPath::parse(s).unwrap()
}

fn session(user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(FIELD_FORM).unwrap()),
        UserId(user),
        &format!("ws{user}"),
        "shard-test",
    )
}

/// A minimal sharded deployment: like `SimHarness`, but the server side
/// is a 2-shard router. Kept local to this test on purpose — the main
/// harness pins the single-core topology every other test measures
/// against.
struct ShardedSim {
    net: SimNet,
    router: ShardRouter<NodeId>,
    sessions: BTreeMap<NodeId, Session>,
    next_node: u64,
}

impl ShardedSim {
    fn new(shards: usize) -> Self {
        ShardedSim {
            net: SimNet::new(7),
            router: ShardRouter::new(shards),
            sessions: BTreeMap::new(),
            next_node: 1,
        }
    }

    fn add_session(&mut self, s: Session) -> NodeId {
        let node = NodeId(self.next_node);
        self.next_node += 1;
        self.sessions.insert(node, s);
        node
    }

    fn deliver_router_out(&mut self, out: Outgoing<NodeId>) {
        for item in out.into_items() {
            match item {
                Delivery::Unicast(dst, msg) => self.net.send(SERVER_NODE, dst, msg),
                Delivery::Shared(dsts, frame) => {
                    let body_len = frame.body().len();
                    let msg = frame.decode().expect("router-encoded frame decodes");
                    for dst in dsts {
                        self.net.send_encoded(SERVER_NODE, dst, msg.clone(), body_len);
                    }
                }
            }
        }
    }

    /// Pumps to quiescence, checking the router's cross-shard invariant
    /// pack after every single server step.
    fn settle(&mut self) {
        let mut steps = 0u64;
        loop {
            for (&node, s) in self.sessions.iter_mut() {
                for msg in s.drain_outbox() {
                    self.net.send(node, SERVER_NODE, msg);
                }
            }
            if self.net.is_idle() {
                return;
            }
            while let Some(delivery) = self.net.step() {
                steps += 1;
                assert!(steps <= 1_000_000, "sharded simulation runaway");
                if delivery.dst == SERVER_NODE {
                    let out = self.router.handle(delivery.src, delivery.msg);
                    self.router.check_invariants().unwrap();
                    self.deliver_router_out(out);
                } else if let Some(s) = self.sessions.get_mut(&delivery.dst) {
                    s.on_message(delivery.msg);
                    for msg in s.drain_outbox() {
                        self.net.send(delivery.dst, SERVER_NODE, msg);
                    }
                }
            }
        }
    }

    fn tick(&mut self, at_us: u64) {
        self.net.advance_to(at_us);
        let out = self.router.tick(at_us);
        self.router.check_invariants().unwrap();
        self.deliver_router_out(out);
        self.settle();
    }

    fn text_of(&self, node: NodeId, p: &str) -> String {
        let tree = self.sessions[&node].toolkit().tree();
        let id = tree.resolve(&path(p)).unwrap();
        tree.attr(id, &AttrName::Text).unwrap().as_text().unwrap().to_owned()
    }

    fn type_text(&mut self, node: NodeId, p: &str, text: &str) {
        self.sessions
            .get_mut(&node)
            .unwrap()
            .user_event(UiEvent::new(
                path(p),
                EventKind::TextCommitted,
                vec![Value::Text(text.into())],
            ))
            .unwrap();
    }
}

#[test]
fn coupling_and_sync_work_transparently_across_shards() {
    let mut sim = ShardedSim::new(2);
    let a = sim.add_session(session(1));
    let b = sim.add_session(session(2));
    let c = sim.add_session(session(3));
    let d = sim.add_session(session(4));
    sim.settle();

    // Round-robin placement split the four sessions over both shards.
    let inst: Vec<_> = [a, b, c, d].iter().map(|n| sim.sessions[n].instance().unwrap()).collect();
    assert_ne!(
        sim.router.shard_of_instance(inst[0]),
        sim.router.shard_of_instance(inst[1]),
        "a and b must start on different shards for this test to bite"
    );

    // a couples to b: a cross-shard merge runs under the hood.
    let gb = sim.sessions[&b].gid(&path("f.t")).unwrap();
    sim.sessions.get_mut(&a).unwrap().couple(&path("f.t"), gb).unwrap();
    sim.settle();
    assert!(sim.router.router_stats().cross_shard_merges >= 1);
    assert_eq!(sim.router.shard_of_instance(inst[0]), sim.router.shard_of_instance(inst[1]));
    assert!(sim.sessions[&a].is_coupled(&path("f.t")));
    assert!(sim.sessions[&b].is_coupled(&path("f.t")));

    // Synchronization by multiple execution across the migrated group.
    sim.type_text(a, "f.t", "over-the-shard");
    sim.settle();
    assert_eq!(sim.text_of(a, "f.t"), "over-the-shard");
    assert_eq!(sim.text_of(b, "f.t"), "over-the-shard");
    // And in the other direction, from the migrated member.
    sim.type_text(b, "f.t", "echo-back");
    sim.settle();
    assert_eq!(sim.text_of(a, "f.t"), "echo-back");
    assert_eq!(sim.text_of(b, "f.t"), "echo-back");

    // c and d stayed untouched on their original shards and still work.
    let gd = sim.sessions[&d].gid(&path("f.t")).unwrap();
    sim.sessions.get_mut(&c).unwrap().couple(&path("f.t"), gd).unwrap();
    sim.settle();
    sim.type_text(c, "f.t", "second-group");
    sim.settle();
    assert_eq!(sim.text_of(d, "f.t"), "second-group");

    // All locks drained everywhere; every shard's core is consistent.
    for i in 0..sim.router.shard_count() {
        assert!(sim.router.shard(i).locks().is_empty());
    }
    sim.router.check_invariants().unwrap();
}

#[test]
fn decouple_splits_and_lazy_rebalance_moves_a_component_back() {
    let mut sim = ShardedSim::new(2);
    sim.router.set_rebalance_threshold(2);
    let a = sim.add_session(session(1));
    let b = sim.add_session(session(2));
    sim.settle();
    let inst_a = sim.sessions[&a].instance().unwrap();
    let inst_b = sim.sessions[&b].instance().unwrap();

    // Merge both onto one shard, leaving the other empty.
    let gb = sim.sessions[&b].gid(&path("f.t")).unwrap();
    sim.sessions.get_mut(&a).unwrap().couple(&path("f.t"), gb.clone()).unwrap();
    sim.settle();
    assert_eq!(sim.router.shard_of_instance(inst_a), sim.router.shard_of_instance(inst_b));

    // Split the component again; the imbalance (2 vs 0) now crosses the
    // threshold, so the next tick migrates one singleton back.
    sim.sessions.get_mut(&a).unwrap().decouple(&path("f.t"), gb).unwrap();
    sim.settle();
    sim.tick(1_000);
    assert!(sim.router.router_stats().rebalances >= 1, "lazy rebalance must have run");
    assert_ne!(
        sim.router.shard_of_instance(inst_a),
        sim.router.shard_of_instance(inst_b),
        "split components spread over both shards again"
    );

    // Both sessions remain fully operational after the rebalance.
    sim.type_text(a, "f.t", "post-split-a");
    sim.type_text(b, "f.t", "post-split-b");
    sim.settle();
    assert_eq!(sim.text_of(a, "f.t"), "post-split-a");
    assert_eq!(sim.text_of(b, "f.t"), "post-split-b");
    sim.router.check_invariants().unwrap();
}
