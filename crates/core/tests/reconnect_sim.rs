//! Disconnect/reconnect/resume end to end on the deterministic
//! simulation: liveness grace periods, resume tokens, couple survival,
//! and the §3.1 `CopyFrom` resync — driven both by explicit harness
//! disconnects and by scheduled `FaultPlan` outages.

use cosoft_core::harness::SimHarness;
use cosoft_core::session::{Session, SessionEvent};
use cosoft_net::sim::{DownWindow, FaultPlan, NodeId};
use cosoft_server::LivenessConfig;
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{AttrName, EventKind, ObjectPath, UiEvent, UserId, Value};

fn path(s: &str) -> ObjectPath {
    ObjectPath::parse(s).unwrap()
}

fn session(spec_src: &str, user: u64) -> Session {
    Session::new(
        Toolkit::from_tree(spec::build_tree(spec_src).unwrap()),
        UserId(user),
        &format!("ws{user}"),
        "test-app",
    )
}

fn text_of(h: &SimHarness, node: NodeId, p: &str) -> String {
    let tree = h.session(node).toolkit().tree();
    let id = tree.resolve(&path(p)).unwrap();
    tree.attr(id, &AttrName::Text).unwrap().as_text().unwrap().to_owned()
}

fn type_text(h: &mut SimHarness, node: NodeId, p: &str, text: &str) {
    h.session_mut(node)
        .user_event(UiEvent::new(path(p), EventKind::TextCommitted, vec![Value::Text(text.into())]))
        .unwrap();
}

const FIELD_FORM: &str = r#"form f { textfield t text="" }"#;

/// A client that drops and rejoins within the grace period keeps its
/// instance id and couples, and converges on the state it missed.
#[test]
fn reconnect_within_grace_resumes_and_resyncs() {
    let mut h = SimHarness::new(7);
    h.server.set_liveness(LivenessConfig {
        grace_us: 1_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    type_text(&mut h, a, "f.t", "before");
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "before");
    let b_instance = h.instance_of(b).unwrap();
    assert!(h.session(b).resume_token().is_some(), "grace > 0 mints resume tokens");

    h.disconnect(b);
    h.settle();
    let stats = h.server.stats();
    assert_eq!(stats.quarantined_instances, 1);
    assert_eq!(stats.registered_instances, 2, "quarantined instances stay registered");

    // b misses an update while its link is severed.
    type_text(&mut h, a, "f.t", "while-away");
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "before");

    h.reconnect(b);
    h.settle();
    assert_eq!(h.instance_of(b), Some(b_instance), "resume keeps the instance id");
    let stats = h.server.stats();
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.quarantined_instances, 0);
    assert!(
        h.session_mut(b).take_events().iter().any(|e| matches!(e, SessionEvent::Resumed(_))),
        "session surfaces the resumption"
    );
    assert_eq!(text_of(&h, b, "f.t"), "while-away", "CopyFrom resync pulls the missed state");

    // The couple survived the outage in both directions.
    type_text(&mut h, b, "f.t", "after");
    h.settle();
    assert_eq!(text_of(&h, a, "f.t"), "after");
    assert_eq!(text_of(&h, b, "f.t"), "after");
}

/// When the grace period lapses, the quarantine expires into the normal
/// §3.2 deregistration (partners are decoupled and told) and the stale
/// resume token stops working: the client comes back as a new instance.
#[test]
fn grace_expiry_deregisters_and_invalidates_the_token() {
    let mut h = SimHarness::new(7);
    h.server.set_liveness(LivenessConfig {
        grace_us: 1_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    let b_instance = h.instance_of(b).unwrap();

    h.disconnect(b);
    h.settle();
    h.tick_server(500_000);
    h.settle();
    assert_eq!(h.server.stats().quarantined_instances, 1, "grace still running");

    h.tick_server(1_100_000);
    h.settle();
    let stats = h.server.stats();
    assert_eq!(stats.quarantine_expiries, 1);
    assert_eq!(stats.registered_instances, 1);
    assert!(!h.session(a).is_coupled(&path("f.t")), "partner saw the auto-decouple");

    // Too late: the rejoin is refused and the session falls back to a
    // fresh registration under a new instance id.
    h.reconnect(b);
    h.settle();
    let stats = h.server.stats();
    assert_eq!(stats.rejoins_rejected, 1);
    assert_eq!(stats.resumes, 0);
    let back = h.instance_of(b).expect("fallback registration completed");
    assert_ne!(back, b_instance, "expired quarantine means a new identity");
    assert_eq!(stats.registered_instances, 2);
}

/// The same story driven by the network instead of the harness: a
/// scheduled `FaultPlan` outage silently eats b's traffic, the idle
/// timeout quarantines it, and once the window lifts the rejoin resumes
/// the instance.
#[test]
fn fault_schedule_outage_triggers_idle_quarantine_then_resume() {
    let mut h = SimHarness::new(7);
    h.server.set_liveness(LivenessConfig {
        grace_us: 100_000,
        idle_timeout_us: 5_000,
        max_quarantined: 0,
    });
    let a = h.add_session(session(FIELD_FORM, 1));
    let b = h.add_session(session(FIELD_FORM, 2));
    h.settle();
    let gb = h.session(b).gid(&path("f.t")).unwrap();
    h.session_mut(a).couple(&path("f.t"), gb).unwrap();
    h.settle();
    let b_instance = h.instance_of(b).unwrap();

    // b's link goes dark from t=100µs to t=10ms.
    h.net.set_faults(FaultPlan {
        down: vec![DownWindow { node: b, from_us: 100, to_us: 10_000 }],
        ..FaultPlan::default()
    });

    // Both clients probe at t=500: a's ping lands, b's is swallowed by
    // the outage.
    h.tick_server(500);
    h.session_mut(a).ping();
    h.session_mut(b).ping();
    h.settle();
    assert!(h.net.stats().link_down_dropped >= 1, "the window ate b's probe");

    // At t=5200 only b (silent since t=0) has outlived the idle timeout;
    // a (last heard at t=500) has 300µs to spare and probes again.
    h.tick_server(5_200);
    h.session_mut(a).ping();
    h.settle();
    let stats = h.server.stats();
    assert_eq!(stats.quarantines, 1, "only the silent instance is quarantined");
    assert_eq!(stats.quarantined_instances, 1);
    assert!(h.instance_of(a).is_some());

    // The outage ends before the grace deadline (5200 + 100ms); b
    // notices and rejoins.
    h.tick_server(10_100);
    h.session_mut(b).begin_rejoin();
    h.settle();
    assert_eq!(h.instance_of(b), Some(b_instance), "resumed under the same id");
    let stats = h.server.stats();
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.quarantined_instances, 0);

    // Coupling still works end to end after the resume.
    type_text(&mut h, a, "f.t", "recovered");
    h.settle();
    assert_eq!(text_of(&h, b, "f.t"), "recovered");
}
