//! State-machine tests of `ServerCore` driven directly (no transport):
//! each test feeds messages in and asserts on the outgoing message sets,
//! exercising the protocol flows of §3.1–§3.4.

use cosoft_server::ServerCore;
use cosoft_wire::{
    delta, AccessRight, AttrName, CopyMode, EventKind, GlobalObjectId, InstanceId, Message,
    ObjectPath, StateNode, Target, UiEvent, UserId, Value, WidgetKind,
};

type Endpoint = u64;

fn register(server: &mut ServerCore<Endpoint>, endpoint: Endpoint, user: u64) -> InstanceId {
    let out = server
        .handle(
            endpoint,
            Message::Register {
                user: UserId(user),
                host: format!("ws{endpoint}"),
                app_name: "app".into(),
            },
        )
        .into_messages();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, endpoint);
    match &out[0].1 {
        Message::Welcome { instance } => *instance,
        other => panic!("expected Welcome, got {other:?}"),
    }
}

fn gid(i: InstanceId, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(p).unwrap())
}

fn find<'a>(out: &'a [(Endpoint, Message)], endpoint: Endpoint, kind: &str) -> &'a Message {
    out.iter()
        .find(|(e, m)| *e == endpoint && m.kind_name() == kind)
        .map(|(_, m)| m)
        .unwrap_or_else(|| panic!("no {kind} sent to endpoint {endpoint}; got {out:?}"))
}

fn count_kind(out: &[(Endpoint, Message)], kind: &str) -> usize {
    out.iter().filter(|(_, m)| m.kind_name() == kind).count()
}

#[test]
fn register_assigns_distinct_instances() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 10, 1);
    let b = register(&mut s, 11, 2);
    assert_ne!(a, b);

    let out = s.handle(10, Message::QueryInstances).into_messages();
    match find(&out, 10, "instance-list") {
        Message::InstanceList { entries } => assert_eq!(entries.len(), 2),
        _ => unreachable!(),
    }
}

#[test]
fn unregistered_endpoint_is_rejected() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let out = s.handle(99, Message::QueryInstances).into_messages();
    assert_eq!(out.len(), 1);
    assert!(matches!(out[0].1, Message::ErrorReply { .. }));
}

#[test]
fn couple_broadcasts_full_closure_to_all_member_instances() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);

    let out = s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    assert_eq!(count_kind(&out, "couple-update"), 2);
    match find(&out, 2, "couple-update") {
        Message::CoupleUpdate { group } => assert_eq!(group.len(), 2),
        _ => unreachable!(),
    }

    // Extending the group updates all three instances with the closure.
    let out = s.handle(3, Message::Couple { src: gid(c, "z"), dst: gid(b, "y") }).into_messages();
    assert_eq!(count_kind(&out, "couple-update"), 3);
    match find(&out, 1, "couple-update") {
        Message::CoupleUpdate { group } => assert_eq!(group.len(), 3),
        _ => unreachable!(),
    }
}

#[test]
fn remote_couple_by_third_party() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let _teacher = register(&mut s, 3, 9);

    // The teacher (instance 3) couples objects living in instances 1 and 2.
    let out = s.handle(3, Message::RemoteCouple { a: gid(a, "x"), b: gid(b, "y") }).into_messages();
    assert_eq!(count_kind(&out, "couple-update"), 2);
    assert!(s.couples().is_coupled(&gid(a, "x")));
}

#[test]
fn decouple_splits_and_notifies_both_halves() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    s.handle(1, Message::Couple { src: gid(b, "y"), dst: gid(c, "z") }).into_messages();

    let out = s.handle(1, Message::Decouple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    // Instance a learns it is now a singleton; b and c learn their group.
    match find(&out, 1, "couple-update") {
        Message::CoupleUpdate { group } => assert_eq!(group.len(), 1),
        _ => unreachable!(),
    }
    match find(&out, 3, "couple-update") {
        Message::CoupleUpdate { group } => assert_eq!(group.len(), 2),
        _ => unreachable!(),
    }
}

#[test]
fn event_flow_grant_execute_done_unlock() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "f.t"), dst: gid(b, "g.t") }).into_messages();

    let event = UiEvent::new(
        ObjectPath::parse("f.t").unwrap(),
        EventKind::TextCommitted,
        vec![Value::Text("hi".into())],
    );
    let out = s.handle(1, Message::Event { origin: gid(a, "f.t"), event, seq: 5 }).into_messages();
    let exec_id = match find(&out, 1, "event-granted") {
        Message::EventGranted { seq, exec_id } => {
            assert_eq!(*seq, 5);
            *exec_id
        }
        _ => unreachable!(),
    };
    match find(&out, 2, "execute-event") {
        Message::ExecuteEvent { target, event, .. } => {
            assert_eq!(target.to_string(), "g.t");
            assert_eq!(event.kind, EventKind::TextCommitted);
        }
        _ => unreachable!(),
    }
    assert!(s.locks().is_locked(&gid(a, "f.t")));
    assert!(s.locks().is_locked(&gid(b, "g.t")));

    // While locked, another event on the same group is rejected.
    let out2 = s
        .handle(
            2,
            Message::Event {
                origin: gid(b, "g.t"),
                event: UiEvent::simple(ObjectPath::parse("g.t").unwrap(), EventKind::TextCommitted),
                seq: 9,
            },
        )
        .into_messages();
    assert!(matches!(find(&out2, 2, "event-rejected"), Message::EventRejected { seq: 9 }));
    assert_eq!(s.rejected_events(), 1);

    // Both instances report done; the unlock notices flow.
    let out3 = s.handle(1, Message::ExecuteDone { exec_id }).into_messages();
    assert!(out3.is_empty(), "still waiting on instance 2");
    let out4 = s.handle(2, Message::ExecuteDone { exec_id }).into_messages();
    assert_eq!(count_kind(&out4, "group-unlocked"), 2);
    assert!(!s.locks().is_locked(&gid(a, "f.t")));
    assert_eq!(s.granted_events(), 1);
}

#[test]
fn event_on_uncoupled_object_completes_alone() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let out = s
        .handle(
            1,
            Message::Event {
                origin: gid(a, "solo"),
                event: UiEvent::simple(ObjectPath::parse("solo").unwrap(), EventKind::Activate),
                seq: 1,
            },
        )
        .into_messages();
    let exec_id = match find(&out, 1, "event-granted") {
        Message::EventGranted { exec_id, .. } => *exec_id,
        _ => unreachable!(),
    };
    assert_eq!(count_kind(&out, "execute-event"), 0);
    let out = s.handle(1, Message::ExecuteDone { exec_id }).into_messages();
    assert_eq!(count_kind(&out, "group-unlocked"), 1);
}

#[test]
fn copy_from_pulls_state_and_records_history() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    // Instance a pulls the state of b's query form into its own form.
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 77,
            },
        )
        .into_messages();
    let req_id = match find(&out, 2, "state-request") {
        Message::StateRequest { req_id, path } => {
            assert_eq!(path.to_string(), "q");
            *req_id
        }
        _ => unreachable!(),
    };

    // b replies with its snapshot; the server forwards an ApplyState to a.
    let snapshot = StateNode::new(WidgetKind::Form, "q")
        .with_attr(AttrName::Title, Value::Text("Query".into()));
    let out = s
        .handle(2, Message::StateReply { req_id, snapshot: Some(snapshot.clone()) })
        .into_messages();
    let apply_req = match find(&out, 1, "apply-state") {
        Message::ApplyState { req_id, snapshot: snap, mode, .. } => {
            assert_eq!(snap, &snapshot);
            assert_eq!(*mode, CopyMode::Strict);
            *req_id
        }
        _ => unreachable!(),
    };

    // a applies it and reports the overwritten previous state.
    let prev = StateNode::new(WidgetKind::Form, "q");
    let out = s
        .handle(
            1,
            Message::StateApplied { req_id: apply_req, overwritten: Some(prev), error: None },
        )
        .into_messages();
    match find(&out, 1, "state-applied") {
        Message::StateApplied { req_id, .. } => assert_eq!(*req_id, 77),
        _ => unreachable!(),
    }
    assert_eq!(s.history().undo_depth(&gid(a, "q")), 1);
}

#[test]
fn copy_to_pushes_snapshot_directly() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let snapshot = StateNode::new(WidgetKind::Label, "l")
        .with_attr(AttrName::Text, Value::Text("shared".into()));
    let out = s
        .handle(
            1,
            Message::CopyTo {
                src: gid(a, "l"),
                dst: gid(b, "l"),
                snapshot: snapshot.clone(),
                mode: CopyMode::FlexibleMatch,
                req_id: 3,
            },
        )
        .into_messages();
    match find(&out, 2, "apply-state") {
        Message::ApplyState { snapshot: snap, .. } => assert_eq!(snap, &snapshot),
        _ => unreachable!(),
    }
}

#[test]
fn missing_source_fails_the_copy() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "nope"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 1,
            },
        )
        .into_messages();
    let req_id = match find(&out, 2, "state-request") {
        Message::StateRequest { req_id, .. } => *req_id,
        _ => unreachable!(),
    };
    let out = s.handle(2, Message::StateReply { req_id, snapshot: None }).into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
}

#[test]
fn undo_restores_and_redo_reapplies() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    let v1 =
        StateNode::new(WidgetKind::Label, "l").with_attr(AttrName::Text, Value::Text("v1".into()));
    let v2 =
        StateNode::new(WidgetKind::Label, "l").with_attr(AttrName::Text, Value::Text("v2".into()));

    // Push v2 onto b, overwriting v1.
    let out = s
        .handle(
            1,
            Message::CopyTo {
                src: gid(a, "l"),
                dst: gid(b, "l"),
                snapshot: v2.clone(),
                mode: CopyMode::Strict,
                req_id: 1,
            },
        )
        .into_messages();
    let req_id = match find(&out, 2, "apply-state") {
        Message::ApplyState { req_id, .. } => *req_id,
        _ => unreachable!(),
    };
    s.handle(2, Message::StateApplied { req_id, overwritten: Some(v1.clone()), error: None })
        .into_messages();
    assert_eq!(s.history().undo_depth(&gid(b, "l")), 1);

    // Undo: the server pushes v1 back to b. The first transfer cached a
    // v2 sync base for b, so the undo travels as a delta against it.
    let out = s.handle(2, Message::UndoState { object: gid(b, "l") }).into_messages();
    let req_id = match find(&out, 2, "apply-delta") {
        Message::ApplyDelta { req_id, base_version, delta: d, mode, .. } => {
            assert_eq!(*base_version, delta::state_version(&v2));
            assert_eq!(delta::apply(&v2, d).unwrap(), v1);
            assert_eq!(*mode, CopyMode::DestructiveMerge);
            *req_id
        }
        _ => unreachable!(),
    };
    // The displaced v2 becomes redoable.
    s.handle(2, Message::StateApplied { req_id, overwritten: Some(v2.clone()), error: None })
        .into_messages();
    assert_eq!(s.history().redo_depth(&gid(b, "l")), 1);

    // Redo: the server pushes v2 again, as a delta against v1.
    let out = s.handle(2, Message::RedoState { object: gid(b, "l") }).into_messages();
    match find(&out, 2, "apply-delta") {
        Message::ApplyDelta { delta: d, .. } => assert_eq!(delta::apply(&v1, d).unwrap(), v2),
        _ => unreachable!(),
    }

    // Undo with empty history errors.
    let out = s.handle(1, Message::UndoState { object: gid(a, "x") }).into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
}

#[test]
fn permissions_deny_copy_and_couple() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_default_right(AccessRight::Denied);
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    // User 1 may not read b's objects under a Denied default.
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 1,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 1, "permission-denied"), Message::PermissionDenied { .. }));

    let out = s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    assert!(matches!(find(&out, 1, "permission-denied"), Message::PermissionDenied { .. }));

    // b grants read on its form; copy then passes permission checks.
    s.handle(
        2,
        Message::SetPermission { user: UserId(1), object: gid(b, "q"), right: AccessRight::Read },
    )
    .into_messages();
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 2,
            },
        )
        .into_messages();
    assert_eq!(count_kind(&out, "state-request"), 1);

    // Owners always have write on their own objects: coupling two of a's
    // own objects is allowed even under a Denied default.
    let out = s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(a, "y") }).into_messages();
    assert_eq!(count_kind(&out, "couple-update"), 1);
}

#[test]
fn only_owner_may_set_permissions() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let _b = register(&mut s, 2, 2);
    let out = s
        .handle(
            2,
            Message::SetPermission {
                user: UserId(2),
                object: gid(a, "x"),
                right: AccessRight::Write,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 2, "permission-denied"), Message::PermissionDenied { .. }));
}

#[test]
fn co_send_command_routes_by_target() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);

    // Direct.
    let out = s
        .handle(
            1,
            Message::CoSendCommand {
                to: Target::Instance(b),
                command: "ping".into(),
                payload: vec![1],
            },
        )
        .into_messages();
    match find(&out, 2, "command-delivery") {
        Message::CommandDelivery { from, command, payload } => {
            assert_eq!(*from, a);
            assert_eq!(command, "ping");
            assert_eq!(payload, &vec![1]);
        }
        _ => unreachable!(),
    }

    // Broadcast excludes the sender.
    let out = s
        .handle(
            1,
            Message::CoSendCommand { to: Target::Broadcast, command: "x".into(), payload: vec![] },
        )
        .into_messages();
    assert_eq!(count_kind(&out, "command-delivery"), 2);
    assert!(out.iter().all(|(e, _)| *e != 1));

    // Group target follows the couple closure.
    s.handle(1, Message::Couple { src: gid(a, "o"), dst: gid(c, "p") }).into_messages();
    let out = s
        .handle(
            1,
            Message::CoSendCommand {
                to: Target::Group(gid(a, "o")),
                command: "g".into(),
                payload: vec![],
            },
        )
        .into_messages();
    assert_eq!(count_kind(&out, "command-delivery"), 1);
    assert_eq!(out.iter().find(|(_, m)| m.kind_name() == "command-delivery").unwrap().0, 3);

    // Unknown target instance errors.
    let out = s
        .handle(
            1,
            Message::CoSendCommand {
                to: Target::Instance(InstanceId(99)),
                command: "x".into(),
                payload: vec![],
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
}

#[test]
fn deregister_auto_decouples_and_notifies_survivors() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    s.handle(2, Message::Couple { src: gid(b, "y"), dst: gid(c, "z") }).into_messages();

    let out = s.handle(2, Message::Deregister).into_messages();
    // a and c each learn their group shrank.
    assert!(count_kind(&out, "couple-update") >= 2);
    assert!(
        !s.couples().is_coupled(&gid(a, "x"))
            || s.couples().coupled_with(&gid(a, "x")).iter().all(|g| g.instance != b)
    );
    assert!(s.registry().info(b).is_none());
}

#[test]
fn disconnect_mid_execution_releases_locks() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();

    let out = s
        .handle(
            1,
            Message::Event {
                origin: gid(a, "x"),
                event: UiEvent::simple(ObjectPath::parse("x").unwrap(), EventKind::Activate),
                seq: 1,
            },
        )
        .into_messages();
    let exec_id = match find(&out, 1, "event-granted") {
        Message::EventGranted { exec_id, .. } => *exec_id,
        _ => unreachable!(),
    };
    // a finishes, but b crashes before replying.
    s.handle(1, Message::ExecuteDone { exec_id }).into_messages();
    assert!(s.locks().is_locked(&gid(a, "x")));
    let out = s.disconnect(2).into_messages();
    // The execution settles and a's object unlocks.
    assert!(count_kind(&out, "group-unlocked") >= 1);
    assert!(!s.locks().is_locked(&gid(a, "x")));
}

#[test]
fn list_coupled_reports_closure() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    let out = s.handle(1, Message::ListCoupled { object: gid(a, "x") }).into_messages();
    match find(&out, 1, "coupled-set") {
        Message::CoupledSet { coupled, .. } => assert_eq!(coupled, &vec![gid(b, "y")]),
        _ => unreachable!(),
    }
}

#[test]
fn server_to_client_kinds_are_rejected_as_misuse() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let _a = register(&mut s, 1, 1);
    let out = s.handle(1, Message::Welcome { instance: InstanceId(9) }).into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
}

/// Liveness regression: a `CopyFrom` whose *source* dies before sending
/// its `StateReply` must fail the transfer back to the requester instead
/// of leaving the transfer group outstanding forever.
#[test]
fn copy_from_source_death_fails_transfer() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    // a pulls state from b's object; the server asks b for a snapshot.
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 9,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 2, "state-request"), Message::StateRequest { .. }));
    assert_eq!(s.stats().live_transfer_groups, 1);

    // b (the source) dies before replying.
    let out = s.disconnect(2).into_messages();
    match find(&out, 1, "error-reply") {
        Message::ErrorReply { context, reason } => {
            assert_eq!(context, "copy");
            assert!(reason.contains("source"), "reason should name the source: {reason}");
        }
        _ => unreachable!(),
    }
    // The transfer group is settled, not leaked.
    assert_eq!(s.stats().live_transfer_groups, 0);
    assert_eq!(s.stats().transfers_failed, 1);
}

/// Same flow via `RemoteCopy` issued by a third party: the requester is
/// neither source nor destination, and still gets the failure.
#[test]
fn remote_copy_source_death_fails_transfer_to_third_party() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let _a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);

    let out = s
        .handle(
            1,
            Message::RemoteCopy {
                src: gid(b, "src"),
                dst: gid(c, "dst"),
                mode: CopyMode::Strict,
                req_id: 4,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 2, "state-request"), Message::StateRequest { .. }));

    let out = s.disconnect(2).into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
    assert_eq!(s.stats().live_transfer_groups, 0);
}

#[test]
fn stats_track_floor_control_and_fanout() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "x") }).into_messages();

    let event = UiEvent::new(
        ObjectPath::parse("x").unwrap(),
        EventKind::TextCommitted,
        vec![Value::Text("v".into())],
    );
    s.handle(1, Message::Event { origin: gid(a, "x"), event: event.clone(), seq: 1 })
        .into_messages();
    // A second event on the locked group is a lock-conflict rejection.
    s.handle(2, Message::Event { origin: gid(b, "x"), event, seq: 2 }).into_messages();

    let stats = s.stats();
    assert_eq!(stats.events_granted, 1);
    assert_eq!(stats.events_rejected, 1);
    assert_eq!(stats.lock_conflicts, 1);
    assert_eq!(stats.registered_instances, 2);
    assert!(stats.held_locks >= 1);
    // Couple broadcast reached both instances in one turn.
    assert!(stats.max_fanout >= 2);
    assert!(stats.messages_out >= 6);
}

// ---- failure handling & liveness (disconnect, quarantine, rejoin) --------

fn register_with_token(
    server: &mut ServerCore<Endpoint>,
    endpoint: Endpoint,
    user: u64,
) -> (InstanceId, u64) {
    let out = server
        .handle(
            endpoint,
            Message::Register {
                user: UserId(user),
                host: format!("ws{endpoint}"),
                app_name: "app".into(),
            },
        )
        .into_messages();
    let instance = match find(&out, endpoint, "welcome") {
        Message::Welcome { instance } => *instance,
        _ => unreachable!(),
    };
    let token = match find(&out, endpoint, "session-token") {
        Message::SessionToken { resume_token } => *resume_token,
        _ => unreachable!(),
    };
    (instance, token)
}

#[test]
fn late_state_reply_after_requester_death_is_harmless() {
    // Regression: a CopyFrom requester dying before the source's
    // StateReply used to leave a pull leg whose transfer group was
    // dropped, and the late reply panicked in the fan-out.
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 9,
            },
        )
        .into_messages();
    let req_id = match find(&out, 2, "state-request") {
        Message::StateRequest { req_id, .. } => *req_id,
        _ => unreachable!(),
    };

    // The requester's connection dies before b replies.
    s.disconnect(1).into_messages();
    let stats = s.stats();
    assert_eq!(stats.transfers_failed, 1);
    assert_eq!(stats.live_transfer_groups, 0);
    assert_eq!(stats.live_pending_pulls, 0);

    // The late reply finds nothing to act on — and nobody to tell.
    let snapshot = StateNode::new(WidgetKind::Form, "q");
    let out = s.handle(2, Message::StateReply { req_id, snapshot: Some(snapshot) }).into_messages();
    assert!(out.is_empty(), "late StateReply must be ignored, got {out:?}");
    assert_eq!(s.stats().live_transfer_legs, 0);
}

#[test]
fn remote_copy_requester_death_purges_orphaned_legs() {
    // Third-party variant: the requester is neither source nor
    // destination, so its death reaps the group by requester alone —
    // the group's pull leg must go with it.
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let _a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);

    let out = s
        .handle(
            1,
            Message::RemoteCopy {
                src: gid(b, "q"),
                dst: gid(c, "q"),
                mode: CopyMode::Strict,
                req_id: 5,
            },
        )
        .into_messages();
    let req_id = match find(&out, 2, "state-request") {
        Message::StateRequest { req_id, .. } => *req_id,
        _ => unreachable!(),
    };

    s.disconnect(1).into_messages();
    let stats = s.stats();
    assert_eq!(stats.transfers_failed, 1);
    assert_eq!(stats.live_transfer_groups, 0);
    assert_eq!(stats.live_pending_pulls, 0, "orphaned pull leg must be purged");

    let snapshot = StateNode::new(WidgetKind::Form, "q");
    let out = s.handle(2, Message::StateReply { req_id, snapshot: Some(snapshot) }).into_messages();
    assert!(out.is_empty(), "no ApplyState may be fanned out for a dead requester, got {out:?}");
    assert_eq!(s.stats().live_transfer_legs, 0);
}

#[test]
fn ping_is_answered_with_pong() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    register(&mut s, 1, 1);
    let out = s.handle(1, Message::Ping { nonce: 42 }).into_messages();
    match find(&out, 1, "pong") {
        Message::Pong { nonce } => assert_eq!(*nonce, 42),
        _ => unreachable!(),
    }
    assert_eq!(s.stats().pings, 1);
}

#[test]
fn disconnect_with_grace_quarantines_and_rejoin_resumes() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let (a, token_a) = register_with_token(&mut s, 1, 1);
    let (b, _) = register_with_token(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();

    // The connection drops silently: quarantined, not deregistered.
    let out = s.disconnect(1).into_messages();
    assert_eq!(count_kind(&out, "couple-update"), 0, "couples must survive quarantine");
    let stats = s.stats();
    assert_eq!(stats.quarantines, 1);
    assert_eq!(stats.quarantined_instances, 1);
    assert_eq!(stats.registered_instances, 2);
    assert!(s.couples().is_coupled(&gid(a, "x")));

    // Rejoining from a fresh endpoint reclaims the same instance id and
    // rotates the resume token.
    let out = s.handle(7, Message::Rejoin { resume_token: token_a }).into_messages();
    match find(&out, 7, "welcome") {
        Message::Welcome { instance } => assert_eq!(*instance, a),
        _ => unreachable!(),
    }
    let fresh = match find(&out, 7, "session-token") {
        Message::SessionToken { resume_token } => *resume_token,
        _ => unreachable!(),
    };
    assert_ne!(fresh, token_a, "resume tokens are single-use");
    let stats = s.stats();
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.quarantined_instances, 0);
    assert!(s.couples().is_coupled(&gid(a, "x")));

    // The spent token no longer resolves.
    let out = s.handle(8, Message::Rejoin { resume_token: token_a }).into_messages();
    assert!(matches!(find(&out, 8, "error-reply"), Message::ErrorReply { .. }));
    assert_eq!(s.stats().rejoins_rejected, 1);
}

#[test]
fn grace_expiry_deregisters_and_decouples() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let (a, token_a) = register_with_token(&mut s, 1, 1);
    let (b, _) = register_with_token(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();

    s.disconnect(1).into_messages();
    // Mid-grace: nothing happens yet.
    let out = s.tick(500).into_messages();
    assert!(out.is_empty());
    assert_eq!(s.stats().quarantined_instances, 1);

    // Past the deadline: full deregistration with auto-decoupling.
    let out = s.tick(1_600).into_messages();
    match find(&out, 2, "couple-update") {
        Message::CoupleUpdate { group } => assert_eq!(group.len(), 1),
        _ => unreachable!(),
    }
    let stats = s.stats();
    assert_eq!(stats.quarantine_expiries, 1);
    assert_eq!(stats.quarantined_instances, 0);
    assert_eq!(stats.registered_instances, 1);

    // The token died with the quarantine.
    let out = s.handle(7, Message::Rejoin { resume_token: token_a }).into_messages();
    assert!(matches!(find(&out, 7, "error-reply"), Message::ErrorReply { .. }));
}

#[test]
fn copies_touching_a_quarantined_instance_fail_fast() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 60_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let (a, _) = register_with_token(&mut s, 1, 1);
    let (b, _) = register_with_token(&mut s, 2, 2);
    s.disconnect(2).into_messages();

    // Pulling from a quarantined source fails immediately instead of
    // waiting out the grace period.
    let out = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "q"),
                dst: gid(a, "q"),
                mode: CopyMode::Strict,
                req_id: 4,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));

    // Pushing onto a quarantined destination likewise.
    let out = s
        .handle(
            1,
            Message::CopyTo {
                src: gid(a, "l"),
                dst: gid(b, "l"),
                snapshot: StateNode::new(WidgetKind::Label, "l"),
                mode: CopyMode::Strict,
                req_id: 5,
            },
        )
        .into_messages();
    assert!(matches!(find(&out, 1, "error-reply"), Message::ErrorReply { .. }));
    let stats = s.stats();
    assert_eq!(stats.live_transfer_groups, 0);
    assert_eq!(stats.live_pending_pulls, 0);
    assert_eq!(stats.live_transfer_legs, 0);
}

#[test]
fn events_skip_quarantined_group_members() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 60_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let (a, _) = register_with_token(&mut s, 1, 1);
    let (b, _) = register_with_token(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "x") }).into_messages();
    s.disconnect(2).into_messages();

    let event = UiEvent::new(
        ObjectPath::parse("x").unwrap(),
        EventKind::TextCommitted,
        vec![Value::Text("v".into())],
    );
    let out = s.handle(1, Message::Event { origin: gid(a, "x"), event, seq: 1 }).into_messages();
    assert_eq!(count_kind(&out, "execute-event"), 0, "no ExecuteEvent to a dead connection");
    let exec_id = match find(&out, 1, "event-granted") {
        Message::EventGranted { exec_id, .. } => *exec_id,
        _ => unreachable!(),
    };
    // The origin's own done finishes the execution — it does not hang on
    // the quarantined member.
    let out = s.handle(1, Message::ExecuteDone { exec_id }).into_messages();
    assert_eq!(count_kind(&out, "group-unlocked"), 1);
    assert_eq!(s.stats().live_execs, 0);
}

#[test]
fn idle_timeout_quarantines_silent_instances() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 10_000,
        idle_timeout_us: 1_000,
        max_quarantined: 0,
    });
    let (_a, _) = register_with_token(&mut s, 1, 1);
    let (b, token_b) = register_with_token(&mut s, 2, 2);

    // Advance the clock, then only a is heard from.
    s.tick(500).into_messages();
    s.handle(1, Message::Ping { nonce: 1 }).into_messages();

    // At t=1400, b (last seen at 0) is past the idle cutoff; a (seen at
    // 500) is not.
    s.tick(1_400).into_messages();
    let stats = s.stats();
    assert_eq!(stats.quarantines, 1);
    assert_eq!(stats.quarantined_instances, 1);

    // The silent client reconnects and resumes.
    let out = s.handle(9, Message::Rejoin { resume_token: token_b }).into_messages();
    match find(&out, 9, "welcome") {
        Message::Welcome { instance } => assert_eq!(*instance, b),
        _ => unreachable!(),
    }
    assert_eq!(s.stats().resumes, 1);
}

#[test]
fn teardown_leaves_no_inflight_work() {
    // Deterministic counterpart of the `no_leaks_after_all_instances_deregister`
    // property: a mixed workload with partially answered requests is torn
    // down by disconnecting everyone; nothing in-flight may survive.
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "x") }).into_messages();
    s.handle(3, Message::Couple { src: gid(c, "x"), dst: gid(b, "x") }).into_messages();

    // An event whose ExecuteDones never all arrive.
    let event = UiEvent::new(
        ObjectPath::parse("x").unwrap(),
        EventKind::TextCommitted,
        vec![Value::Text("v".into())],
    );
    let out = s.handle(1, Message::Event { origin: gid(a, "x"), event, seq: 1 }).into_messages();
    let exec_id = match find(&out, 1, "event-granted") {
        Message::EventGranted { exec_id, .. } => *exec_id,
        _ => unreachable!(),
    };
    s.handle(1, Message::ExecuteDone { exec_id }).into_messages();

    // A pull that is never answered, a push that is half-answered, and a
    // third-party copy left dangling.
    s.handle(
        1,
        Message::CopyFrom { src: gid(b, "x"), dst: gid(a, "x"), mode: CopyMode::Strict, req_id: 1 },
    )
    .into_messages();
    let out = s
        .handle(
            1,
            Message::CopyTo {
                src: gid(a, "x"),
                dst: gid(b, "x"),
                snapshot: StateNode::new(WidgetKind::Label, "x"),
                mode: CopyMode::Strict,
                req_id: 2,
            },
        )
        .into_messages();
    if let Message::ApplyState { req_id, .. } = find(&out, 2, "apply-state") {
        s.handle(2, Message::StateApplied { req_id: *req_id, overwritten: None, error: None })
            .into_messages();
    }
    s.handle(
        3,
        Message::RemoteCopy {
            src: gid(a, "x"),
            dst: gid(b, "x"),
            mode: CopyMode::Strict,
            req_id: 3,
        },
    )
    .into_messages();

    for endpoint in [1, 2, 3] {
        s.disconnect(endpoint).into_messages();
    }
    let stats = s.stats();
    assert_eq!(stats.registered_instances, 0);
    assert_eq!(stats.live_transfer_groups, 0);
    assert_eq!(stats.live_transfer_legs, 0);
    assert_eq!(stats.live_pending_pulls, 0);
    assert_eq!(stats.live_execs, 0);
    assert_eq!(stats.held_locks, 0);
}

/// Acceptance for the encode-once delivery path: a broadcast to N
/// peers produces exactly one shared frame (one encode) listing all N
/// endpoints, and the stats counters account the saved bytes.
#[test]
fn broadcast_fan_out_encodes_exactly_once() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    for e in 1..=5 {
        register(&mut s, e, e);
    }
    let before = s.stats();
    let out = s.handle(
        1,
        Message::CoSendCommand {
            to: Target::Broadcast,
            command: "go".into(),
            payload: vec![0xAB; 512],
        },
    );
    let shared: Vec<_> = out
        .items()
        .iter()
        .filter_map(|d| match d {
            cosoft_server::Delivery::Shared(endpoints, frame) => Some((endpoints, frame)),
            cosoft_server::Delivery::Unicast(..) => None,
        })
        .collect();
    assert_eq!(shared.len(), 1, "broadcast must produce one shared frame, got {out:?}");
    let (endpoints, frame) = &shared[0];
    assert_eq!(endpoints.len(), 4, "all peers of the sender share the frame");
    assert_eq!(frame.kind_name(), Some("command-delivery"));

    let after = s.stats();
    assert_eq!(after.shared_frames_encoded - before.shared_frames_encoded, 1);
    assert_eq!(after.shared_deliveries - before.shared_deliveries, 4);
    let encoded = after.shared_bytes_encoded - before.shared_bytes_encoded;
    let delivered = after.shared_bytes_delivered - before.shared_bytes_delivered;
    assert_eq!(encoded, frame.len() as u64);
    assert_eq!(delivered, 4 * encoded, "four deliveries out of one encode");
}

/// The event fan-out serializes the (potentially large) event body once
/// and splices it into every per-member `ExecuteEvent` frame.
#[test]
fn event_fan_out_encodes_payload_once() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    let c = register(&mut s, 3, 3);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "x") }).into_messages();
    s.handle(1, Message::Couple { src: gid(b, "x"), dst: gid(c, "x") }).into_messages();

    let before = s.stats();
    let event = UiEvent::simple(ObjectPath::parse("x").unwrap(), EventKind::Activate);
    let out = s.handle(1, Message::Event { origin: gid(a, "x"), event, seq: 1 }).into_messages();
    let legs = count_kind(&out, "execute-event");
    assert!(legs >= 2, "expected a multi-member fan-out, got {out:?}");
    let after = s.stats();
    assert_eq!(after.payload_encodes - before.payload_encodes, 1);
    assert_eq!(after.payload_reuses - before.payload_reuses, legs as u64 - 1);
}

/// A rewinding wall clock (NTP step, suspend/resume, a misbehaving
/// caller) is clamped and counted, and must not re-arm or shorten grace
/// periods measured against the pre-rewind clock.
#[test]
fn backwards_tick_is_clamped_and_counted() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    // With liveness on, Register yields Welcome + SessionToken.
    let out = s
        .handle(
            1,
            Message::Register { user: UserId(1), host: "ws1".into(), app_name: "app".into() },
        )
        .into_messages();
    let a = match find(&out, 1, "welcome") {
        Message::Welcome { instance } => *instance,
        _ => unreachable!(),
    };
    s.tick(5_000).into_messages();
    assert_eq!(s.stats().clock_regressions, 0);

    // The clock rewinds hard. The regression is counted but the virtual
    // clock holds at 5_000 — the next disconnect quarantines relative
    // to the clamped time, not the rewound one.
    s.tick(0).into_messages();
    assert_eq!(s.stats().clock_regressions, 1);
    s.disconnect(1).into_messages();

    // Had the rewind taken, the grace deadline would be 1_000 and this
    // tick would already expire the quarantine. Clamped, it is 6_000.
    s.tick(5_999).into_messages();
    assert!(s.registry().contains(a), "rewind must not shorten the grace period");
    s.tick(6_000).into_messages();
    assert!(!s.registry().contains(a), "grace still runs out on the clamped clock");
    assert_eq!(s.stats().clock_regressions, 1, "forward ticks are not regressions");
}

// ---- overload control (admission, shedding, escalation) -------------------

fn overloaded(
    grace_us: u64,
    control_budget: u32,
    bulk_budget: u32,
    strikes: u32,
) -> ServerCore<Endpoint> {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    s.set_overload(cosoft_server::OverloadConfig {
        window_us: 1_000,
        control_budget,
        bulk_budget,
        max_window_bytes: 0,
        retry_after_ms: 75,
        strikes_before_evict: strikes,
    });
    s
}

#[test]
fn bulk_is_shed_with_one_busy_while_control_and_liveness_flow() {
    let mut s = overloaded(0, 0, 1, 0);
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    // First bulk request is admitted (and fails on its merits — the
    // source object doesn't matter here, only that it was processed).
    let first = s
        .handle(
            1,
            Message::CopyFrom {
                src: gid(b, "x"),
                dst: gid(a, "y"),
                mode: CopyMode::Strict,
                req_id: 1,
            },
        )
        .into_messages();
    assert_eq!(count_kind(&first, "busy"), 0);

    // The rest of the window's bulk traffic is shed: exactly one Busy
    // carrying the configured advice, no matter how many messages flood in.
    let mut busies = 0;
    for i in 0..40 {
        let out = s
            .handle(
                1,
                Message::CopyFrom {
                    src: gid(b, "x"),
                    dst: gid(a, "y"),
                    mode: CopyMode::Strict,
                    req_id: 2 + i,
                },
            )
            .into_messages();
        for (e, m) in &out {
            if let Message::Busy { retry_after_ms } = m {
                assert_eq!(*e, 1);
                assert_eq!(*retry_after_ms, 75);
                busies += 1;
            }
        }
    }
    assert_eq!(busies, 1, "one advisory Busy per endpoint per window");
    assert_eq!(s.stats().overload_sheds_bulk, 40);
    assert_eq!(s.stats().busy_replies, 1);

    // Control and liveness classes keep flowing on their own budgets.
    let out = s.handle(1, Message::QueryInstances).into_messages();
    assert_eq!(count_kind(&out, "instance-list"), 1);
    let out = s.handle(1, Message::Ping { nonce: 9 }).into_messages();
    assert_eq!(count_kind(&out, "pong"), 1);
    assert_eq!(s.stats().overload_evictions, 0, "shedding alone never evicts");
}

#[test]
fn sustained_abuse_escalates_to_auto_decoupling_eviction() {
    // Couple first with admission off, then arm the tight budget — the
    // setup traffic must not eat the window under test.
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);
    s.handle(1, Message::Couple { src: gid(a, "x"), dst: gid(b, "y") }).into_messages();
    s.set_overload(cosoft_server::OverloadConfig {
        window_us: 1_000,
        control_budget: 1,
        bulk_budget: 0,
        max_window_bytes: 0,
        retry_after_ms: 75,
        strikes_before_evict: 2,
    });

    // Three consecutive windows of flooding; the flooder receives Busy
    // (in each window) strictly before the eviction fires.
    let mut saw_busy_before_eviction = false;
    let mut evicted_out: Vec<(Endpoint, Message)> = Vec::new();
    'outer: for window in 0u64..3 {
        s.tick(window * 1_000).into_messages();
        for _ in 0..5 {
            let out = s.handle(1, Message::QueryInstances).into_messages();
            if count_kind(&out, "busy") > 0 && s.stats().overload_evictions == 0 {
                saw_busy_before_eviction = true;
            }
            if s.stats().overload_evictions > 0 {
                evicted_out = out;
                break 'outer;
            }
        }
    }
    assert!(saw_busy_before_eviction, "flooder must be told Busy before being evicted");
    assert_eq!(s.stats().overload_evictions, 1);
    assert!(!s.registry().contains(a), "zero grace: eviction deregisters the flooder");
    assert!(s.registry().contains(b));
    // §3.2 auto-decoupling: the surviving peer learns the new grouping.
    assert!(count_kind(&evicted_out, "couple-update") >= 1, "{evicted_out:?}");
    assert!(s.stats().overload_sheds_control >= 3);

    // A fresh connection on the same endpoint starts with clean budgets.
    s.tick(10_000).into_messages();
    let c = register(&mut s, 1, 3);
    assert!(s.registry().contains(c));
}

#[test]
fn eviction_respects_grace_and_quarantines() {
    let mut s = overloaded(1_000_000, 1, 0, 1);
    let (a, _) = register_with_token(&mut s, 1, 1);
    for window in 0u64..2 {
        s.tick(window * 1_000).into_messages();
        for _ in 0..4 {
            s.handle(1, Message::QueryInstances).into_messages();
        }
    }
    assert_eq!(s.stats().overload_evictions, 1);
    assert!(s.registry().contains(a), "grace > 0: evicted instance is quarantined, not dropped");
    assert_eq!(s.stats().quarantined_instances, 1);
}

#[test]
fn register_floods_are_shed_before_registration() {
    let mut s = overloaded(0, 1, 0, 0);
    let reg = || Message::Register { user: UserId(7), host: "ws".into(), app_name: "app".into() };
    let out = s.handle(1, reg()).into_messages();
    assert_eq!(count_kind(&out, "welcome"), 1);
    for _ in 0..10 {
        let out = s.handle(1, reg()).into_messages();
        assert_eq!(count_kind(&out, "welcome"), 0, "flooded Register must not register");
    }
    assert_eq!(s.registry().all().len(), 1);
    assert!(s.stats().overload_sheds_control >= 10);
}

#[test]
fn busy_inbound_is_server_to_client_only() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    register(&mut s, 1, 1);
    let out = s.handle(1, Message::Busy { retry_after_ms: 5 }).into_messages();
    assert_eq!(count_kind(&out, "error-reply"), 1);
    assert_eq!(s.stats().unexpected_messages, 1);
}

#[test]
fn quarantine_store_cap_evicts_oldest_deadline_first() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000_000,
        idle_timeout_us: 0,
        max_quarantined: 2,
    });
    let (a, _) = register_with_token(&mut s, 1, 1);
    let (b, _) = register_with_token(&mut s, 2, 2);
    let (c, _) = register_with_token(&mut s, 3, 3);
    // Stagger the deadlines: a's quarantine is oldest.
    s.disconnect(1).into_messages();
    s.tick(10).into_messages();
    s.disconnect(2).into_messages();
    s.tick(20).into_messages();
    assert_eq!(s.stats().quarantined_instances, 2);

    // The third quarantine exceeds the cap: a (oldest deadline) is
    // expired early through the full deregistration path.
    s.disconnect(3).into_messages();
    assert_eq!(s.stats().quarantined_instances, 2);
    assert_eq!(s.stats().quarantine_store_evictions, 1);
    assert!(!s.registry().contains(a), "oldest quarantine evicted");
    assert!(s.registry().contains(b));
    assert!(s.registry().contains(c));

    // Evicted early means its token is dead: rejoin is refused.
    // (b and c remain resumable.)
    s.tick(30).into_messages();
    assert_eq!(s.stats().quarantine_expiries, 0, "cap evictions are counted separately");
}

#[test]
fn quarantine_cap_zero_is_unbounded() {
    let mut s: ServerCore<Endpoint> = ServerCore::with_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    for e in 1..=20u64 {
        register_with_token(&mut s, e, e);
        s.disconnect(e).into_messages();
    }
    assert_eq!(s.stats().quarantined_instances, 20);
    assert_eq!(s.stats().quarantine_store_evictions, 0);
}

// ---- delta state sync (attribute-level transfers) --------------------------

/// A deep widget tree whose single varying leaf attribute makes for a tiny
/// delta against a large snapshot.
fn deep_tree(depth: usize, text: &str) -> StateNode {
    let mut node = StateNode::new(WidgetKind::Label, "leaf")
        .with_attr(AttrName::Text, Value::Text(text.into()));
    for level in (0..depth).rev() {
        node = StateNode::new(WidgetKind::Form, &format!("lvl{level}"))
            .with_attr(AttrName::Title, Value::Text(format!("panel {level}")))
            .with_child(node);
    }
    node
}

/// Pushes `snapshot` from endpoint 1 to `dst` and returns the outgoing
/// batch addressed to the destination.
fn push_to(
    s: &mut ServerCore<Endpoint>,
    dst: GlobalObjectId,
    src: GlobalObjectId,
    snapshot: StateNode,
    req_id: u64,
) -> Vec<(Endpoint, Message)> {
    s.handle(1, Message::CopyTo { src, dst, snapshot, mode: CopyMode::Strict, req_id })
        .into_messages()
}

/// First contact travels as a full snapshot; once the destination has
/// acknowledged a base, subsequent transfers ride attribute-level deltas
/// that reconstruct the transmitted state exactly.
#[test]
fn second_transfer_to_acknowledged_destination_is_a_delta() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    let v1 = deep_tree(6, "v1");
    let v2 = deep_tree(6, "v2");

    // First push: no base cached, full snapshot.
    let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), v1.clone(), 1);
    let req_id = match find(&out, 2, "apply-state") {
        Message::ApplyState { req_id, .. } => *req_id,
        _ => unreachable!(),
    };
    assert_eq!(s.stats().delta_legs_sent, 0);
    s.handle(2, Message::StateApplied { req_id, overwritten: None, error: None }).into_messages();

    // Second push: the acknowledged v1 base turns it into a delta.
    let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), v2.clone(), 2);
    let req_id = match find(&out, 2, "apply-delta") {
        Message::ApplyDelta { req_id, base_version, new_version, delta: d, .. } => {
            assert_eq!(*base_version, delta::state_version(&v1));
            assert_eq!(*new_version, delta::state_version(&v2));
            assert_eq!(delta::apply(&v1, d).unwrap(), v2);
            *req_id
        }
        _ => unreachable!(),
    };
    let stats = s.stats();
    assert_eq!(stats.delta_legs_sent, 1);
    assert_eq!(stats.delta_fallbacks, 0);
    let out = s
        .handle(2, Message::StateApplied { req_id, overwritten: Some(v1), error: None })
        .into_messages();
    match find(&out, 1, "state-applied") {
        Message::StateApplied { req_id, .. } => assert_eq!(*req_id, 2),
        _ => unreachable!(),
    }
}

/// A destination that rejects a delta (diverged or missing base) gets the
/// same state re-sent as a full snapshot, the transfer group still
/// completes, and the fallback re-primes the base so the next transfer is
/// a delta again.
#[test]
fn rejected_delta_falls_back_to_full_snapshot_and_converges() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    let v1 = deep_tree(4, "v1");
    let v2 = deep_tree(4, "v2");
    let v3 = deep_tree(4, "v3");

    let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), v1, 1);
    let req_id = match find(&out, 2, "apply-state") {
        Message::ApplyState { req_id, .. } => *req_id,
        _ => unreachable!(),
    };
    s.handle(2, Message::StateApplied { req_id, overwritten: None, error: None }).into_messages();

    // The client lost its base (say, it re-created the widget). It must
    // reject the delta; the server resends the full snapshot under a
    // fresh request id without failing the transfer group.
    let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), v2.clone(), 2);
    let req_id = match find(&out, 2, "apply-delta") {
        Message::ApplyDelta { req_id, .. } => *req_id,
        _ => unreachable!(),
    };
    let out = s
        .handle(
            2,
            Message::StateApplied {
                req_id,
                overwritten: None,
                error: Some("delta base version mismatch: no base cached".into()),
            },
        )
        .into_messages();
    assert_eq!(s.stats().delta_fallbacks, 1);
    let fallback_req = match find(&out, 2, "apply-state") {
        Message::ApplyState { req_id: r, snapshot, .. } => {
            assert_eq!(snapshot, &v2, "fallback must carry the full target state");
            assert_ne!(*r, req_id, "fallback is a fresh request");
            *r
        }
        _ => unreachable!(),
    };
    // The requester has not been answered yet: the group is still open.
    assert!(!out.iter().any(|(e, m)| *e == 1 && m.kind_name() == "state-applied"));

    let out = s
        .handle(2, Message::StateApplied { req_id: fallback_req, overwritten: None, error: None })
        .into_messages();
    match find(&out, 1, "state-applied") {
        Message::StateApplied { req_id, error, .. } => {
            assert_eq!(*req_id, 2);
            assert!(error.is_none(), "group completes cleanly after the fallback");
        }
        _ => unreachable!(),
    }

    // The fallback re-primed the base: the next push is a delta again.
    let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), v3.clone(), 3);
    match find(&out, 2, "apply-delta") {
        Message::ApplyDelta { base_version, delta: d, .. } => {
            assert_eq!(*base_version, delta::state_version(&v2));
            assert_eq!(delta::apply(&v2, d).unwrap(), v3);
        }
        _ => unreachable!(),
    }
}

/// Deregistration and object destruction purge history chains and delta
/// bases for the departed objects, and the purges are counted. Without
/// this, the history and sync-base maps grow without bound under
/// register/leave churn.
#[test]
fn teardown_purges_history_and_sync_bases() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    for (req, text) in [(1, "v1"), (2, "v2"), (3, "v3")] {
        let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), deep_tree(3, text), req);
        let req_id = out
            .iter()
            .find_map(|(e, m)| match m {
                Message::ApplyState { req_id, .. } | Message::ApplyDelta { req_id, .. }
                    if *e == 2 =>
                {
                    Some(*req_id)
                }
                _ => None,
            })
            .unwrap();
        s.handle(
            2,
            Message::StateApplied { req_id, overwritten: Some(deep_tree(3, "prev")), error: None },
        )
        .into_messages();
    }
    assert!(s.history().undo_depth(&gid(b, "f")) >= 2);
    assert_eq!(s.stats().history_purges, 0);

    s.handle(2, Message::Deregister).into_messages();
    let stats = s.stats();
    assert_eq!(stats.history_purges, 1, "one object's chains purged with its instance");
    assert_eq!(s.history().undo_depth(&gid(b, "f")), 0);
}

/// Satellite for the explorer/model-checker: forking the server with
/// `clone()` must share history storage via `Arc`, not deep-copy every
/// recorded snapshot — forking cost must not scale with history depth.
#[test]
fn forked_core_shares_history_storage() {
    let mut s: ServerCore<Endpoint> = ServerCore::new();
    let a = register(&mut s, 1, 1);
    let b = register(&mut s, 2, 2);

    for req in 1..=32u64 {
        let out = push_to(&mut s, gid(b, "f"), gid(a, "f"), deep_tree(6, &format!("v{req}")), req);
        let req_id = out
            .iter()
            .find_map(|(e, m)| match m {
                Message::ApplyState { req_id, .. } | Message::ApplyDelta { req_id, .. }
                    if *e == 2 =>
                {
                    Some(*req_id)
                }
                _ => None,
            })
            .unwrap();
        s.handle(
            2,
            Message::StateApplied {
                req_id,
                overwritten: Some(deep_tree(6, &format!("v{}", req - 1))),
                error: None,
            },
        )
        .into_messages();
    }
    assert!(s.history().undo_depth(&gid(b, "f")) >= 16);

    let fork = s.clone();
    assert!(
        fork.history().storage_is_shared_with(s.history()),
        "cloned history must share its chain storage entry-for-entry"
    );
}
