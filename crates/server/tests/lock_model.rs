//! Bounded-exhaustive schedule exploration of the floor-control lock
//! algorithm (paper §4), driven by the `cosoft-audit` explorer.
//!
//! The model wraps the real [`ServerCore`] — the same state machine the
//! simulation and the TCP transport run — with N simulated clients
//! issuing `Event` submissions, delivering their owed `ExecuteDone`
//! acknowledgements, and disconnecting, over *overlapping* CO(o)
//! groups. The explorer enumerates every interleaving of those client
//! actions up to the configured bounds and runs the server-wide
//! invariant pack ([`ServerCore::check_invariants`]) after every single
//! step; at every quiescent state it additionally asserts the terminal
//! conditions: all locks drained (no lost unlocks), every submitted
//! event settled exactly once as granted or rejected (no doubled
//! grants), and the registry holding exactly the surviving clients.
//!
//! A violation reproduces deterministically: the explorer reports the
//! exact action schedule that led to it.

use cosoft_audit::{explore, ExploreLimits, Model};
use cosoft_server::ServerCore;
use cosoft_wire::{EventKind, GlobalObjectId, InstanceId, Message, ObjectPath, UiEvent, UserId};

type Endpoint = u32;

fn gid(i: InstanceId, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(p).unwrap())
}

/// One schedulable client step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Client submits its next pending event on one of its objects.
    Submit { client: usize },
    /// Client delivers its oldest owed `ExecuteDone`.
    Done { client: usize },
    /// Client's connection drops mid-protocol.
    Disconnect { client: usize },
}

#[derive(Debug, Clone)]
struct ClientSim {
    endpoint: Endpoint,
    instance: InstanceId,
    alive: bool,
    /// Objects this client will submit events on, in order.
    pending: Vec<GlobalObjectId>,
    /// Exec ids whose `ExecuteDone` this client still owes the server.
    owed: Vec<u64>,
    /// Submitted events not yet granted or rejected.
    in_flight: u32,
    granted: u32,
    rejected: u32,
}

/// The explorable system: the real server core plus its clients.
#[derive(Debug, Clone)]
struct LockModel {
    server: ServerCore<Endpoint>,
    clients: Vec<ClientSim>,
    /// Whether `Disconnect` actions are enabled (at most one per client
    /// per schedule; disconnecting is absorbing).
    with_disconnects: bool,
    disconnects_left: u32,
}

impl LockModel {
    /// Three clients; objects `a` and `b` per client; two *overlapping*
    /// couple groups sharing client 1:
    /// `CO(a) = {c0.a, c1.a}` and `CO(b) = {c1.b, c2.b}`.
    /// Each client submits one event per object it owns in a group.
    fn new(with_disconnects: bool, events_per_client: usize) -> LockModel {
        let mut server: ServerCore<Endpoint> = ServerCore::new();
        let mut clients = Vec::new();
        for e in 0..3u32 {
            let out = server.handle_flat(
                e,
                Message::Register {
                    user: UserId(u64::from(e) + 1),
                    host: format!("ws{e}"),
                    app_name: "model".into(),
                },
            );
            let instance = match &out[0].1 {
                Message::Welcome { instance } => *instance,
                other => panic!("expected Welcome, got {other:?}"),
            };
            clients.push(ClientSim {
                endpoint: e,
                instance,
                alive: true,
                pending: Vec::new(),
                owed: Vec::new(),
                in_flight: 0,
                granted: 0,
                rejected: 0,
            });
        }
        let (i0, i1, i2) = (clients[0].instance, clients[1].instance, clients[2].instance);
        // Two overlapping groups, both passing through client 1.
        server.handle_flat(0, Message::Couple { src: gid(i0, "a"), dst: gid(i1, "a") });
        server.handle_flat(1, Message::Couple { src: gid(i1, "b"), dst: gid(i2, "b") });
        // Event plans: client 0 fights over group a, client 2 over
        // group b, client 1 over both (the overlap).
        let plans: [Vec<GlobalObjectId>; 3] =
            [vec![gid(i0, "a")], vec![gid(i1, "a"), gid(i1, "b")], vec![gid(i2, "b")]];
        for (client, plan) in clients.iter_mut().zip(plans) {
            for _ in 0..events_per_client {
                client.pending.extend(plan.iter().cloned());
            }
        }
        LockModel { server, clients, with_disconnects, disconnects_left: 1 }
    }

    /// Routes a server batch to the simulated clients.
    fn deliver(&mut self, out: Vec<(Endpoint, Message)>) {
        for (endpoint, msg) in out {
            let Some(client) = self.clients.iter_mut().find(|c| c.endpoint == endpoint && c.alive)
            else {
                continue;
            };
            match msg {
                // The origin runs its own callback too: it owes a done.
                Message::EventGranted { exec_id, .. } => {
                    client.in_flight -= 1;
                    client.granted += 1;
                    client.owed.push(exec_id);
                }
                Message::EventRejected { .. } => {
                    client.in_flight -= 1;
                    client.rejected += 1;
                }
                Message::ExecuteEvent { exec_id, .. } => client.owed.push(exec_id),
                // Bookkeeping-only messages for this model.
                Message::GroupUnlocked { .. }
                | Message::CoupleUpdate { .. }
                | Message::SessionToken { .. }
                | Message::Welcome { .. } => {}
                other => panic!("model client got unexpected {other:?}"),
            }
        }
    }
}

impl Model for LockModel {
    type Action = Action;

    fn actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            if !c.alive {
                continue;
            }
            if !c.pending.is_empty() {
                actions.push(Action::Submit { client: i });
            }
            if !c.owed.is_empty() {
                actions.push(Action::Done { client: i });
            }
            if self.with_disconnects && self.disconnects_left > 0 {
                actions.push(Action::Disconnect { client: i });
            }
        }
        actions
    }

    fn apply(&mut self, action: &Action) {
        match *action {
            Action::Submit { client } => {
                let c = &mut self.clients[client];
                let origin = c.pending.remove(0);
                c.in_flight += 1;
                let endpoint = c.endpoint;
                let event = UiEvent::simple(origin.path.clone(), EventKind::Activate);
                let out = self.server.handle_flat(
                    endpoint,
                    Message::Event {
                        origin,
                        event,
                        seq: u64::from(self.clients[client].in_flight),
                    },
                );
                self.deliver(out);
            }
            Action::Done { client } => {
                let c = &mut self.clients[client];
                let exec_id = c.owed.remove(0);
                let endpoint = c.endpoint;
                let out = self.server.handle_flat(endpoint, Message::ExecuteDone { exec_id });
                self.deliver(out);
            }
            Action::Disconnect { client } => {
                let c = &mut self.clients[client];
                c.alive = false;
                c.pending.clear();
                c.owed.clear();
                self.disconnects_left -= 1;
                let endpoint = c.endpoint;
                let out = self.server.disconnect_flat(endpoint);
                self.deliver(out);
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        self.server.check_invariants()
    }

    fn at_quiescence(&self) -> Result<(), String> {
        // No client has anything left to do: every lock must have been
        // released (unlock happened, exactly once — a doubled unlock
        // trips `check_invariants` earlier, a lost one is caught here).
        if !self.server.locks().is_empty() {
            return Err(format!("quiescent with {} lock(s) still held", self.server.locks().len()));
        }
        for (i, c) in self.clients.iter().enumerate() {
            if c.alive && c.in_flight != 0 {
                return Err(format!(
                    "client {i} quiescent with {} unsettled event(s)",
                    c.in_flight
                ));
            }
            if c.alive && c.granted + c.rejected + c.in_flight == 0 && !c.pending.is_empty() {
                return Err(format!("client {i} never ran"));
            }
        }
        // The registry holds exactly the surviving clients.
        let alive = self.clients.iter().filter(|c| c.alive).count();
        if self.server.registry().len() != alive {
            return Err(format!(
                "registry holds {} instance(s), {} client(s) alive",
                self.server.registry().len(),
                alive
            ));
        }
        let stats = self.server.stats();
        let granted: u32 = self.clients.iter().map(|c| c.granted).sum();
        // Grants observed by surviving clients never exceed the
        // server's count (a dead client's grant may be in flight).
        if u64::from(granted) > stats.events_granted {
            return Err(format!(
                "clients saw {granted} grants, server granted {}",
                stats.events_granted
            ));
        }
        Ok(())
    }
}

/// The headline run: three clients, overlapping groups, every
/// interleaving of submissions and acknowledgements — at least 10 000
/// distinct schedules, the server invariant pack checked after every
/// step of each.
#[test]
fn exhaustive_schedules_without_disconnects() {
    let model = LockModel::new(false, 2);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 60_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
    assert!(stats.steps > stats.schedules, "schedules must be multi-step");
}

/// Disconnects interleaved with live floor-control rounds: a client
/// dying while it owes `ExecuteDone`s, while it has events in flight,
/// or while it holds the overlap of both groups must never strand a
/// lock or corrupt the table.
#[test]
fn schedules_with_mid_protocol_disconnects() {
    let model = LockModel::new(true, 1);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 30_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
}

/// The explorer's counterexample machinery works against the real
/// server: planting a fault (a client acknowledging an exec id it does
/// not owe — a protocol violation the server must *tolerate*) does not
/// corrupt the lock table, only gets ignored.
#[test]
fn spurious_done_never_corrupts() {
    let mut model = LockModel::new(false, 1);
    // Submit one event, then fire a done for a bogus exec id.
    model.apply(&Action::Submit { client: 0 });
    let out = model.server.handle_flat(0, Message::ExecuteDone { exec_id: 999 });
    assert!(out.is_empty(), "spurious done must be ignored, got {out:?}");
    model.server.check_invariants().unwrap();
    // The real exec still completes normally afterwards.
    while !model.clients[0].owed.is_empty() || !model.clients[1].owed.is_empty() {
        for client in 0..2 {
            if !model.clients[client].owed.is_empty() {
                model.apply(&Action::Done { client });
            }
        }
    }
    assert!(model.server.locks().is_empty());
}
