//! Bounded-exhaustive schedule exploration of the floor-control lock
//! algorithm (paper §4), driven by the `cosoft-audit` explorer.
//!
//! The model wraps the real [`ServerCore`] — the same state machine the
//! simulation and the TCP transport run — with N simulated clients
//! issuing `Event` submissions, delivering their owed `ExecuteDone`
//! acknowledgements, and disconnecting, over *overlapping* CO(o)
//! groups. The explorer enumerates every interleaving of those client
//! actions up to the configured bounds and runs the server-wide
//! invariant pack ([`ServerCore::check_invariants`]) after every single
//! step; at every quiescent state it additionally asserts the terminal
//! conditions: all locks drained (no lost unlocks), every submitted
//! event settled exactly once as granted or rejected (no doubled
//! grants), and the registry holding exactly the surviving clients.
//!
//! A violation reproduces deterministically: the explorer reports the
//! exact action schedule that led to it.

use cosoft_audit::{explore, ExploreLimits, Model};
use cosoft_server::{LivenessConfig, ServerCore, ShardRouter};
use cosoft_wire::{EventKind, GlobalObjectId, InstanceId, Message, ObjectPath, UiEvent, UserId};

type Endpoint = u32;

fn gid(i: InstanceId, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(p).unwrap())
}

/// One schedulable client step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Client submits its next pending event on one of its objects.
    Submit { client: usize },
    /// Client delivers its oldest owed `ExecuteDone`.
    Done { client: usize },
    /// Client's connection drops mid-protocol.
    Disconnect { client: usize },
}

#[derive(Debug, Clone)]
struct ClientSim {
    endpoint: Endpoint,
    instance: InstanceId,
    alive: bool,
    /// Objects this client will submit events on, in order.
    pending: Vec<GlobalObjectId>,
    /// Exec ids whose `ExecuteDone` this client still owes the server.
    owed: Vec<u64>,
    /// Submitted events not yet granted or rejected.
    in_flight: u32,
    granted: u32,
    rejected: u32,
}

/// The explorable system: the real server core plus its clients.
#[derive(Debug, Clone)]
struct LockModel {
    server: ServerCore<Endpoint>,
    clients: Vec<ClientSim>,
    /// Whether `Disconnect` actions are enabled (at most one per client
    /// per schedule; disconnecting is absorbing).
    with_disconnects: bool,
    disconnects_left: u32,
}

impl LockModel {
    /// Three clients; objects `a` and `b` per client; two *overlapping*
    /// couple groups sharing client 1:
    /// `CO(a) = {c0.a, c1.a}` and `CO(b) = {c1.b, c2.b}`.
    /// Each client submits one event per object it owns in a group.
    fn new(with_disconnects: bool, events_per_client: usize) -> LockModel {
        let mut server: ServerCore<Endpoint> = ServerCore::new();
        let mut clients = Vec::new();
        for e in 0..3u32 {
            let out = server
                .handle(
                    e,
                    Message::Register {
                        user: UserId(u64::from(e) + 1),
                        host: format!("ws{e}"),
                        app_name: "model".into(),
                    },
                )
                .into_messages();
            let instance = match &out[0].1 {
                Message::Welcome { instance } => *instance,
                other => panic!("expected Welcome, got {other:?}"),
            };
            clients.push(ClientSim {
                endpoint: e,
                instance,
                alive: true,
                pending: Vec::new(),
                owed: Vec::new(),
                in_flight: 0,
                granted: 0,
                rejected: 0,
            });
        }
        let (i0, i1, i2) = (clients[0].instance, clients[1].instance, clients[2].instance);
        // Two overlapping groups, both passing through client 1.
        server.handle(0, Message::Couple { src: gid(i0, "a"), dst: gid(i1, "a") }).into_messages();
        server.handle(1, Message::Couple { src: gid(i1, "b"), dst: gid(i2, "b") }).into_messages();
        // Event plans: client 0 fights over group a, client 2 over
        // group b, client 1 over both (the overlap).
        let plans: [Vec<GlobalObjectId>; 3] =
            [vec![gid(i0, "a")], vec![gid(i1, "a"), gid(i1, "b")], vec![gid(i2, "b")]];
        for (client, plan) in clients.iter_mut().zip(plans) {
            for _ in 0..events_per_client {
                client.pending.extend(plan.iter().cloned());
            }
        }
        LockModel { server, clients, with_disconnects, disconnects_left: 1 }
    }

    /// Routes a server batch to the simulated clients.
    fn deliver(&mut self, out: Vec<(Endpoint, Message)>) {
        for (endpoint, msg) in out {
            let Some(client) = self.clients.iter_mut().find(|c| c.endpoint == endpoint && c.alive)
            else {
                continue;
            };
            match msg {
                // The origin runs its own callback too: it owes a done.
                Message::EventGranted { exec_id, .. } => {
                    client.in_flight -= 1;
                    client.granted += 1;
                    client.owed.push(exec_id);
                }
                Message::EventRejected { .. } => {
                    client.in_flight -= 1;
                    client.rejected += 1;
                }
                Message::ExecuteEvent { exec_id, .. } => client.owed.push(exec_id),
                // Bookkeeping-only messages for this model.
                Message::GroupUnlocked { .. }
                | Message::CoupleUpdate { .. }
                | Message::SessionToken { .. }
                | Message::Welcome { .. } => {}
                other => panic!("model client got unexpected {other:?}"),
            }
        }
    }
}

impl Model for LockModel {
    type Action = Action;

    fn actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            if !c.alive {
                continue;
            }
            if !c.pending.is_empty() {
                actions.push(Action::Submit { client: i });
            }
            if !c.owed.is_empty() {
                actions.push(Action::Done { client: i });
            }
            if self.with_disconnects && self.disconnects_left > 0 {
                actions.push(Action::Disconnect { client: i });
            }
        }
        actions
    }

    fn apply(&mut self, action: &Action) {
        match *action {
            Action::Submit { client } => {
                let c = &mut self.clients[client];
                let origin = c.pending.remove(0);
                c.in_flight += 1;
                let endpoint = c.endpoint;
                let event = UiEvent::simple(origin.path.clone(), EventKind::Activate);
                let out = self
                    .server
                    .handle(
                        endpoint,
                        Message::Event {
                            origin,
                            event,
                            seq: u64::from(self.clients[client].in_flight),
                        },
                    )
                    .into_messages();
                self.deliver(out);
            }
            Action::Done { client } => {
                let c = &mut self.clients[client];
                let exec_id = c.owed.remove(0);
                let endpoint = c.endpoint;
                let out =
                    self.server.handle(endpoint, Message::ExecuteDone { exec_id }).into_messages();
                self.deliver(out);
            }
            Action::Disconnect { client } => {
                let c = &mut self.clients[client];
                c.alive = false;
                c.pending.clear();
                c.owed.clear();
                self.disconnects_left -= 1;
                let endpoint = c.endpoint;
                let out = self.server.disconnect(endpoint).into_messages();
                self.deliver(out);
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        self.server.check_invariants()
    }

    fn at_quiescence(&self) -> Result<(), String> {
        // No client has anything left to do: every lock must have been
        // released (unlock happened, exactly once — a doubled unlock
        // trips `check_invariants` earlier, a lost one is caught here).
        if !self.server.locks().is_empty() {
            return Err(format!("quiescent with {} lock(s) still held", self.server.locks().len()));
        }
        for (i, c) in self.clients.iter().enumerate() {
            if c.alive && c.in_flight != 0 {
                return Err(format!(
                    "client {i} quiescent with {} unsettled event(s)",
                    c.in_flight
                ));
            }
            if c.alive && c.granted + c.rejected + c.in_flight == 0 && !c.pending.is_empty() {
                return Err(format!("client {i} never ran"));
            }
        }
        // The registry holds exactly the surviving clients.
        let alive = self.clients.iter().filter(|c| c.alive).count();
        if self.server.registry().len() != alive {
            return Err(format!(
                "registry holds {} instance(s), {} client(s) alive",
                self.server.registry().len(),
                alive
            ));
        }
        let stats = self.server.stats();
        let granted: u32 = self.clients.iter().map(|c| c.granted).sum();
        // Grants observed by surviving clients never exceed the
        // server's count (a dead client's grant may be in flight).
        if u64::from(granted) > stats.events_granted {
            return Err(format!(
                "clients saw {granted} grants, server granted {}",
                stats.events_granted
            ));
        }
        Ok(())
    }
}

/// The headline run: three clients, overlapping groups, every
/// interleaving of submissions and acknowledgements — at least 10 000
/// distinct schedules, the server invariant pack checked after every
/// step of each.
#[test]
fn exhaustive_schedules_without_disconnects() {
    let model = LockModel::new(false, 2);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 60_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
    assert!(stats.steps > stats.schedules, "schedules must be multi-step");
}

/// Disconnects interleaved with live floor-control rounds: a client
/// dying while it owes `ExecuteDone`s, while it has events in flight,
/// or while it holds the overlap of both groups must never strand a
/// lock or corrupt the table.
#[test]
fn schedules_with_mid_protocol_disconnects() {
    let model = LockModel::new(true, 1);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 30_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
}

// ---------------------------------------------------------------------
// Cross-shard schedules: the same floor-control traffic, now with the
// server brain split across two `ServerCore` shards behind the
// `ShardRouter`, and the explorer additionally interleaving cross-shard
// couples (merges), decouples (splits), explicit two-phase handoffs
// (freeze … mutate … migrate … release), and disconnects.
// ---------------------------------------------------------------------

/// One schedulable step against the sharded server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardAction {
    /// Client submits its next pending event (may hit a frozen
    /// endpoint and get buffered by the router).
    Submit { client: usize },
    /// Client delivers its oldest owed `ExecuteDone`.
    Done { client: usize },
    /// Client 0 couples its object to client 1's — a cross-shard merge
    /// unless an earlier action already colocated them.
    CoupleAb,
    /// Client 1 couples its second object to client 2's.
    CoupleBc,
    /// Client 0 dissolves the a-link again (component split; the
    /// router rebalances lazily, not in this model's step).
    SplitAb,
    /// Phase one of an explicit handoff: freeze client 1's component
    /// toward the opposite shard.
    Begin,
    /// Phase two: migrate whatever the component is *now* and replay
    /// the traffic buffered during the freeze.
    Complete,
    /// Client's connection drops mid-protocol.
    Disconnect { client: usize },
}

/// The explorable sharded system: a 2-shard router plus its clients.
#[derive(Debug, Clone)]
struct ShardModel {
    router: ShardRouter<Endpoint>,
    clients: Vec<ClientSim>,
    coupled_ab: bool,
    coupled_bc: bool,
    split_done: bool,
    open_handoff: Option<u64>,
    begins_left: u32,
    disconnects_left: u32,
    with_disconnects: bool,
}

impl ShardModel {
    /// Three clients round-robined over two shards (c0, c2 → shard 0;
    /// c1 → shard 1), with the same overlapping-group event plans as
    /// [`LockModel`]; the couple links are *actions* here, so the
    /// explorer interleaves group formation (= shard merges) and
    /// dissolution with the floor-control traffic itself.
    fn new(with_disconnects: bool) -> ShardModel {
        // A grace window so a disconnected client stays quarantined in
        // its shard's registry (the model never ticks, so quarantines
        // never expire and the at-quiescence census stays exact).
        let liveness =
            LivenessConfig { grace_us: 1_000_000, idle_timeout_us: 0, max_quarantined: 0 };
        let mut router: ShardRouter<Endpoint> = ShardRouter::with_liveness(2, liveness);
        let mut clients = Vec::new();
        for e in 0..3u32 {
            let out = router
                .handle(
                    e,
                    Message::Register {
                        user: UserId(u64::from(e) + 1),
                        host: format!("ws{e}"),
                        app_name: "model".into(),
                    },
                )
                .into_messages();
            let instance = out
                .iter()
                .find_map(|(_, m)| match m {
                    Message::Welcome { instance } => Some(*instance),
                    _ => None,
                })
                .expect("registration must yield Welcome");
            clients.push(ClientSim {
                endpoint: e,
                instance,
                alive: true,
                pending: Vec::new(),
                owed: Vec::new(),
                in_flight: 0,
                granted: 0,
                rejected: 0,
            });
        }
        let (i0, i1, i2) = (clients[0].instance, clients[1].instance, clients[2].instance);
        let plans: [Vec<GlobalObjectId>; 3] =
            [vec![gid(i0, "a")], vec![gid(i1, "a"), gid(i1, "b")], vec![gid(i2, "b")]];
        for (client, plan) in clients.iter_mut().zip(plans) {
            client.pending.extend(plan);
        }
        ShardModel {
            router,
            clients,
            coupled_ab: false,
            coupled_bc: false,
            split_done: false,
            open_handoff: None,
            begins_left: 1,
            disconnects_left: 1,
            with_disconnects,
        }
    }

    /// Routes a router batch to the simulated clients. Unlike the
    /// single-core model this also tolerates `ErrorReply` (a couple may
    /// legitimately race a disconnect across shards).
    fn deliver(&mut self, out: Vec<(Endpoint, Message)>) {
        for (endpoint, msg) in out {
            let Some(client) = self.clients.iter_mut().find(|c| c.endpoint == endpoint && c.alive)
            else {
                continue;
            };
            match msg {
                Message::EventGranted { exec_id, .. } => {
                    client.in_flight -= 1;
                    client.granted += 1;
                    client.owed.push(exec_id);
                }
                Message::EventRejected { .. } => {
                    client.in_flight -= 1;
                    client.rejected += 1;
                }
                Message::ExecuteEvent { exec_id, .. } => client.owed.push(exec_id),
                Message::GroupUnlocked { .. }
                | Message::CoupleUpdate { .. }
                | Message::SessionToken { .. }
                | Message::ErrorReply { .. }
                | Message::Welcome { .. } => {}
                other => panic!("shard-model client got unexpected {other:?}"),
            }
        }
    }
}

impl Model for ShardModel {
    type Action = ShardAction;

    fn actions(&self) -> Vec<ShardAction> {
        let mut actions = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            if !c.alive {
                continue;
            }
            if !c.pending.is_empty() {
                actions.push(ShardAction::Submit { client: i });
            }
            if !c.owed.is_empty() {
                actions.push(ShardAction::Done { client: i });
            }
            if self.with_disconnects && self.disconnects_left > 0 {
                actions.push(ShardAction::Disconnect { client: i });
            }
        }
        if !self.coupled_ab && self.clients[0].alive && self.clients[1].alive {
            actions.push(ShardAction::CoupleAb);
        }
        if !self.coupled_bc && self.clients[1].alive && self.clients[2].alive {
            actions.push(ShardAction::CoupleBc);
        }
        if self.coupled_ab && !self.split_done && self.clients[0].alive {
            actions.push(ShardAction::SplitAb);
        }
        match self.open_handoff {
            Some(_) => actions.push(ShardAction::Complete),
            None => {
                if self.begins_left > 0
                    && self.router.shard_of_instance(self.clients[1].instance).is_some()
                {
                    actions.push(ShardAction::Begin);
                }
            }
        }
        actions
    }

    fn apply(&mut self, action: &ShardAction) {
        match *action {
            ShardAction::Submit { client } => {
                let c = &mut self.clients[client];
                let origin = c.pending.remove(0);
                c.in_flight += 1;
                let endpoint = c.endpoint;
                let seq = u64::from(c.in_flight);
                let event = UiEvent::simple(origin.path.clone(), EventKind::Activate);
                let out = self.router.handle(endpoint, Message::Event { origin, event, seq });
                self.deliver(out.into_messages());
            }
            ShardAction::Done { client } => {
                let c = &mut self.clients[client];
                let exec_id = c.owed.remove(0);
                let endpoint = c.endpoint;
                let out = self.router.handle(endpoint, Message::ExecuteDone { exec_id });
                self.deliver(out.into_messages());
            }
            ShardAction::CoupleAb => {
                self.coupled_ab = true;
                let (src, dst) =
                    (gid(self.clients[0].instance, "a"), gid(self.clients[1].instance, "a"));
                let out = self.router.handle(0, Message::Couple { src, dst });
                self.deliver(out.into_messages());
            }
            ShardAction::CoupleBc => {
                self.coupled_bc = true;
                let (src, dst) =
                    (gid(self.clients[1].instance, "b"), gid(self.clients[2].instance, "b"));
                let out = self.router.handle(1, Message::Couple { src, dst });
                self.deliver(out.into_messages());
            }
            ShardAction::SplitAb => {
                self.split_done = true;
                let (src, dst) =
                    (gid(self.clients[0].instance, "a"), gid(self.clients[1].instance, "a"));
                let out = self.router.handle(0, Message::Decouple { src, dst });
                self.deliver(out.into_messages());
            }
            ShardAction::Begin => {
                self.begins_left -= 1;
                let seed = self.clients[1].instance;
                if let Some(here) = self.router.shard_of_instance(seed) {
                    // Freeze toward the opposite shard; a component
                    // already mid-handoff is impossible (one at a time).
                    if let Ok(id) = self.router.begin_handoff(seed, 1 - here) {
                        self.open_handoff = Some(id);
                    }
                }
            }
            ShardAction::Complete => {
                if let Some(id) = self.open_handoff.take() {
                    let out = self.router.complete_handoff(id);
                    self.deliver(out.into_messages());
                }
            }
            ShardAction::Disconnect { client } => {
                let c = &mut self.clients[client];
                c.alive = false;
                c.pending.clear();
                c.owed.clear();
                self.disconnects_left -= 1;
                let endpoint = c.endpoint;
                let out = self.router.disconnect(endpoint);
                self.deliver(out.into_messages());
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        self.router.check_invariants()
    }

    fn at_quiescence(&self) -> Result<(), String> {
        // Quiescence implies no open handoff (Complete is always
        // offered while one is), so every buffered message has been
        // replayed and every lock must be drained on every shard.
        for i in 0..self.router.shard_count() {
            if !self.router.shard(i).locks().is_empty() {
                return Err(format!(
                    "quiescent with {} lock(s) still held on shard {i}",
                    self.router.shard(i).locks().len()
                ));
            }
        }
        for (i, c) in self.clients.iter().enumerate() {
            if c.alive && c.in_flight != 0 {
                return Err(format!(
                    "client {i} quiescent with {} unsettled event(s)",
                    c.in_flight
                ));
            }
        }
        // A disconnected client stays quarantined (no ticks run in this
        // model), so the sharded registries still hold everyone.
        let registered: usize =
            (0..self.router.shard_count()).map(|i| self.router.shard(i).registry().len()).sum();
        if registered != self.clients.len() {
            return Err(format!(
                "sharded registries hold {registered} instance(s), expected {}",
                self.clients.len()
            ));
        }
        Ok(())
    }
}

/// The sharded headline run: every interleaving of cross-shard merges
/// (couples), splits (decouples), explicit freeze/migrate/release
/// handoff phases, and the floor-control traffic itself, across two
/// shards — at least 10 000 distinct schedules, with the router's
/// cross-shard invariant pack (per-core invariants, disjoint
/// registries, exact routing maps, components never spanning shards)
/// checked after every step of each.
#[test]
fn cross_shard_merge_split_schedules() {
    let model = ShardModel::new(false);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 60_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
    assert!(stats.steps > stats.schedules, "schedules must be multi-step");
}

/// Cross-shard schedules with mid-protocol disconnects: a client dying
/// while its component is frozen mid-handoff, while it owes
/// `ExecuteDone`s, or between the two phases of a merge must never
/// strand a lock, split a component across shards, or corrupt a
/// routing map.
#[test]
fn cross_shard_schedules_with_disconnects() {
    let model = ShardModel::new(true);
    let limits = ExploreLimits { max_depth: 64, max_schedules: 40_000 };
    let stats = explore(&model, limits).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.schedules >= 10_000, "expected >= 10k schedules, explored {}", stats.schedules);
}

/// The explorer's counterexample machinery works against the real
/// server: planting a fault (a client acknowledging an exec id it does
/// not owe — a protocol violation the server must *tolerate*) does not
/// corrupt the lock table, only gets ignored.
#[test]
fn spurious_done_never_corrupts() {
    let mut model = LockModel::new(false, 1);
    // Submit one event, then fire a done for a bogus exec id.
    model.apply(&Action::Submit { client: 0 });
    let out = model.server.handle(0, Message::ExecuteDone { exec_id: 999 }).into_messages();
    assert!(out.is_empty(), "spurious done must be ignored, got {out:?}");
    model.server.check_invariants().unwrap();
    // The real exec still completes normally afterwards.
    while !model.clients[0].owed.is_empty() || !model.clients[1].owed.is_empty() {
        for client in 0..2 {
            if !model.clients[client].owed.is_empty() {
                model.apply(&Action::Done { client });
            }
        }
    }
    assert!(model.server.locks().is_empty());
}
