//! Property-based tests of [`LockTable`]'s reverse index under random
//! teardown-heavy operation sequences: lock, indexed unlock, forced
//! single-object unlock (object destruction), and bulk teardown.
//!
//! Unlike `store_props.rs` (which models *grant* semantics), this suite
//! targets the index bookkeeping the server-wide invariant pack depends
//! on: after *every* operation the reverse index must describe exactly
//! the holder map (`assert_index_consistent`), and every release path
//! must agree with a naive full-scan reference model.

use std::collections::HashMap;

use proptest::prelude::*;

use cosoft_server::LockTable;
use cosoft_wire::{GlobalObjectId, InstanceId, ObjectPath};

fn gid(i: u8) -> GlobalObjectId {
    GlobalObjectId::new(
        InstanceId(u64::from(i % 4)),
        ObjectPath::parse(&format!("o{}", i / 4)).expect("valid"),
    )
}

#[derive(Debug, Clone)]
enum Op {
    /// `try_lock_group` over a small object group.
    Lock(Vec<u8>, u64),
    /// Indexed release of one exec's locks.
    Unlock(u64),
    /// Forced single-object release (object destroyed mid-execution).
    ForceUnlock(u8),
    /// Teardown: release every exec in some order.
    TeardownAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (prop::collection::vec(0u8..16, 1..5), 1u64..6).prop_map(|(g, e)| Op::Lock(g, e)),
        3 => (1u64..6).prop_map(Op::Unlock),
        2 => (0u8..16).prop_map(Op::ForceUnlock),
        1 => Just(Op::TeardownAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After every operation the reverse index equals the holder map,
    /// and every release path returns exactly what a naive scan of the
    /// holder map predicts.
    #[test]
    fn index_survives_random_teardown_sequences(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut table = LockTable::new();
        // Reference model: the holder map alone, no index.
        let mut model: HashMap<GlobalObjectId, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Lock(group, exec) => {
                    let group: Vec<GlobalObjectId> = group.into_iter().map(gid).collect();
                    let conflict = group
                        .iter()
                        .find(|o| model.get(o).is_some_and(|&h| h != exec))
                        .cloned();
                    match table.try_lock_group(&group, exec) {
                        Ok(()) => {
                            prop_assert!(conflict.is_none());
                            for o in group {
                                model.insert(o, exec);
                            }
                        }
                        Err(o) => {
                            prop_assert_eq!(Some(o), conflict);
                        }
                    }
                }
                Op::Unlock(exec) => {
                    let mut expected: Vec<GlobalObjectId> = model
                        .iter()
                        .filter(|(_, &h)| h == exec)
                        .map(|(o, _)| o.clone())
                        .collect();
                    expected.sort();
                    let mut released = table.unlock_exec(exec);
                    released.sort();
                    prop_assert_eq!(released, expected);
                    model.retain(|_, &mut h| h != exec);
                }
                Op::ForceUnlock(i) => {
                    let o = gid(i);
                    prop_assert_eq!(table.force_unlock(&o), model.remove(&o));
                }
                Op::TeardownAll => {
                    let mut execs: Vec<u64> = model.values().copied().collect();
                    execs.sort_unstable();
                    execs.dedup();
                    for exec in execs {
                        table.unlock_exec(exec);
                        table.assert_index_consistent();
                    }
                    model.clear();
                }
            }
            table.assert_index_consistent();
            table.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// `held_locks` always enumerates exactly the reference relation.
    #[test]
    fn held_locks_enumerates_the_relation(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut table = LockTable::new();
        let mut model: HashMap<GlobalObjectId, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Lock(group, exec) => {
                    let group: Vec<GlobalObjectId> = group.into_iter().map(gid).collect();
                    if table.try_lock_group(&group, exec).is_ok() {
                        for o in group {
                            model.insert(o, exec);
                        }
                    }
                }
                Op::Unlock(exec) => {
                    table.unlock_exec(exec);
                    model.retain(|_, &mut h| h != exec);
                }
                Op::ForceUnlock(i) => {
                    let o = gid(i);
                    table.force_unlock(&o);
                    model.remove(&o);
                }
                Op::TeardownAll => {
                    for exec in 0..8u64 {
                        table.unlock_exec(exec);
                    }
                    model.clear();
                }
            }
            let mut seen: Vec<(GlobalObjectId, u64)> =
                table.held_locks().map(|(o, e)| (o.clone(), e)).collect();
            seen.sort();
            let mut expected: Vec<(GlobalObjectId, u64)> =
                model.iter().map(|(o, &e)| (o.clone(), e)).collect();
            expected.sort();
            prop_assert_eq!(seen, expected);
        }
    }
}
