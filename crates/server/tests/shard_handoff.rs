//! Failure modes of the two-phase cross-shard component handoff:
//! the requester dying mid-merge, both components mutating during the
//! freeze window, and idempotent re-merges. These drive the router's
//! `begin_handoff`/`complete_handoff` phases separately — exactly what
//! the message-driven path runs back to back — so every test holds the
//! freeze open while something inconvenient happens.

use cosoft_server::{LivenessConfig, ShardRouter};
use cosoft_wire::{EventKind, GlobalObjectId, InstanceId, Message, ObjectPath, UiEvent, UserId};

type Endpoint = u32;

fn gid(i: InstanceId, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(p).unwrap())
}

/// Registers `n` clients on a fresh 2-shard router (round-robin: even
/// endpoints on shard 0, odd on shard 1) and returns their instances.
fn registered(n: u32) -> (ShardRouter<Endpoint>, Vec<InstanceId>) {
    registered_on(ShardRouter::new(2), n)
}

fn registered_on(
    mut router: ShardRouter<Endpoint>,
    n: u32,
) -> (ShardRouter<Endpoint>, Vec<InstanceId>) {
    let mut instances = Vec::new();
    for e in 0..n {
        let out = router
            .handle(
                e,
                Message::Register {
                    user: UserId(u64::from(e) + 1),
                    host: format!("ws{e}"),
                    app_name: "handoff".into(),
                },
            )
            .into_messages();
        let welcome = out.iter().find_map(|(_, m)| match m {
            Message::Welcome { instance } => Some(*instance),
            _ => None,
        });
        instances.push(welcome.expect("registration yields Welcome"));
        router.check_invariants().unwrap();
    }
    (router, instances)
}

/// A cross-shard `Couple` runs the merge transparently: afterwards both
/// instances live on one shard, the registries stay disjoint, and the
/// sender gets its normal `CoupleUpdate` — no client-visible shard
/// seams.
#[test]
fn cross_shard_couple_merges_components() {
    let (mut router, inst) = registered(2);
    assert_ne!(
        router.shard_of_instance(inst[0]),
        router.shard_of_instance(inst[1]),
        "round-robin must have split the two instances"
    );
    let out = router
        .handle(0, Message::Couple { src: gid(inst[0], "a"), dst: gid(inst[1], "a") })
        .into_messages();
    assert!(
        out.iter().any(|(_, m)| matches!(m, Message::CoupleUpdate { .. })),
        "couple must fan out CoupleUpdate, got {out:?}"
    );
    assert!(
        !out.iter().any(|(_, m)| matches!(m, Message::ErrorReply { .. })),
        "merge must be invisible, got {out:?}"
    );
    assert_eq!(router.shard_of_instance(inst[0]), router.shard_of_instance(inst[1]));
    assert_eq!(router.router_stats().cross_shard_merges, 1);
    assert_eq!(router.router_stats().handoffs_completed, 1);
    assert!(router.router_stats().instances_migrated >= 1);
    router.check_invariants().unwrap();
}

/// The requester dies mid-merge: its component is frozen by phase one,
/// the disconnect lands during the freeze (buffered), and phase two
/// must first migrate the component and then replay the disconnect on
/// the *new* home shard — quarantining the instance there, not losing
/// the disconnect or stranding a half-moved component.
#[test]
fn requester_dies_mid_merge() {
    // A grace window so the replayed disconnect quarantines instead of
    // deregistering outright (default grace is 0).
    let liveness = LivenessConfig { grace_us: 1_000_000, idle_timeout_us: 0, max_quarantined: 0 };
    let (mut router, inst) = registered_on(ShardRouter::with_liveness(2, liveness), 2);
    // Pre-couple on one shard so the component being frozen holds both
    // the requester and its peer.
    router
        .handle(0, Message::Couple { src: gid(inst[0], "a"), dst: gid(inst[1], "a") })
        .into_messages();
    let home = router.shard_of_instance(inst[0]).unwrap();
    let away = 1 - home;

    let handoff = router.begin_handoff(inst[0], away).expect("freeze the merged component");
    // The requester's connection drops while its component is frozen.
    let out = router.disconnect(0).into_messages();
    assert!(out.is_empty(), "frozen disconnect must be buffered, got {out:?}");
    assert_eq!(router.router_stats().buffered_while_frozen, 1);
    // The instance is still live on the source shard: the disconnect
    // must not have leaked past the freeze.
    assert_eq!(router.shard_of_instance(inst[0]), Some(home));
    router.check_invariants().unwrap();

    router.complete_handoff(handoff);
    // Both members migrated, and the buffered disconnect ran on the new
    // home: instance 0 is quarantined there (still registered, no
    // endpoint binding), its peer still bound.
    assert_eq!(router.shard_of_instance(inst[0]), Some(away));
    assert_eq!(router.shard_of_instance(inst[1]), Some(away));
    assert!(router.shard(away).registry().contains(inst[0]));
    assert!(!router.shard(away).registry().is_bound(inst[0]));
    assert!(router.shard(away).registry().is_bound(inst[1]));
    router.check_invariants().unwrap();
}

/// Both components mutate during the freeze: the frozen side's event
/// submission is buffered and replayed after migration (the lock round
/// completes on the new shard), while the target side's couple mutates
/// its component freely. `complete_handoff` migrates the component *as
/// it is at phase two*, not as it was at phase one.
#[test]
fn both_components_mutate_during_freeze() {
    let (mut router, inst) = registered(4);
    // inst[1] and inst[3] share shard 1; inst[0] and inst[2] shard 0.
    let source = router.shard_of_instance(inst[1]).unwrap();
    let target = 1 - source;

    let handoff = router.begin_handoff(inst[1], target).expect("freeze instance 1's component");

    // Frozen-side mutation: instance 1 submits an event mid-freeze.
    let origin = gid(inst[1], "a");
    let event = UiEvent::simple(origin.path.clone(), EventKind::Activate);
    let out = router.handle(1, Message::Event { origin, event, seq: 7 }).into_messages();
    assert!(out.is_empty(), "frozen event must be buffered, got {out:?}");

    // Target-side mutation: the two instances already there couple into
    // one component while the handoff is open.
    let out = router
        .handle(0, Message::Couple { src: gid(inst[0], "x"), dst: gid(inst[2], "x") })
        .into_messages();
    assert!(out.iter().any(|(_, m)| matches!(m, Message::CoupleUpdate { .. })));
    router.check_invariants().unwrap();

    // Phase two: migration plus replay. The buffered event's grant
    // comes back from the new home shard.
    let out = router.complete_handoff(handoff).into_messages();
    assert_eq!(router.shard_of_instance(inst[1]), Some(target));
    let exec_id = out
        .iter()
        .find_map(|(e, m)| match m {
            Message::EventGranted { exec_id, .. } if *e == 1 => Some(*exec_id),
            _ => None,
        })
        .expect("buffered event must be granted after migration");
    assert!(router.shard(target).locks().is_locked(&gid(inst[1], "a")));
    router.check_invariants().unwrap();

    // The replayed lock round resolves normally on the new shard.
    router.handle(1, Message::ExecuteDone { exec_id }).into_messages();
    assert!(router.shard(target).locks().is_empty());
    router.check_invariants().unwrap();
}

/// Re-merging an already-merged component is an idempotent no-op: the
/// second `Couple` finds everything colocated (no second handoff), and
/// explicitly freezing toward the component's own shard is rejected
/// without touching any state.
#[test]
fn re_merge_is_idempotent() {
    let (mut router, inst) = registered(2);
    router
        .handle(0, Message::Couple { src: gid(inst[0], "a"), dst: gid(inst[1], "a") })
        .into_messages();
    let merged_stats = router.router_stats();
    assert_eq!(merged_stats.handoffs_completed, 1);
    let home = router.shard_of_instance(inst[0]).unwrap();

    // Same couple again: already colocated, no cross-shard machinery.
    router
        .handle(0, Message::Couple { src: gid(inst[0], "a"), dst: gid(inst[1], "a") })
        .into_messages();
    assert_eq!(router.router_stats().handoffs_started, merged_stats.handoffs_started);
    assert_eq!(router.router_stats().handoffs_completed, merged_stats.handoffs_completed);

    // An explicit handoff toward the current home is refused outright.
    assert!(router.begin_handoff(inst[0], home).is_err());
    // Completing a stale handoff id is a silent no-op.
    let out = router.complete_handoff(9_999).into_messages();
    assert!(out.is_empty());
    assert_eq!(router.shard_of_instance(inst[0]), Some(home));
    router.check_invariants().unwrap();
}

/// The component's seed can vanish mid-freeze (quarantine expiry
/// deregisters it between the phases): phase two must notice and skip
/// the migration instead of extracting a ghost.
#[test]
fn seed_vanishing_mid_freeze_skips_migration() {
    let liveness = LivenessConfig { grace_us: 1_000, idle_timeout_us: 0, max_quarantined: 0 };
    let mut router: ShardRouter<Endpoint> = ShardRouter::with_liveness(2, liveness);
    let out = router
        .handle(
            0,
            Message::Register { user: UserId(1), host: "ws0".into(), app_name: "handoff".into() },
        )
        .into_messages();
    let instance = out
        .iter()
        .find_map(|(_, m)| match m {
            Message::Welcome { instance } => Some(*instance),
            _ => None,
        })
        .unwrap();
    let source = router.shard_of_instance(instance).unwrap();

    // Quarantine first (unbinds the endpoint), then freeze: the handoff
    // has no endpoint to buffer, only the registry slice to move.
    router.disconnect(0).into_messages();
    let handoff = router.begin_handoff(instance, 1 - source).expect("freeze quarantined seed");
    // The grace period expires while the handoff is open.
    router.tick(2_000).into_messages();
    assert_eq!(router.shard_of_instance(instance), None, "quarantine expiry deregisters");

    let before = router.router_stats().handoffs_completed;
    let out = router.complete_handoff(handoff).into_messages();
    assert!(out.is_empty());
    assert_eq!(router.router_stats().handoffs_completed, before, "nothing left to migrate");
    router.check_invariants().unwrap();
}
