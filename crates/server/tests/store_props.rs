//! Property-based tests of the server's data structures against simple
//! reference models: the lock table never double-grants; the history
//! store behaves like a pair of stacks; the couple directory's closure
//! matches a brute-force reachability computation.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use cosoft_server::{CoupleDirectory, HistoryStore, LockTable};
use cosoft_wire::{AttrName, GlobalObjectId, InstanceId, ObjectPath, StateNode, Value, WidgetKind};

fn gid(i: u8) -> GlobalObjectId {
    GlobalObjectId::new(
        InstanceId(u64::from(i % 4)),
        ObjectPath::parse(&format!("o{}", i / 4)).expect("valid"),
    )
}

#[derive(Debug, Clone)]
enum LockOp {
    Lock(Vec<u8>, u64),
    Unlock(u64),
}

fn arb_lock_op() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (prop::collection::vec(0u8..16, 1..5), 1u64..5).prop_map(|(g, e)| LockOp::Lock(g, e)),
        (1u64..5).prop_map(LockOp::Unlock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lock table agrees with a reference `HashMap<object, exec>`
    /// model under random lock/unlock schedules, and never grants a group
    /// containing an object held by a different exec.
    #[test]
    fn lock_table_matches_reference_model(ops in prop::collection::vec(arb_lock_op(), 1..40)) {
        let mut table = LockTable::new();
        let mut model: HashMap<GlobalObjectId, u64> = HashMap::new();
        for op in ops {
            match op {
                LockOp::Lock(group, exec) => {
                    let objs: Vec<GlobalObjectId> = group.iter().map(|&i| gid(i)).collect();
                    let model_conflict =
                        objs.iter().any(|o| model.get(o).map(|&e| e != exec).unwrap_or(false));
                    match table.try_lock_group(&objs, exec) {
                        Ok(()) => {
                            prop_assert!(!model_conflict, "table granted over a held lock");
                            for o in objs {
                                model.insert(o, exec);
                            }
                        }
                        Err(conflicting) => {
                            prop_assert!(model_conflict, "table refused a free group");
                            prop_assert!(
                                model.get(&conflicting).map(|&e| e != exec).unwrap_or(false),
                                "reported conflict object is not actually conflicting"
                            );
                        }
                    }
                }
                LockOp::Unlock(exec) => {
                    let mut released = table.unlock_exec(exec);
                    released.sort();
                    let mut expected: Vec<GlobalObjectId> = model
                        .iter()
                        .filter(|(_, &e)| e == exec)
                        .map(|(o, _)| o.clone())
                        .collect();
                    expected.sort();
                    prop_assert_eq!(released, expected);
                    model.retain(|_, &mut e| e != exec);
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// The couple directory's `group_of` equals brute-force undirected
    /// reachability over the surviving links.
    #[test]
    fn closure_matches_brute_force(
        links in prop::collection::vec((0u8..12, 0u8..12), 0..25),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut dir = CoupleDirectory::new();
        let mut live: Vec<(GlobalObjectId, GlobalObjectId)> = Vec::new();
        for (a, b) in &links {
            if dir.couple(gid(*a), gid(*b)) {
                live.push((gid(*a), gid(*b)));
            }
        }
        for idx in removals {
            if live.is_empty() {
                break;
            }
            let (a, b) = live.remove(idx.index(live.len()));
            prop_assert!(dir.decouple(&a, &b));
        }
        // Brute-force reachability.
        let mut nodes: HashSet<GlobalObjectId> = HashSet::new();
        for (a, b) in &live {
            nodes.insert(a.clone());
            nodes.insert(b.clone());
        }
        for probe in nodes {
            let mut reach: HashSet<GlobalObjectId> = HashSet::new();
            let mut stack = vec![probe.clone()];
            while let Some(cur) = stack.pop() {
                if !reach.insert(cur.clone()) {
                    continue;
                }
                for (a, b) in &live {
                    if *a == cur && !reach.contains(b) {
                        stack.push(b.clone());
                    }
                    if *b == cur && !reach.contains(a) {
                        stack.push(a.clone());
                    }
                }
            }
            let mut expected: Vec<GlobalObjectId> = reach.into_iter().collect();
            expected.sort();
            prop_assert_eq!(dir.group_of(&probe), expected);
        }
    }

    /// The history store behaves like a pair of reference stacks under
    /// random overwrite/undo/redo schedules.
    #[test]
    fn history_matches_stack_model(ops in prop::collection::vec(0u8..3, 1..40)) {
        let object = gid(1);
        let state = |i: usize| {
            StateNode::new(WidgetKind::Label, "l")
                .with_attr(AttrName::Text, Value::Text(format!("v{i}")))
        };
        let mut store = HistoryStore::new();
        let mut undo_model: Vec<StateNode> = Vec::new();
        let mut redo_model: Vec<StateNode> = Vec::new();
        let mut counter = 0usize;
        // `current` is the hypothetical live state being displaced.
        let mut current = state(usize::MAX);
        for op in ops {
            match op {
                0 => {
                    // Fresh overwrite: current goes to undo, redo clears.
                    counter += 1;
                    let newer = state(counter);
                    store.record_overwrite(object.clone(), current.clone());
                    undo_model.push(current.clone());
                    redo_model.clear();
                    current = newer;
                }
                1 => {
                    // Undo if possible.
                    let popped = store.pop_undo(&object);
                    prop_assert_eq!(popped.clone(), undo_model.pop());
                    if let Some(restored) = popped {
                        store.record_undone(object.clone(), current.clone());
                        redo_model.push(current.clone());
                        current = restored;
                    }
                }
                _ => {
                    // Redo if possible.
                    let popped = store.pop_redo(&object);
                    prop_assert_eq!(popped.clone(), redo_model.pop());
                    if let Some(reapplied) = popped {
                        store.record_redone(object.clone(), current.clone());
                        undo_model.push(current.clone());
                        current = reapplied;
                    }
                }
            }
            prop_assert_eq!(store.undo_depth(&object), undo_model.len());
            prop_assert_eq!(store.redo_depth(&object), redo_model.len());
        }
    }
}

// ---- whole-core teardown invariant ---------------------------------------

use cosoft_server::ServerCore;
use cosoft_wire::{CopyMode, EventKind, Message, UiEvent, UserId};

#[derive(Debug, Clone)]
enum CoreOp {
    Couple(u8, u8),
    Event(u8),
    CopyFrom(u8, u8),
    CopyTo(u8, u8),
    RemoteCopy(u8, u8, u8),
    Disconnect(u8),
    Reconnect(u8),
    /// Answer up to N queued server→client messages.
    Pump(u8),
}

fn arb_core_op() -> impl Strategy<Value = CoreOp> {
    prop_oneof![
        (0u8..4, 0u8..4).prop_map(|(a, b)| CoreOp::Couple(a, b)),
        (0u8..4).prop_map(CoreOp::Event),
        (0u8..4, 0u8..4).prop_map(|(a, b)| CoreOp::CopyFrom(a, b)),
        (0u8..4, 0u8..4).prop_map(|(a, b)| CoreOp::CopyTo(a, b)),
        (0u8..4, 0u8..4, 0u8..4).prop_map(|(a, b, c)| CoreOp::RemoteCopy(a, b, c)),
        (0u8..4).prop_map(CoreOp::Disconnect),
        (0u8..4).prop_map(CoreOp::Reconnect),
        (1u8..6).prop_map(CoreOp::Pump),
    ]
}

fn obj(i: InstanceId, name: &str) -> GlobalObjectId {
    GlobalObjectId::new(i, ObjectPath::parse(name).expect("valid"))
}

fn snap() -> StateNode {
    StateNode::new(WidgetKind::Label, "x").with_attr(AttrName::Text, Value::Text("s".into()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every instance deregisters, no in-flight work survives:
    /// transfer groups, push legs, pull legs, execution groups, and
    /// locks are all empty — whatever the interleaving of transfers,
    /// events, partially answered requests, and abrupt disconnects.
    #[test]
    fn no_leaks_after_all_instances_deregister(
        ops in prop::collection::vec(arb_core_op(), 1..60),
    ) {
        let mut s: ServerCore<u64> = ServerCore::new();
        // Four client slots; each holds its current endpoint + instance
        // while connected.
        let mut slots: [Option<(u64, InstanceId)>; 4] = [None, None, None, None];
        let mut next_endpoint = 1u64;
        // Server→client traffic awaiting a (possible) client reaction.
        let mut inbox: Vec<(u64, Message)> = Vec::new();
        let mut req = 100u64;

        let register = |s: &mut ServerCore<u64>, next_endpoint: &mut u64| {
            let e = *next_endpoint;
            *next_endpoint += 1;
            let out = s.handle(e, Message::Register {
                user: UserId(7),
                host: "h".into(),
                app_name: "app".into(),
            }).into_messages();
            let instance = out
                .iter()
                .find_map(|(_, m)| match m {
                    Message::Welcome { instance } => Some(*instance),
                    _ => None,
                })
                .expect("welcome");
            (e, instance)
        };
        for slot in &mut slots {
            *slot = Some(register(&mut s, &mut next_endpoint));
        }

        for op in ops {
            match op {
                CoreOp::Couple(a, b) => {
                    let (Some((ea, ia)), Some((_, ib))) =
                        (slots[a as usize], slots[b as usize]) else { continue };
                    inbox.extend(s.handle(ea, Message::Couple {
                        src: obj(ia, "x"),
                        dst: obj(ib, "y"),
                    }).into_messages());
                }
                CoreOp::Event(a) => {
                    let Some((ea, ia)) = slots[a as usize] else { continue };
                    let event = UiEvent::new(
                        ObjectPath::parse("x").expect("valid"),
                        EventKind::TextCommitted,
                        vec![Value::Text("v".into())],
                    );
                    req += 1;
                    inbox.extend(s.handle(ea, Message::Event {
                        origin: obj(ia, "x"),
                        event,
                        seq: req,
                    }).into_messages());
                }
                CoreOp::CopyFrom(a, b) => {
                    let (Some((ea, ia)), Some((_, ib))) =
                        (slots[a as usize], slots[b as usize]) else { continue };
                    req += 1;
                    inbox.extend(s.handle(ea, Message::CopyFrom {
                        src: obj(ib, "x"),
                        dst: obj(ia, "x"),
                        mode: CopyMode::Strict,
                        req_id: req,
                    }).into_messages());
                }
                CoreOp::CopyTo(a, b) => {
                    let (Some((ea, ia)), Some((_, ib))) =
                        (slots[a as usize], slots[b as usize]) else { continue };
                    req += 1;
                    inbox.extend(s.handle(ea, Message::CopyTo {
                        src: obj(ia, "x"),
                        dst: obj(ib, "y"),
                        snapshot: snap(),
                        mode: CopyMode::Strict,
                        req_id: req,
                    }).into_messages());
                }
                CoreOp::RemoteCopy(a, b, c) => {
                    let (Some((ea, _)), Some((_, ib)), Some((_, ic))) =
                        (slots[a as usize], slots[b as usize], slots[c as usize])
                        else { continue };
                    req += 1;
                    inbox.extend(s.handle(ea, Message::RemoteCopy {
                        src: obj(ib, "x"),
                        dst: obj(ic, "y"),
                        mode: CopyMode::Strict,
                        req_id: req,
                    }).into_messages());
                }
                CoreOp::Disconnect(a) => {
                    let Some((ea, _)) = slots[a as usize].take() else { continue };
                    inbox.extend(s.disconnect(ea).into_messages());
                }
                CoreOp::Reconnect(a) => {
                    if slots[a as usize].is_none() {
                        slots[a as usize] = Some(register(&mut s, &mut next_endpoint));
                    }
                }
                CoreOp::Pump(n) => {
                    for _ in 0..n {
                        if inbox.is_empty() {
                            break;
                        }
                        let (e, msg) = inbox.remove(0);
                        if !slots.iter().flatten().any(|(se, _)| *se == e) {
                            continue; // addressed to a dead connection
                        }
                        let reply = match msg {
                            Message::StateRequest { req_id, .. } => {
                                let snapshot = if req_id % 3 == 0 { None } else { Some(snap()) };
                                Some(Message::StateReply { req_id, snapshot })
                            }
                            Message::ApplyState { req_id, .. } => Some(Message::StateApplied {
                                req_id,
                                overwritten: Some(snap()),
                                error: if req_id % 5 == 0 {
                                    Some("apply failed".into())
                                } else {
                                    None
                                },
                            }),
                            // Delta legs appear once a destination has an
                            // acknowledged base; erroring some of them
                            // exercises the full-snapshot fallback resend.
                            Message::ApplyDelta { req_id, .. } => Some(Message::StateApplied {
                                req_id,
                                overwritten: Some(snap()),
                                error: if req_id % 4 == 0 {
                                    Some("delta base version mismatch".into())
                                } else {
                                    None
                                },
                            }),
                            Message::EventGranted { exec_id, .. }
                            | Message::ExecuteEvent { exec_id, .. } => {
                                Some(Message::ExecuteDone { exec_id })
                            }
                            _ => None,
                        };
                        if let Some(reply) = reply {
                            inbox.extend(s.handle(e, reply).into_messages());
                        }
                    }
                }
            }
        }

        // Tear everything down; unanswered requests die with their
        // instances.
        for slot in &mut slots {
            if let Some((e, _)) = slot.take() {
                s.disconnect(e).into_messages();
            }
        }
        let stats = s.stats();
        prop_assert_eq!(stats.registered_instances, 0);
        prop_assert_eq!(stats.live_transfer_groups, 0);
        prop_assert_eq!(stats.live_transfer_legs, 0);
        prop_assert_eq!(stats.live_pending_pulls, 0);
        prop_assert_eq!(stats.live_execs, 0);
        prop_assert_eq!(stats.held_locks, 0);
    }
}
