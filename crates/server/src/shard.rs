//! The shard router: N [`ServerCore`]s keyed by couple-component.
//!
//! The paper's coupling relation `CO(o)` is a transitive closure, so
//! disjoint couple-components never share locks, history entries, or
//! fan-out legs — a shard boundary *between* components is invisible to
//! the protocol. [`ShardRouter`] exploits that: it owns the
//! instance→shard, endpoint→shard, and resume-token→shard maps, forwards
//! each message to the one shard hosting the sender's component, and
//! passes the shard's [`Outgoing`] batch through unchanged (the
//! encode-once `SharedFrame` fan-out stays per-shard).
//!
//! The hard part is a cross-shard `Couple`/`RemoteCouple` merging two
//! components. That runs as an explicit two-phase handoff:
//!
//! 1. **freeze** ([`ShardRouter::begin_handoff`]): the smaller
//!    component's bound endpoints are marked frozen; their traffic is
//!    buffered by the router instead of reaching any core;
//! 2. **migrate + release** ([`ShardRouter::complete_handoff`]): the
//!    component is lifted out of its source core
//!    ([`ServerCore::extract_component`]), absorbed by the target, the
//!    routes rebound, and the buffered traffic replayed against the new
//!    home.
//!
//! Message-driven merges run both phases back to back (the router is
//! sans-I/O, so nothing can interleave); the threaded runtime and the
//! schedule-exploring tests drive the phases separately to exercise
//! mutations that land mid-freeze. `Decouple`-driven component splits
//! are rebalanced lazily: one component per [`ShardRouter::tick`] moves
//! from the most- to the least-loaded shard once the spread crosses a
//! threshold.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use cosoft_wire::{InstanceId, Message, Target};

use crate::overload::OverloadConfig;
use crate::server::{LivenessConfig, Outgoing, RouteEvent, ServerCore, ServerStats};

/// Traffic buffered for a frozen endpoint during a handoff.
#[derive(Debug, Clone)]
enum Buffered<E> {
    Message(E, Message),
    Disconnect(E),
}

/// One in-flight two-phase component handoff.
#[derive(Debug, Clone)]
struct Handoff<E> {
    source: usize,
    target: usize,
    seed: InstanceId,
    frozen_endpoints: Vec<E>,
    buffered: Vec<Buffered<E>>,
}

/// Router-level counters, next to the aggregated per-core
/// [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Two-phase handoffs begun (freeze placed).
    pub handoffs_started: u64,
    /// Handoffs that completed with a migration (the component still
    /// existed at phase two).
    pub handoffs_completed: u64,
    /// Instances moved between shards, totalled over all handoffs.
    pub instances_migrated: u64,
    /// Cross-shard couple/copy/event/undo merges performed.
    pub cross_shard_merges: u64,
    /// §3.4 commands delivered across a shard boundary without a merge.
    pub cross_shard_commands: u64,
    /// Replies the router synthesized itself (merged instance lists,
    /// cross-shard coupled-set reads, unreachable-target errors).
    pub router_replies: u64,
    /// Messages and disconnects buffered because their endpoint was
    /// frozen mid-handoff.
    pub buffered_while_frozen: u64,
    /// Lazy rebalance migrations triggered by post-split imbalance.
    pub rebalances: u64,
}

/// The instances a message references beyond its sender — the ones whose
/// components must be colocated with the sender's shard before the
/// message can be handled by a single core. Empty for every message kind
/// that only touches the sender's own component (or no component at
/// all). Shared by the sans-I/O router and the threaded dispatcher in
/// `src/runtime.rs` so the two agree on which messages can merge shards.
pub fn merge_refs(msg: &Message) -> Vec<InstanceId> {
    match msg {
        Message::Couple { src, dst }
        | Message::RemoteCouple { a: src, b: dst }
        | Message::CopyFrom { src, dst, .. }
        | Message::CopyTo { src, dst, .. }
        | Message::RemoteCopy { src, dst, .. } => vec![src.instance, dst.instance],
        Message::Event { origin, .. } => vec![origin.instance],
        Message::UndoState { object } | Message::RedoState { object } => vec![object.instance],
        _ => Vec::new(),
    }
}

/// A set of [`ServerCore`] shards behind one routing facade.
///
/// `Clone` forks the entire sharded database — the schedule-exploring
/// model checker branches the router state at every decision point.
#[derive(Debug, Clone)]
pub struct ShardRouter<E> {
    shards: Vec<ServerCore<E>>,
    endpoint_shard: HashMap<E, usize>,
    instance_shard: HashMap<InstanceId, usize>,
    token_shard: HashMap<u64, usize>,
    /// Round-robin cursor for placing new registrations.
    next_shard: usize,
    /// Endpoint → the handoff currently freezing it.
    frozen: HashMap<E, u64>,
    handoffs: HashMap<u64, Handoff<E>>,
    next_handoff: u64,
    /// Registered-instance spread (max − min) that triggers a lazy
    /// rebalance migration at tick time.
    rebalance_threshold: usize,
    stats: RouterStats,
}

impl<E: Copy + Eq + Hash> ShardRouter<E> {
    /// Creates `shards` cores with interleaved id spaces (shard `i`
    /// mints ids `≡ i + 1 mod shards`) and the default liveness policy.
    pub fn new(shards: usize) -> Self {
        ShardRouter::with_liveness(shards, LivenessConfig::default())
    }

    /// Creates `shards` cores sharing an explicit liveness policy.
    pub fn with_liveness(shards: usize, liveness: LivenessConfig) -> Self {
        let n = shards.max(1);
        let cores = (0..n)
            .map(|i| {
                let mut core = ServerCore::with_shard_ids(i as u64, n as u64);
                core.set_liveness(liveness);
                core.enable_route_log();
                core
            })
            .collect();
        ShardRouter {
            shards: cores,
            endpoint_shard: HashMap::new(),
            instance_shard: HashMap::new(),
            token_shard: HashMap::new(),
            next_shard: 0,
            frozen: HashMap::new(),
            handoffs: HashMap::new(),
            next_handoff: 1,
            rebalance_threshold: 4,
            stats: RouterStats::default(),
        }
    }

    /// Applies one overload-control policy to every shard core. Budgets
    /// are per-core, so a sharded deployment gives each shard its own
    /// windows while the shed counters compose through
    /// [`ShardRouter::stats`]. Messages the router answers without
    /// forwarding (merged [`Message::QueryInstances`], cross-shard reads
    /// and command delivery) are charged against the *sender's* shard
    /// via [`ServerCore::admit`].
    pub fn set_overload(&mut self, overload: OverloadConfig) {
        for core in &mut self.shards {
            core.set_overload(overload);
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard core (tests, invariant checks).
    pub fn shard(&self, index: usize) -> &ServerCore<E> {
        // audit: infallible — indexing accessor; callers pass index < shard_count() by contract
        &self.shards[index]
    }

    /// The shard core at a routed index. Indexes stored in the routing
    /// maps are always in range: they are only ever written from live
    /// shard positions and the shard vector never shrinks.
    fn core(&self, index: usize) -> &ServerCore<E> {
        // audit: infallible — routing maps only hold indexes < shards.len() and shards never shrinks
        &self.shards[index]
    }

    /// Mutable twin of [`ShardRouter::core`], same invariant.
    fn core_mut(&mut self, index: usize) -> &mut ServerCore<E> {
        // audit: infallible — routing maps only hold indexes < shards.len() and shards never shrinks
        &mut self.shards[index]
    }

    /// The shard currently hosting `instance`, if it is registered.
    pub fn shard_of_instance(&self, instance: InstanceId) -> Option<usize> {
        self.instance_shard.get(&instance).copied()
    }

    /// Sets the registered-instance spread that triggers lazy
    /// rebalancing (default 4; the spread must also fit a component of
    /// at most half its size, so migration strictly improves balance).
    pub fn set_rebalance_threshold(&mut self, threshold: usize) {
        self.rebalance_threshold = threshold.max(2);
    }

    /// Router-level counters.
    pub fn router_stats(&self) -> RouterStats {
        self.stats
    }

    /// Aggregated core counters: sums across shards, `max_fanout` as the
    /// maximum. Router-synthesized replies are *not* included — they are
    /// counted in [`RouterStats::router_replies`].
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total
    }

    /// Forwards to one shard and keeps the routing maps exactly in sync
    /// from the core's route log.
    fn forward(&mut self, shard: usize, endpoint: E, msg: Message) -> Outgoing<E> {
        let out = self.core_mut(shard).handle(endpoint, msg);
        self.apply_route_events(shard);
        out
    }

    fn apply_route_events(&mut self, shard: usize) {
        for event in self.core_mut(shard).take_route_events() {
            match event {
                RouteEvent::Bound { instance, endpoint } => {
                    self.instance_shard.insert(instance, shard);
                    self.endpoint_shard.insert(endpoint, shard);
                }
                RouteEvent::Unbound { endpoint, .. } => {
                    self.endpoint_shard.remove(&endpoint);
                }
                RouteEvent::Deregistered { instance, endpoint } => {
                    self.instance_shard.remove(&instance);
                    if let Some(e) = endpoint {
                        self.endpoint_shard.remove(&e);
                    }
                }
                RouteEvent::TokenIssued { token, .. } => {
                    self.token_shard.insert(token, shard);
                }
                RouteEvent::TokenRetired { token } => {
                    self.token_shard.remove(&token);
                }
            }
        }
    }

    /// Routes one message: to the sender's shard for component-local
    /// traffic, through a component merge for cross-shard references,
    /// or answered by the router itself for multi-shard reads.
    pub fn handle(&mut self, endpoint: E, msg: Message) -> Outgoing<E> {
        if let Some(handoff_id) = self.frozen.get(&endpoint).copied() {
            self.stats.buffered_while_frozen += 1;
            if let Some(h) = self.handoffs.get_mut(&handoff_id) {
                h.buffered.push(Buffered::Message(endpoint, msg));
            }
            return Outgoing::new();
        }
        if self.shards.len() == 1 {
            return self.forward(0, endpoint, msg);
        }
        match msg {
            Message::Register { .. } => {
                let shard = match self.endpoint_shard.get(&endpoint) {
                    Some(&s) => s,
                    None => {
                        let s = self.next_shard;
                        self.next_shard = (self.next_shard + 1) % self.shards.len();
                        s
                    }
                };
                self.forward(shard, endpoint, msg)
            }
            Message::Rejoin { resume_token } => {
                // The token's issuing shard still quarantines the
                // instance; an unknown token is rejected identically by
                // any shard.
                let shard = self
                    .token_shard
                    .get(&resume_token)
                    .or_else(|| self.endpoint_shard.get(&endpoint))
                    .copied()
                    .unwrap_or(0);
                self.forward(shard, endpoint, msg)
            }
            Message::QueryInstances => self.merged_instance_list(endpoint),
            Message::ListCoupled { object } => {
                let Some(&s0) = self.endpoint_shard.get(&endpoint) else {
                    return self.forward(0, endpoint, Message::ListCoupled { object });
                };
                match self.instance_shard.get(&object.instance).copied() {
                    Some(owner) if owner != s0 => {
                        // Read-only cross-shard query: answer from the
                        // owner's directory without moving anything. No
                        // core `handle` runs, so charge admission at the
                        // sender's shard first.
                        let probe = Message::ListCoupled { object: object.clone() };
                        if let Some(shed) = self.core_mut(s0).admit(endpoint, &probe) {
                            self.apply_route_events(s0);
                            return shed;
                        }
                        self.core_mut(s0).touch(endpoint);
                        let coupled = self.core(owner).couples().coupled_with(&object);
                        let mut out = Outgoing::new();
                        out.push_unicast(endpoint, Message::CoupledSet { object, coupled });
                        self.stats.router_replies += 1;
                        out
                    }
                    _ => self.forward(s0, endpoint, Message::ListCoupled { object }),
                }
            }
            Message::CoSendCommand { to, command, payload } => {
                self.route_command(endpoint, to, command, payload)
            }
            other => {
                let refs = merge_refs(&other);
                match self.endpoint_shard.get(&endpoint).copied() {
                    None => self.forward(0, endpoint, other),
                    Some(s0) if refs.is_empty() => self.forward(s0, endpoint, other),
                    Some(s0) => self.colocate_and_forward(s0, endpoint, other, refs),
                }
            }
        }
    }

    /// Merges every referenced component (and the sender's) onto one
    /// shard — the one hosting the largest involved component, so the
    /// smaller side pays the migration — then forwards the message
    /// there.
    fn colocate_and_forward(
        &mut self,
        sender_shard: usize,
        endpoint: E,
        msg: Message,
        refs: Vec<InstanceId>,
    ) -> Outgoing<E> {
        let mut involved: Vec<(usize, InstanceId, usize)> = Vec::new();
        for r in refs {
            if involved.iter().any(|(_, seen, _)| *seen == r) {
                continue;
            }
            if let Some(&s) = self.instance_shard.get(&r) {
                if s != sender_shard {
                    involved.push((s, r, self.core(s).component_of(r).len()));
                }
            }
        }
        if involved.is_empty() {
            return self.forward(sender_shard, endpoint, msg);
        }
        self.stats.cross_shard_merges += 1;
        let sender_inst = self.core(sender_shard).registry().instance_at(endpoint);
        let sender_size =
            sender_inst.map(|i| self.core(sender_shard).component_of(i).len()).unwrap_or(0);
        let mut target = sender_shard;
        let mut best = sender_size;
        for (s, _, size) in &involved {
            if *size > best || (*size == best && *s < target) {
                target = *s;
                best = *size;
            }
        }
        let mut out = Outgoing::new();
        for (_, seed, _) in involved {
            out.extend(self.migrate(seed, target));
        }
        if target != sender_shard {
            if let Some(seed) = sender_inst {
                out.extend(self.migrate(seed, target));
            }
        }
        // The sender's endpoint now routes to the target shard (or still
        // to its own, if it won the size contest).
        let home = self.endpoint_shard.get(&endpoint).copied().unwrap_or(target);
        out.extend(self.forward(home, endpoint, msg));
        out
    }

    /// Begin + complete in one call; a failed begin (already colocated,
    /// or the component vanished) is a no-op.
    fn migrate(&mut self, seed: InstanceId, target: usize) -> Outgoing<E> {
        match self.begin_handoff(seed, target) {
            Ok(handoff) => self.complete_handoff(handoff),
            Err(_) => Outgoing::new(),
        }
    }

    fn merged_instance_list(&mut self, endpoint: E) -> Outgoing<E> {
        let Some(&s0) = self.endpoint_shard.get(&endpoint) else {
            return self.forward(0, endpoint, Message::QueryInstances);
        };
        // Router-synthesized reply: charge admission at the sender's
        // shard explicitly, since no core `handle` runs for this message.
        if let Some(shed) = self.core_mut(s0).admit(endpoint, &Message::QueryInstances) {
            self.apply_route_events(s0);
            return shed;
        }
        self.core_mut(s0).touch(endpoint);
        let mut entries: Vec<cosoft_wire::InstanceInfo> =
            self.shards.iter().flat_map(|s| s.registry().all()).collect();
        entries.sort_by_key(|i| i.instance);
        let mut out = Outgoing::new();
        out.push_unicast(endpoint, Message::InstanceList { entries });
        self.stats.router_replies += 1;
        out
    }

    fn route_command(
        &mut self,
        endpoint: E,
        to: Target,
        command: String,
        payload: Vec<u8>,
    ) -> Outgoing<E> {
        let rebuild = |to: Target, command: String, payload: Vec<u8>| Message::CoSendCommand {
            to,
            command,
            payload,
        };
        let Some(&s0) = self.endpoint_shard.get(&endpoint) else {
            return self.forward(0, endpoint, rebuild(to, command, payload));
        };
        let Some(from) = self.core(s0).registry().instance_at(endpoint) else {
            return self.forward(s0, endpoint, rebuild(to, command, payload));
        };
        match to {
            Target::Instance(i) => match self.instance_shard.get(&i).copied() {
                Some(owner) if owner != s0 => {
                    // Cross-shard delivery bypasses the sender core's
                    // `handle`: charge admission there explicitly.
                    let probe = Message::CoSendCommand {
                        to: Target::Instance(i),
                        command: command.clone(),
                        payload: payload.clone(),
                    };
                    if let Some(shed) = self.core_mut(s0).admit(endpoint, &probe) {
                        self.apply_route_events(s0);
                        return shed;
                    }
                    self.core_mut(s0).touch(endpoint);
                    self.stats.cross_shard_commands += 1;
                    match self.core_mut(owner).deliver_command(
                        from,
                        Target::Instance(i),
                        &command,
                        &payload,
                    ) {
                        Ok(out) => out,
                        Err(reason) => {
                            let mut out = Outgoing::new();
                            out.push_unicast(
                                endpoint,
                                Message::ErrorReply { context: "co-send-command".into(), reason },
                            );
                            self.stats.router_replies += 1;
                            out
                        }
                    }
                }
                _ => self.forward(s0, endpoint, rebuild(Target::Instance(i), command, payload)),
            },
            Target::Broadcast => {
                let mut out = self.forward(
                    s0,
                    endpoint,
                    rebuild(Target::Broadcast, command.clone(), payload.clone()),
                );
                for s in 0..self.shards.len() {
                    if s == s0 {
                        continue;
                    }
                    self.stats.cross_shard_commands += 1;
                    if let Ok(o) = self.core_mut(s).deliver_command(
                        from,
                        Target::Broadcast,
                        &command,
                        &payload,
                    ) {
                        out.extend(o);
                    }
                }
                out
            }
            Target::Group(object) => match self.instance_shard.get(&object.instance).copied() {
                Some(owner) if owner != s0 => {
                    let probe = Message::CoSendCommand {
                        to: Target::Group(object.clone()),
                        command: command.clone(),
                        payload: payload.clone(),
                    };
                    if let Some(shed) = self.core_mut(s0).admit(endpoint, &probe) {
                        self.apply_route_events(s0);
                        return shed;
                    }
                    self.core_mut(s0).touch(endpoint);
                    self.stats.cross_shard_commands += 1;
                    self.core_mut(owner)
                        .deliver_command(from, Target::Group(object), &command, &payload)
                        .unwrap_or_else(|_| Outgoing::new())
                }
                _ => self.forward(s0, endpoint, rebuild(Target::Group(object), command, payload)),
            },
        }
    }

    /// Routes a transport disconnect. Frozen endpoints buffer the
    /// disconnect for replay after the handoff completes.
    pub fn disconnect(&mut self, endpoint: E) -> Outgoing<E> {
        if let Some(handoff_id) = self.frozen.get(&endpoint).copied() {
            self.stats.buffered_while_frozen += 1;
            if let Some(h) = self.handoffs.get_mut(&handoff_id) {
                h.buffered.push(Buffered::Disconnect(endpoint));
            }
            return Outgoing::new();
        }
        let shard = self.endpoint_shard.get(&endpoint).copied().unwrap_or(0);
        let out = self.core_mut(shard).disconnect(endpoint);
        self.apply_route_events(shard);
        out
    }

    /// Advances every shard's virtual clock with the same timestamp,
    /// then runs at most one lazy rebalance migration if registered
    /// instances have spread past the threshold.
    pub fn tick(&mut self, now_us: u64) -> Outgoing<E> {
        let mut out = Outgoing::new();
        for shard in 0..self.shards.len() {
            out.extend(self.core_mut(shard).tick(now_us));
            self.apply_route_events(shard);
        }
        self.maybe_rebalance(&mut out);
        out
    }

    /// Phase one of a component handoff: freezes the couple-component of
    /// `seed` on its current shard. Traffic from the component's bound
    /// endpoints is buffered by the router until
    /// [`ShardRouter::complete_handoff`] replays it against the new
    /// home. Returns the handoff id.
    ///
    /// # Errors
    ///
    /// Rejects an unknown `seed`, a `target` out of range, a component
    /// already hosted by `target` (merging already-merged components is
    /// an idempotent no-op at the call site above), and a component with
    /// an endpoint already frozen by another in-flight handoff.
    pub fn begin_handoff(&mut self, seed: InstanceId, target: usize) -> Result<u64, String> {
        if target >= self.shards.len() {
            return Err(format!("no shard {target}"));
        }
        let Some(&source) = self.instance_shard.get(&seed) else {
            return Err(format!("instance {seed} is not registered on any shard"));
        };
        if source == target {
            return Err(format!("component of {seed} already lives on shard {target}"));
        }
        let members = self.core(source).component_of(seed);
        let mut frozen_endpoints = Vec::new();
        for m in &members {
            if let Some(e) = self.core(source).registry().endpoint_of(*m) {
                if self.frozen.contains_key(&e) {
                    // Roll back this handoff's marks before bailing.
                    for fe in &frozen_endpoints {
                        self.frozen.remove(fe);
                    }
                    return Err(format!("component of {seed} is already mid-handoff"));
                }
                frozen_endpoints.push(e);
            }
        }
        let id = self.next_handoff;
        self.next_handoff += 1;
        for e in &frozen_endpoints {
            self.frozen.insert(*e, id);
        }
        self.handoffs
            .insert(id, Handoff { source, target, seed, frozen_endpoints, buffered: Vec::new() });
        self.stats.handoffs_started += 1;
        Ok(id)
    }

    /// Phase two of a component handoff: migrates the (possibly mutated)
    /// component, rebinds its routes, and replays the traffic buffered
    /// during the freeze. The component membership is recomputed at this
    /// point — members coupled in or decoupled away during the freeze
    /// migrate by their membership *now*, and a component whose seed
    /// vanished mid-freeze (its requester died) is simply not migrated.
    /// Unknown handoff ids are a no-op, so completing twice is safe.
    pub fn complete_handoff(&mut self, handoff_id: u64) -> Outgoing<E> {
        let Some(h) = self.handoffs.remove(&handoff_id) else {
            return Outgoing::new();
        };
        for e in &h.frozen_endpoints {
            if self.frozen.get(e) == Some(&handoff_id) {
                self.frozen.remove(e);
            }
        }
        let mut out = Outgoing::new();
        if self.core(h.source).registry().contains(h.seed) {
            let (slice, side) = self.core_mut(h.source).extract_component(h.seed);
            out.extend(side);
            self.stats.instances_migrated += slice.len() as u64;
            for inst in slice.instances() {
                self.instance_shard.insert(inst, h.target);
            }
            for (_, e) in slice.bound_endpoints() {
                self.endpoint_shard.insert(e, h.target);
            }
            for token in slice.resume_tokens() {
                self.token_shard.insert(token, h.target);
            }
            self.core_mut(h.target).absorb_component(slice);
            self.stats.handoffs_completed += 1;
        }
        for b in h.buffered {
            match b {
                Buffered::Message(e, m) => out.extend(self.handle(e, m)),
                Buffered::Disconnect(e) => out.extend(self.disconnect(e)),
            }
        }
        out
    }

    /// Lazy split rebalancing: when the registered-instance spread
    /// between the fullest and emptiest shard reaches the threshold,
    /// move the largest component that still *improves* balance (size at
    /// most half the spread) from the former to the latter. One
    /// migration per tick; never while an explicit handoff is open.
    fn maybe_rebalance(&mut self, out: &mut Outgoing<E>) {
        if self.shards.len() < 2 || !self.handoffs.is_empty() {
            return;
        }
        let lens: Vec<usize> = self.shards.iter().map(|s| s.registry().len()).collect();
        let (mut max_i, mut max_len) = (0, 0);
        let (mut min_i, mut min_len) = (0, usize::MAX);
        for (i, &len) in lens.iter().enumerate() {
            if len > max_len {
                max_i = i;
                max_len = len;
            }
            if len < min_len {
                min_i = i;
                min_len = len;
            }
        }
        let gap = max_len.saturating_sub(min_len);
        if gap < self.rebalance_threshold {
            return;
        }
        let mut seen: HashSet<InstanceId> = HashSet::new();
        let mut best: Option<(usize, InstanceId)> = None;
        for id in self.core(max_i).registry().ids() {
            if seen.contains(&id) {
                continue;
            }
            let component = self.core(max_i).component_of(id);
            seen.extend(component.iter().copied());
            let size = component.len();
            if size <= gap / 2 && best.is_none_or(|(b, _)| size > b) {
                best = Some((size, id));
            }
        }
        if let Some((_, seed)) = best {
            out.extend(self.migrate(seed, min_i));
            self.stats.rebalances += 1;
        }
    }

    /// The cross-shard invariant pack, checked by the schedule explorer
    /// after every step of every interleaving:
    ///
    /// * every shard core's own [`ServerCore::check_invariants`];
    /// * registries are pairwise disjoint (an instance lives on exactly
    ///   one shard) and every couple link stays inside one shard's
    ///   registry — no component ever spans shards;
    /// * the instance→shard, endpoint→shard, and token→shard maps agree
    ///   exactly with the shard registries/token tables in both
    ///   directions;
    /// * every frozen endpoint belongs to an open handoff.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut all_ids: HashSet<InstanceId> = HashSet::new();
        let mut token_total = 0usize;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.check_invariants().map_err(|e| format!("shard {i}: {e}"))?;
            for id in shard.registry().ids() {
                if !all_ids.insert(id) {
                    return Err(format!("instance {id} is registered on two shards"));
                }
                if self.instance_shard.get(&id) != Some(&i) {
                    return Err(format!("instance {id} on shard {i} is not routed there"));
                }
                if let Some(e) = shard.registry().endpoint_of(id) {
                    if self.endpoint_shard.get(&e) != Some(&i) {
                        return Err(format!(
                            "bound endpoint of instance {id} is not routed to shard {i}"
                        ));
                    }
                }
            }
            for inst in shard.couples().instances() {
                if !shard.registry().contains(inst) {
                    return Err(format!(
                        "shard {i} holds couple links of instance {inst} it does not host"
                    ));
                }
            }
            token_total += shard.token_count();
        }
        for (&id, &s) in &self.instance_shard {
            if self.shards.get(s).is_none_or(|sh| !sh.registry().contains(id)) {
                return Err(format!("route for instance {id} points at shard {s} which lacks it"));
            }
        }
        for &s in self.endpoint_shard.values() {
            if s >= self.shards.len() {
                return Err(format!("endpoint routed to nonexistent shard {s}"));
            }
        }
        if self.endpoint_shard.len()
            != self
                .shards
                .iter()
                .map(|s| s.registry().ids().iter().filter(|i| s.registry().is_bound(**i)).count())
                .sum::<usize>()
        {
            return Err("endpoint routing map disagrees with the shard registries".into());
        }
        for (&token, &s) in &self.token_shard {
            if self.shards.get(s).is_none_or(|sh| !sh.owns_resume_token(token)) {
                return Err(format!(
                    "route for token {token:#x} points at shard {s} which lacks it"
                ));
            }
        }
        if token_total != self.token_shard.len() {
            return Err(format!(
                "{token_total} tokens issued across shards but {} routed",
                self.token_shard.len()
            ));
        }
        for handoff_id in self.frozen.values() {
            if !self.handoffs.contains_key(handoff_id) {
                return Err(format!("frozen endpoint references closed handoff {handoff_id}"));
            }
        }
        Ok(())
    }
}
