//! The server lock table (§2.2/§3.2): "the lock table guarantees that
//! actions occur serially within each group of coupled objects".

use std::collections::HashMap;

use cosoft_wire::GlobalObjectId;

/// Identifier of one multiple-execution round holding locks.
pub type ExecId = u64;

/// Centralized lock table over global object ids.
///
/// The paper's client-visible algorithm acquires locks incrementally and
/// rolls back on conflict; with the table centralized in the server the
/// check-then-lock over a whole group is atomic, which is observably
/// equivalent (no interleaving can occur between check and lock) and
/// avoids the rollback traffic. The rollback path the paper describes
/// survives at the protocol level as `EventRejected`.
///
/// Besides the object → holder map, the table keeps an `ExecId` →
/// objects reverse index so releasing an exec's locks is O(group size)
/// instead of a scan over every held lock in the server.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    held: HashMap<GlobalObjectId, ExecId>,
    /// Reverse index: the objects each exec holds, in lock order.
    by_exec: HashMap<ExecId, Vec<GlobalObjectId>>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to lock every object in `group` for `exec`.
    ///
    /// Atomic: either all objects become locked, or none do and the id of
    /// the first already-locked object is returned.
    ///
    /// # Errors
    ///
    /// Returns the conflicting object when any group member is already
    /// locked by a *different* exec.
    pub fn try_lock_group(
        &mut self,
        group: &[GlobalObjectId],
        exec: ExecId,
    ) -> Result<(), GlobalObjectId> {
        for o in group {
            if let Some(&holder) = self.held.get(o) {
                if holder != exec {
                    return Err(o.clone());
                }
            }
        }
        for o in group {
            // Re-locking by the same exec is idempotent; only newly
            // acquired objects enter the reverse index.
            if self.held.insert(o.clone(), exec).is_none() {
                self.by_exec.entry(exec).or_default().push(o.clone());
            }
        }
        Ok(())
    }

    /// Releases every lock held by `exec`, returning the released objects.
    /// O(number of objects the exec holds), via the reverse index.
    pub fn unlock_exec(&mut self, exec: ExecId) -> Vec<GlobalObjectId> {
        let released = self.by_exec.remove(&exec).unwrap_or_default();
        for o in &released {
            self.held.remove(o);
        }
        released
    }

    /// Releases one object's lock regardless of holder (used when an
    /// object is destroyed mid-execution).
    pub fn force_unlock(&mut self, object: &GlobalObjectId) -> Option<ExecId> {
        let exec = self.held.remove(object)?;
        if let Some(objs) = self.by_exec.get_mut(&exec) {
            objs.retain(|o| o != object);
            if objs.is_empty() {
                self.by_exec.remove(&exec);
            }
        }
        Some(exec)
    }

    /// Whether `object` is currently locked.
    pub fn is_locked(&self, object: &GlobalObjectId) -> bool {
        self.held.contains_key(object)
    }

    /// The exec currently holding `object`, if any.
    pub fn holder(&self, object: &GlobalObjectId) -> Option<ExecId> {
        self.held.get(object).copied()
    }

    /// Number of currently held locks.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Iterates over every held lock as `(object, holding exec)`.
    pub fn held_locks(&self) -> impl Iterator<Item = (&GlobalObjectId, ExecId)> + '_ {
        self.held.iter().map(|(o, e)| (o, *e))
    }

    /// Checks that the reverse index and the holder map describe the same
    /// relation, returning a description of the first divergence.
    ///
    /// This is the lock table's contribution to the server-wide invariant
    /// pack ([`crate::ServerCore::check_invariants`]); the schedule
    /// explorer and the property tests run it after every operation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the divergence between the
    /// holder map and the reverse index, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut from_index: Vec<(GlobalObjectId, ExecId)> = self
            .by_exec
            .iter()
            .flat_map(|(e, objs)| objs.iter().map(move |o| (o.clone(), *e)))
            .collect();
        let mut from_held: Vec<(GlobalObjectId, ExecId)> =
            self.held.iter().map(|(o, e)| (o.clone(), *e)).collect();
        from_index.sort();
        from_held.sort();
        if from_index != from_held {
            return Err(format!(
                "lock table reverse index diverged from the holder map: \
                 index {from_index:?} vs held {from_held:?}"
            ));
        }
        if let Some((exec, _)) = self.by_exec.iter().find(|(_, objs)| objs.is_empty()) {
            return Err(format!("reverse index retains empty entry for exec {exec}"));
        }
        Ok(())
    }

    /// Panicking wrapper around [`LockTable::check_invariants`] (test
    /// support).
    ///
    /// # Panics
    ///
    /// Panics when the reverse index diverges from the holder map.
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        if let Err(e) = self.check_invariants() {
            // audit: infallible — documented panicking test-support wrapper; production code calls check_invariants
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{InstanceId, ObjectPath};

    fn gid(i: u64, p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).unwrap())
    }

    /// Releases `exec`'s locks via the pre-index algorithm (scan every
    /// held lock); the reverse index must be observably equivalent.
    fn unlock_exec_by_scan(t: &LockTable, exec: ExecId) -> Vec<GlobalObjectId> {
        let mut released: Vec<GlobalObjectId> =
            t.held.iter().filter(|(_, &e)| e == exec).map(|(o, _)| o.clone()).collect();
        released.sort();
        released
    }

    /// Asserts that unlocking `exec` releases exactly what a full scan
    /// would have, then performs the unlock.
    fn checked_unlock(t: &mut LockTable, exec: ExecId) -> Vec<GlobalObjectId> {
        let expected = unlock_exec_by_scan(t, exec);
        let mut released = t.unlock_exec(exec);
        released.sort();
        assert_eq!(released, expected, "indexed unlock diverged from scan");
        t.assert_index_consistent();
        released
    }

    #[test]
    fn lock_then_conflict_then_unlock() {
        let mut t = LockTable::new();
        let group = vec![gid(1, "a"), gid(2, "b")];
        t.try_lock_group(&group, 1).unwrap();
        t.assert_index_consistent();
        assert!(t.is_locked(&gid(1, "a")));
        assert_eq!(t.holder(&gid(2, "b")), Some(1));

        // A second exec touching any member fails.
        let err = t.try_lock_group(&[gid(2, "b"), gid(3, "c")], 2).unwrap_err();
        assert_eq!(err, gid(2, "b"));
        // Atomicity: the non-conflicting member was NOT locked.
        assert!(!t.is_locked(&gid(3, "c")));
        t.assert_index_consistent();

        let released = checked_unlock(&mut t, 1);
        assert_eq!(released, group);
        assert!(t.is_empty());
        // Now exec 2 can proceed.
        t.try_lock_group(&[gid(2, "b"), gid(3, "c")], 2).unwrap();
        t.assert_index_consistent();
    }

    #[test]
    fn relocking_by_same_exec_is_idempotent() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a")], 7).unwrap();
        t.try_lock_group(&[gid(1, "a"), gid(1, "b")], 7).unwrap();
        t.assert_index_consistent();
        assert_eq!(t.len(), 2);
        assert_eq!(checked_unlock(&mut t, 7).len(), 2);
    }

    #[test]
    fn force_unlock_releases_single_object() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a"), gid(1, "b")], 3).unwrap();
        assert_eq!(t.force_unlock(&gid(1, "a")), Some(3));
        t.assert_index_consistent();
        assert!(!t.is_locked(&gid(1, "a")));
        assert!(t.is_locked(&gid(1, "b")));
        assert_eq!(t.force_unlock(&gid(1, "a")), None);
        // The indexed unlock of the remainder matches a scan.
        assert_eq!(checked_unlock(&mut t, 3), vec![gid(1, "b")]);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_group_locks_trivially() {
        let mut t = LockTable::new();
        t.try_lock_group(&[], 1).unwrap();
        assert!(t.is_empty());
        t.assert_index_consistent();
        assert!(t.unlock_exec(1).is_empty());
    }

    #[test]
    fn disjoint_groups_lock_concurrently() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a")], 1).unwrap();
        t.try_lock_group(&[gid(2, "a")], 2).unwrap();
        t.assert_index_consistent();
        assert_eq!(t.len(), 2);
        assert_eq!(checked_unlock(&mut t, 1), vec![gid(1, "a")]);
        assert_eq!(checked_unlock(&mut t, 2), vec![gid(2, "a")]);
    }

    #[test]
    fn unlock_of_unknown_exec_is_empty_and_leaves_index_clean() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a")], 1).unwrap();
        assert!(t.unlock_exec(99).is_empty());
        t.assert_index_consistent();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn force_unlock_whole_group_empties_index() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a"), gid(1, "b")], 5).unwrap();
        t.force_unlock(&gid(1, "a"));
        t.force_unlock(&gid(1, "b"));
        t.assert_index_consistent();
        assert!(t.is_empty());
        assert!(t.unlock_exec(5).is_empty());
    }
}
