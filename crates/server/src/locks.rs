//! The server lock table (§2.2/§3.2): "the lock table guarantees that
//! actions occur serially within each group of coupled objects".

use std::collections::HashMap;

use cosoft_wire::GlobalObjectId;

/// Identifier of one multiple-execution round holding locks.
pub type ExecId = u64;

/// Centralized lock table over global object ids.
///
/// The paper's client-visible algorithm acquires locks incrementally and
/// rolls back on conflict; with the table centralized in the server the
/// check-then-lock over a whole group is atomic, which is observably
/// equivalent (no interleaving can occur between check and lock) and
/// avoids the rollback traffic. The rollback path the paper describes
/// survives at the protocol level as `EventRejected`.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    held: HashMap<GlobalObjectId, ExecId>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to lock every object in `group` for `exec`.
    ///
    /// Atomic: either all objects become locked, or none do and the id of
    /// the first already-locked object is returned.
    ///
    /// # Errors
    ///
    /// Returns the conflicting object when any group member is already
    /// locked by a *different* exec.
    pub fn try_lock_group(
        &mut self,
        group: &[GlobalObjectId],
        exec: ExecId,
    ) -> Result<(), GlobalObjectId> {
        for o in group {
            if let Some(&holder) = self.held.get(o) {
                if holder != exec {
                    return Err(o.clone());
                }
            }
        }
        for o in group {
            self.held.insert(o.clone(), exec);
        }
        Ok(())
    }

    /// Releases every lock held by `exec`, returning the released objects.
    pub fn unlock_exec(&mut self, exec: ExecId) -> Vec<GlobalObjectId> {
        let released: Vec<GlobalObjectId> = self
            .held
            .iter()
            .filter(|(_, &e)| e == exec)
            .map(|(o, _)| o.clone())
            .collect();
        for o in &released {
            self.held.remove(o);
        }
        released
    }

    /// Releases one object's lock regardless of holder (used when an
    /// object is destroyed mid-execution).
    pub fn force_unlock(&mut self, object: &GlobalObjectId) -> Option<ExecId> {
        self.held.remove(object)
    }

    /// Whether `object` is currently locked.
    pub fn is_locked(&self, object: &GlobalObjectId) -> bool {
        self.held.contains_key(object)
    }

    /// The exec currently holding `object`, if any.
    pub fn holder(&self, object: &GlobalObjectId) -> Option<ExecId> {
        self.held.get(object).copied()
    }

    /// Number of currently held locks.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{InstanceId, ObjectPath};

    fn gid(i: u64, p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).unwrap())
    }

    #[test]
    fn lock_then_conflict_then_unlock() {
        let mut t = LockTable::new();
        let group = vec![gid(1, "a"), gid(2, "b")];
        t.try_lock_group(&group, 1).unwrap();
        assert!(t.is_locked(&gid(1, "a")));
        assert_eq!(t.holder(&gid(2, "b")), Some(1));

        // A second exec touching any member fails.
        let err = t.try_lock_group(&[gid(2, "b"), gid(3, "c")], 2).unwrap_err();
        assert_eq!(err, gid(2, "b"));
        // Atomicity: the non-conflicting member was NOT locked.
        assert!(!t.is_locked(&gid(3, "c")));

        let mut released = t.unlock_exec(1);
        released.sort();
        assert_eq!(released, group);
        assert!(t.is_empty());
        // Now exec 2 can proceed.
        t.try_lock_group(&[gid(2, "b"), gid(3, "c")], 2).unwrap();
    }

    #[test]
    fn relocking_by_same_exec_is_idempotent() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a")], 7).unwrap();
        t.try_lock_group(&[gid(1, "a"), gid(1, "b")], 7).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.unlock_exec(7).len(), 2);
    }

    #[test]
    fn force_unlock_releases_single_object() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a"), gid(1, "b")], 3).unwrap();
        assert_eq!(t.force_unlock(&gid(1, "a")), Some(3));
        assert!(!t.is_locked(&gid(1, "a")));
        assert!(t.is_locked(&gid(1, "b")));
        assert_eq!(t.force_unlock(&gid(1, "a")), None);
    }

    #[test]
    fn empty_group_locks_trivially() {
        let mut t = LockTable::new();
        t.try_lock_group(&[], 1).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn disjoint_groups_lock_concurrently() {
        let mut t = LockTable::new();
        t.try_lock_group(&[gid(1, "a")], 1).unwrap();
        t.try_lock_group(&[gid(2, "a")], 2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.unlock_exec(1), vec![gid(1, "a")]);
        assert_eq!(t.unlock_exec(2), vec![gid(2, "a")]);
    }
}
