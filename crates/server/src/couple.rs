//! The couple directory: the couple relation `C` and its transitive
//! closure `CO(o)` (§3).
//!
//! "A couple link is a directed arc from the source UI object to the
//! destination UI object ... To compute the set of objects CO(o) connected
//! to or coupled with a given object o, we use the transitive closure of
//! C." Closure traversal is undirected: coupling either endpoint adds the
//! peer's whole group ("objects already connected to O2 are added to the
//! list of targets, and objects already connected to O1 are added to the
//! source").

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use cosoft_wire::{GlobalObjectId, InstanceId};

/// The server-side couple relation.
#[derive(Debug, Clone, Default)]
pub struct CoupleDirectory {
    /// Directed links as created (kept for faithful decoupling semantics).
    links: HashSet<(GlobalObjectId, GlobalObjectId)>,
    /// Undirected adjacency for closure traversal.
    adj: HashMap<GlobalObjectId, BTreeSet<GlobalObjectId>>,
}

impl CoupleDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        CoupleDirectory::default()
    }

    /// Adds a couple link `src → dst`. Returns `false` if the link (in
    /// either direction) already existed.
    ///
    /// Self-links are ignored (an object is trivially coupled with
    /// itself).
    pub fn couple(&mut self, src: GlobalObjectId, dst: GlobalObjectId) -> bool {
        if src == dst {
            return false;
        }
        if self.links.contains(&(src.clone(), dst.clone()))
            || self.links.contains(&(dst.clone(), src.clone()))
        {
            return false;
        }
        self.links.insert((src.clone(), dst.clone()));
        self.adj.entry(src.clone()).or_default().insert(dst.clone());
        self.adj.entry(dst).or_default().insert(src);
        true
    }

    /// Removes the couple link between `src` and `dst` (either direction).
    /// Returns `false` if no such link existed.
    pub fn decouple(&mut self, src: &GlobalObjectId, dst: &GlobalObjectId) -> bool {
        let removed = self.links.remove(&(src.clone(), dst.clone()))
            || self.links.remove(&(dst.clone(), src.clone()));
        if removed {
            self.remove_adj(src, dst);
        }
        removed
    }

    fn remove_adj(&mut self, a: &GlobalObjectId, b: &GlobalObjectId) {
        if let Some(s) = self.adj.get_mut(a) {
            s.remove(b);
            if s.is_empty() {
                self.adj.remove(a);
            }
        }
        if let Some(s) = self.adj.get_mut(b) {
            s.remove(a);
            if s.is_empty() {
                self.adj.remove(b);
            }
        }
    }

    /// Computes `CO(o)`: every object transitively coupled with `o`,
    /// excluding `o` itself, in deterministic order.
    pub fn coupled_with(&self, o: &GlobalObjectId) -> Vec<GlobalObjectId> {
        let mut group = self.group_of(o);
        group.retain(|g| g != o);
        group
    }

    /// The full coupling group of `o` (including `o`), in deterministic
    /// order. An uncoupled object forms a singleton group.
    pub fn group_of(&self, o: &GlobalObjectId) -> Vec<GlobalObjectId> {
        let mut seen: BTreeSet<GlobalObjectId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(o.clone());
        queue.push_back(o.clone());
        while let Some(cur) = queue.pop_front() {
            if let Some(neighbors) = self.adj.get(&cur) {
                for n in neighbors {
                    if seen.insert(n.clone()) {
                        queue.push_back(n.clone());
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Whether `o` participates in any couple link.
    pub fn is_coupled(&self, o: &GlobalObjectId) -> bool {
        self.adj.contains_key(o)
    }

    /// Finds the coupled object enclosing `o`: `o` itself if coupled,
    /// otherwise the nearest coupled ancestor along `o`'s pathname.
    ///
    /// Events on components of a coupled complex object are routed
    /// through the enclosing object's couple links (coupling a form
    /// synchronizes its components).
    pub fn coupled_base_of(&self, o: &GlobalObjectId) -> Option<GlobalObjectId> {
        if self.is_coupled(o) {
            return Some(o.clone());
        }
        let mut path = o.path.clone();
        while let Some(parent) = path.parent() {
            let candidate = GlobalObjectId::new(o.instance, parent.clone());
            if self.is_coupled(&candidate) {
                return Some(candidate);
            }
            path = parent;
        }
        None
    }

    /// Removes every link touching `object` (applied automatically "when a
    /// UI object is destroyed", §3.2). Returns the object's former group
    /// (excluding it) so the server can notify the remaining members.
    pub fn remove_object(&mut self, object: &GlobalObjectId) -> Vec<GlobalObjectId> {
        let rest = self.coupled_with(object);
        let neighbors: Vec<GlobalObjectId> =
            self.adj.get(object).map(|s| s.iter().cloned().collect()).unwrap_or_default();
        for n in neighbors {
            self.links.remove(&(object.clone(), n.clone()));
            self.links.remove(&(n.clone(), object.clone()));
            self.remove_adj(object, &n);
        }
        rest
    }

    /// Removes every link touching any object of `instance` (applied when
    /// "an application instance terminates", §3.2). Returns the resulting
    /// groups of every surviving object that lost a neighbour — computed
    /// *after* removal, so singleton groups signal full decoupling.
    pub fn remove_instance(&mut self, instance: InstanceId) -> Vec<Vec<GlobalObjectId>> {
        let doomed: Vec<GlobalObjectId> =
            self.adj.keys().filter(|o| o.instance == instance).cloned().collect();
        let mut affected: BTreeSet<GlobalObjectId> = BTreeSet::new();
        for o in &doomed {
            if let Some(neighbors) = self.adj.get(o) {
                affected.extend(neighbors.iter().filter(|n| n.instance != instance).cloned());
            }
        }
        for o in doomed {
            self.remove_object(&o);
        }
        let mut seen: BTreeSet<GlobalObjectId> = BTreeSet::new();
        let mut groups = Vec::new();
        for s in affected {
            if seen.contains(&s) {
                continue;
            }
            let g = self.group_of(&s);
            seen.extend(g.iter().cloned());
            groups.push(g);
        }
        groups
    }

    /// The instances owning at least one object of `o`'s group (including
    /// `o`'s own instance), sorted.
    pub fn instances_in_group(&self, o: &GlobalObjectId) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self.group_of(o).iter().map(|g| g.instance).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The couple-component of `instance` at instance granularity: every
    /// instance reachable from it through couple links between any of
    /// their objects, including `instance` itself, sorted. An instance
    /// with no coupled objects forms a singleton component.
    ///
    /// This is the shard key: disjoint components share no locks, history
    /// entries, or fan-out legs, so a shard boundary between them is
    /// invisible to the protocol.
    pub fn instance_component(&self, instance: InstanceId) -> Vec<InstanceId> {
        let mut by_instance: HashMap<InstanceId, BTreeSet<InstanceId>> = HashMap::new();
        for (o, neighbors) in &self.adj {
            let entry = by_instance.entry(o.instance).or_default();
            entry.extend(neighbors.iter().map(|n| n.instance));
        }
        let mut seen: BTreeSet<InstanceId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(instance);
        queue.push_back(instance);
        while let Some(cur) = queue.pop_front() {
            if let Some(neighbors) = by_instance.get(&cur) {
                for n in neighbors {
                    if seen.insert(*n) {
                        queue.push_back(*n);
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// The set of instances owning at least one coupled object, sorted.
    pub fn instances(&self) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self.adj.keys().map(|o| o.instance).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Removes and returns every directed link whose endpoints both
    /// belong to instances in `members`, for migration to another shard.
    /// Callers pass a closed couple-component, so no link can straddle
    /// the boundary; a straddling link would indicate the set was not a
    /// component and is left in place.
    pub fn extract_instance_links(
        &mut self,
        members: &std::collections::HashSet<InstanceId>,
    ) -> Vec<(GlobalObjectId, GlobalObjectId)> {
        let doomed: Vec<(GlobalObjectId, GlobalObjectId)> = self
            .links
            .iter()
            .filter(|(s, d)| members.contains(&s.instance) && members.contains(&d.instance))
            .cloned()
            .collect();
        for (s, d) in &doomed {
            self.links.remove(&(s.clone(), d.clone()));
            self.remove_adj(s, d);
        }
        doomed
    }

    /// Re-creates links extracted from another shard's directory.
    pub fn adopt_links(&mut self, links: Vec<(GlobalObjectId, GlobalObjectId)>) {
        for (s, d) in links {
            self.couple(s, d);
        }
    }

    /// Checks that the directed link set and the undirected adjacency are
    /// two views of the same relation: every link appears as adjacency in
    /// both directions, every adjacency edge is backed by a link, no
    /// self-loops, no empty adjacency sets.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (src, dst) in &self.links {
            if src == dst {
                return Err(format!("self-link on {src}"));
            }
            let fwd = self.adj.get(src).is_some_and(|s| s.contains(dst));
            let back = self.adj.get(dst).is_some_and(|s| s.contains(src));
            if !fwd || !back {
                return Err(format!("link {src} → {dst} missing from the adjacency"));
            }
        }
        for (o, neighbors) in &self.adj {
            if neighbors.is_empty() {
                return Err(format!("empty adjacency set retained for {o}"));
            }
            for n in neighbors {
                let linked = self.links.contains(&(o.clone(), n.clone()))
                    || self.links.contains(&(n.clone(), o.clone()));
                if !linked {
                    return Err(format!("adjacency edge {o} ~ {n} not backed by any link"));
                }
            }
        }
        Ok(())
    }

    /// Whether the directory has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::ObjectPath;

    fn gid(i: u64, p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).unwrap())
    }

    #[test]
    fn couple_builds_transitive_closure() {
        let mut d = CoupleDirectory::new();
        assert!(d.couple(gid(1, "a"), gid(2, "b")));
        assert!(d.couple(gid(2, "b"), gid(3, "c")));
        // a ~ b ~ c: closure connects a and c although no direct link.
        assert_eq!(d.coupled_with(&gid(1, "a")), vec![gid(2, "b"), gid(3, "c")]);
        assert_eq!(d.coupled_with(&gid(3, "c")), vec![gid(1, "a"), gid(2, "b")]);
        assert_eq!(d.group_of(&gid(2, "b")).len(), 3);
    }

    #[test]
    fn closure_is_undirected() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        // Either endpoint sees the other.
        assert_eq!(d.coupled_with(&gid(2, "b")), vec![gid(1, "a")]);
    }

    #[test]
    fn duplicate_and_self_links_rejected() {
        let mut d = CoupleDirectory::new();
        assert!(d.couple(gid(1, "a"), gid(2, "b")));
        assert!(!d.couple(gid(1, "a"), gid(2, "b")));
        assert!(!d.couple(gid(2, "b"), gid(1, "a")), "reverse duplicate rejected");
        assert!(!d.couple(gid(1, "a"), gid(1, "a")), "self link rejected");
        assert_eq!(d.link_count(), 1);
    }

    #[test]
    fn decouple_splits_groups() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        d.couple(gid(2, "b"), gid(3, "c"));
        assert!(d.decouple(&gid(2, "b"), &gid(1, "a")), "direction-insensitive");
        assert!(d.coupled_with(&gid(1, "a")).is_empty());
        assert_eq!(d.coupled_with(&gid(3, "c")), vec![gid(2, "b")]);
        assert!(!d.decouple(&gid(1, "a"), &gid(2, "b")), "already removed");
    }

    #[test]
    fn decouple_keeps_group_when_cycle_exists() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        d.couple(gid(2, "b"), gid(3, "c"));
        d.couple(gid(3, "c"), gid(1, "a"));
        d.decouple(&gid(1, "a"), &gid(2, "b"));
        // Still connected through c.
        assert_eq!(d.group_of(&gid(1, "a")).len(), 3);
    }

    #[test]
    fn uncoupled_object_is_singleton() {
        let d = CoupleDirectory::new();
        assert!(d.coupled_with(&gid(1, "x")).is_empty());
        assert_eq!(d.group_of(&gid(1, "x")), vec![gid(1, "x")]);
        assert!(!d.is_coupled(&gid(1, "x")));
    }

    #[test]
    fn remove_object_detaches_everything() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        d.couple(gid(1, "a"), gid(3, "c"));
        let rest = d.remove_object(&gid(1, "a"));
        assert_eq!(rest, vec![gid(2, "b"), gid(3, "c")]);
        assert!(d.is_empty());
        assert!(d.coupled_with(&gid(2, "b")).is_empty());
    }

    #[test]
    fn remove_instance_decouples_all_its_objects() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        d.couple(gid(1, "x"), gid(3, "y"));
        d.couple(gid(2, "b"), gid(3, "z"));
        let affected = d.remove_instance(InstanceId(1));
        assert_eq!(affected.len(), 2);
        // b~z survives (the link not involving instance 1).
        assert_eq!(d.coupled_with(&gid(2, "b")), vec![gid(3, "z")]);
        assert!(d.coupled_with(&gid(3, "y")).is_empty());
    }

    #[test]
    fn instances_in_group_deduplicates() {
        let mut d = CoupleDirectory::new();
        d.couple(gid(1, "a"), gid(2, "b"));
        d.couple(gid(1, "c"), gid(2, "b"));
        assert_eq!(d.instances_in_group(&gid(2, "b")), vec![InstanceId(1), InstanceId(2)]);
    }

    #[test]
    fn two_objects_same_instance_can_couple() {
        // "including the case of two objects coupled within the same
        // application instance" (§3.3).
        let mut d = CoupleDirectory::new();
        assert!(d.couple(gid(1, "a"), gid(1, "b")));
        assert_eq!(d.coupled_with(&gid(1, "a")), vec![gid(1, "b")]);
        assert_eq!(d.instances_in_group(&gid(1, "a")), vec![InstanceId(1)]);
    }
}
