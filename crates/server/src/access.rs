//! Access permissions (§2.2): "three-valued tuples with user ID, UI state
//! identifier, and access right category".

use std::collections::HashMap;

use cosoft_wire::{AccessRight, GlobalObjectId, UserId};

/// The server's access-permission table.
///
/// Rights resolve most-specific-first:
///
/// 1. an explicit `(user, object)` tuple,
/// 2. an explicit `(user, ancestor-of-object)` tuple (a right on a complex
///    object covers its components),
/// 3. the table's default right (configurable; permissive `Write` out of
///    the box, matching the open classroom setting).
///
/// The owner of an object (the user of the instance the object lives in)
/// always has `Write` on it; ownership is checked by the caller, which
/// knows the registry.
#[derive(Debug, Clone)]
pub struct AccessTable {
    tuples: HashMap<(UserId, GlobalObjectId), AccessRight>,
    default: AccessRight,
}

impl Default for AccessTable {
    fn default() -> Self {
        AccessTable { tuples: HashMap::new(), default: AccessRight::Write }
    }
}

impl AccessTable {
    /// Creates a table with the permissive default (`Write`).
    pub fn new() -> Self {
        AccessTable::default()
    }

    /// Creates a table with an explicit default right.
    pub fn with_default(default: AccessRight) -> Self {
        AccessTable { tuples: HashMap::new(), default }
    }

    /// The default right applied when no tuple matches.
    pub fn default_right(&self) -> AccessRight {
        self.default
    }

    /// Inserts (or replaces) a permission tuple, returning the previous
    /// right for that exact tuple.
    pub fn set(
        &mut self,
        user: UserId,
        object: GlobalObjectId,
        right: AccessRight,
    ) -> Option<AccessRight> {
        self.tuples.insert((user, object), right)
    }

    /// Resolves the effective right of `user` on `object`.
    pub fn right_of(&self, user: UserId, object: &GlobalObjectId) -> AccessRight {
        if let Some(r) = self.tuples.get(&(user, object.clone())) {
            return *r;
        }
        // Walk ancestors: a right on a complex object covers components.
        let mut path = object.path.clone();
        while let Some(parent) = path.parent() {
            let key = (user, GlobalObjectId::new(object.instance, parent.clone()));
            if let Some(r) = self.tuples.get(&key) {
                return *r;
            }
            path = parent;
        }
        self.default
    }

    /// Whether `user` may read (copy) the state of `object`.
    pub fn may_read(&self, user: UserId, object: &GlobalObjectId) -> bool {
        self.right_of(user, object).allows_read()
    }

    /// Whether `user` may write (couple with / modify) `object`.
    pub fn may_write(&self, user: UserId, object: &GlobalObjectId) -> bool {
        self.right_of(user, object).allows_write()
    }

    /// Removes and returns every tuple granting a right on an object
    /// owned by an instance in `members`, for migration to another shard.
    /// Rights live with the object they protect: operations on an object
    /// are always evaluated on the shard hosting its component.
    pub fn extract_instances(
        &mut self,
        members: &std::collections::HashSet<cosoft_wire::InstanceId>,
    ) -> Vec<(UserId, GlobalObjectId, AccessRight)> {
        let keys: Vec<(UserId, GlobalObjectId)> =
            self.tuples.keys().filter(|(_, o)| members.contains(&o.instance)).cloned().collect();
        keys.into_iter()
            .filter_map(|k| self.tuples.remove(&k).map(|right| (k.0, k.1, right)))
            .collect()
    }

    /// Re-installs tuples extracted from another shard's table.
    pub fn adopt(&mut self, tuples: Vec<(UserId, GlobalObjectId, AccessRight)>) {
        for (user, object, right) in tuples {
            self.tuples.insert((user, object), right);
        }
    }

    /// Number of explicit tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table has no explicit tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{InstanceId, ObjectPath};

    fn gid(i: u64, p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).unwrap())
    }

    #[test]
    fn default_is_permissive() {
        let t = AccessTable::new();
        assert!(t.may_read(UserId(1), &gid(2, "a.b")));
        assert!(t.may_write(UserId(1), &gid(2, "a.b")));
    }

    #[test]
    fn explicit_tuple_overrides_default() {
        let mut t = AccessTable::new();
        t.set(UserId(1), gid(2, "a.b"), AccessRight::Denied);
        assert!(!t.may_read(UserId(1), &gid(2, "a.b")));
        assert!(t.may_read(UserId(3), &gid(2, "a.b")), "other users unaffected");
    }

    #[test]
    fn read_only_permits_copy_not_couple() {
        let mut t = AccessTable::with_default(AccessRight::Denied);
        t.set(UserId(1), gid(2, "form"), AccessRight::Read);
        assert!(t.may_read(UserId(1), &gid(2, "form")));
        assert!(!t.may_write(UserId(1), &gid(2, "form")));
    }

    #[test]
    fn rights_inherit_down_the_object_tree() {
        let mut t = AccessTable::with_default(AccessRight::Denied);
        t.set(UserId(1), gid(2, "form"), AccessRight::Write);
        assert!(t.may_write(UserId(1), &gid(2, "form.field")));
        assert!(t.may_write(UserId(1), &gid(2, "form.panel.deep")));
        assert!(!t.may_write(UserId(1), &gid(2, "other")));
        // Closer tuples win over ancestors.
        t.set(UserId(1), gid(2, "form.field"), AccessRight::Denied);
        assert!(!t.may_read(UserId(1), &gid(2, "form.field")));
        assert!(t.may_write(UserId(1), &gid(2, "form.other")));
    }

    #[test]
    fn restrictive_default() {
        let t = AccessTable::with_default(AccessRight::Denied);
        assert!(!t.may_read(UserId(1), &gid(2, "x")));
        assert_eq!(t.default_right(), AccessRight::Denied);
    }

    #[test]
    fn set_returns_previous() {
        let mut t = AccessTable::new();
        assert_eq!(t.set(UserId(1), gid(1, "a"), AccessRight::Read), None);
        assert_eq!(t.set(UserId(1), gid(1, "a"), AccessRight::Write), Some(AccessRight::Read));
        assert_eq!(t.len(), 1);
    }
}
