//! Registration records (§2.2): "application instance as well as
//! participant information such as application instance identifier, host
//! name, and user name".

use std::collections::HashMap;

use cosoft_wire::{InstanceId, InstanceInfo, UserId};

/// Registry of live application instances, generic over the transport
/// endpoint key `E` (a simulated node id or a TCP connection id).
///
/// An instance's endpoint is optional: a quarantined instance (its
/// connection dropped, its grace period still running) keeps its record
/// but is bound to no endpoint until it rejoins or the grace expires.
#[derive(Debug, Clone)]
pub struct Registry<E> {
    next: u64,
    stride: u64,
    by_instance: HashMap<InstanceId, (InstanceInfo, Option<E>)>,
    by_endpoint: HashMap<E, InstanceId>,
}

impl<E> Default for Registry<E> {
    fn default() -> Self {
        Registry { next: 1, stride: 1, by_instance: HashMap::new(), by_endpoint: HashMap::new() }
    }
}

impl<E: Copy + Eq + std::hash::Hash> Registry<E> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates an empty registry whose ids stay in the residue class of
    /// `first` modulo `stride`. Shard `i` of `n` uses `first = i + 1`,
    /// `stride = n`, so ids minted by different shards never collide.
    pub fn with_id_stride(first: u64, stride: u64) -> Self {
        Registry { next: first.max(1), stride: stride.max(1), ..Registry::default() }
    }

    /// Registers a new instance reachable at `endpoint`, assigning a fresh
    /// [`InstanceId`].
    pub fn register(
        &mut self,
        endpoint: E,
        user: UserId,
        host: &str,
        app_name: &str,
    ) -> InstanceId {
        let id = InstanceId(self.next);
        self.next += self.stride;
        let info = InstanceInfo {
            instance: id,
            user,
            host: host.to_owned(),
            app_name: app_name.to_owned(),
        };
        self.by_instance.insert(id, (info, Some(endpoint)));
        self.by_endpoint.insert(endpoint, id);
        id
    }

    /// Removes an instance's full record — registration info plus its
    /// optional endpoint binding — for migration to another shard's
    /// registry. Unlike [`Registry::deregister`], the endpoint binding is
    /// returned rather than discarded.
    pub fn extract(&mut self, id: InstanceId) -> Option<(InstanceInfo, Option<E>)> {
        let (info, endpoint) = self.by_instance.remove(&id)?;
        if let Some(endpoint) = endpoint {
            self.by_endpoint.remove(&endpoint);
        }
        Some((info, endpoint))
    }

    /// Inserts a record extracted from another shard's registry. The id
    /// counter is advanced past the adopted id in stride steps, so it
    /// stays in this registry's residue class while never re-issuing the
    /// adopted id.
    pub fn adopt(&mut self, info: InstanceInfo, endpoint: Option<E>) {
        let id = info.instance;
        while self.next <= id.0 {
            self.next += self.stride;
        }
        if let Some(e) = endpoint {
            self.by_endpoint.insert(e, id);
        }
        self.by_instance.insert(id, (info, endpoint));
    }

    /// Removes an instance, returning its record.
    pub fn deregister(&mut self, id: InstanceId) -> Option<InstanceInfo> {
        let (info, endpoint) = self.by_instance.remove(&id)?;
        if let Some(endpoint) = endpoint {
            self.by_endpoint.remove(&endpoint);
        }
        Some(info)
    }

    /// Detaches an instance from its endpoint without removing its record
    /// (quarantine). Returns the endpoint it was bound to, if any.
    pub fn unbind(&mut self, id: InstanceId) -> Option<E> {
        let endpoint = self.by_instance.get_mut(&id)?.1.take()?;
        self.by_endpoint.remove(&endpoint);
        Some(endpoint)
    }

    /// Re-attaches a quarantined instance to a new endpoint (rejoin).
    /// Returns `false` if the instance is unknown.
    pub fn rebind(&mut self, id: InstanceId, endpoint: E) -> bool {
        let Some(slot) = self.by_instance.get_mut(&id) else {
            return false;
        };
        if let Some(old) = slot.1.replace(endpoint) {
            self.by_endpoint.remove(&old);
        }
        self.by_endpoint.insert(endpoint, id);
        true
    }

    /// Whether an instance is currently bound to an endpoint (registered
    /// and not quarantined).
    pub fn is_bound(&self, id: InstanceId) -> bool {
        self.by_instance.get(&id).map(|(_, e)| e.is_some()).unwrap_or(false)
    }

    /// Resolves the instance registered at an endpoint.
    pub fn instance_at(&self, endpoint: E) -> Option<InstanceId> {
        self.by_endpoint.get(&endpoint).copied()
    }

    /// Resolves the endpoint of an instance (`None` when unknown or
    /// quarantined).
    pub fn endpoint_of(&self, id: InstanceId) -> Option<E> {
        self.by_instance.get(&id).and_then(|(_, e)| *e)
    }

    /// The registration record of an instance.
    pub fn info(&self, id: InstanceId) -> Option<&InstanceInfo> {
        self.by_instance.get(&id).map(|(i, _)| i)
    }

    /// The user who registered an instance.
    pub fn user_of(&self, id: InstanceId) -> Option<UserId> {
        self.info(id).map(|i| i.user)
    }

    /// Whether an instance is registered.
    pub fn contains(&self, id: InstanceId) -> bool {
        self.by_instance.contains_key(&id)
    }

    /// All registration records, sorted by instance id (deterministic for
    /// `InstanceList` replies).
    pub fn all(&self) -> Vec<InstanceInfo> {
        let mut v: Vec<InstanceInfo> = self.by_instance.values().map(|(i, _)| i.clone()).collect();
        v.sort_by_key(|i| i.instance);
        v
    }

    /// All registered instance ids, sorted.
    pub fn ids(&self) -> Vec<InstanceId> {
        let mut v: Vec<InstanceId> = self.by_instance.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of registered instances.
    pub fn len(&self) -> usize {
        self.by_instance.len()
    }

    /// Checks that the endpoint index and the instance records describe
    /// the same binding relation and that the id counter is ahead of every
    /// issued id (ids are never reused).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (endpoint, id) in &self.by_endpoint {
            match self.by_instance.get(id) {
                Some((_, Some(bound))) if bound == endpoint => {}
                Some((_, Some(_))) => {
                    return Err(format!("endpoint index binds {id} to a different endpoint"));
                }
                Some((_, None)) => {
                    return Err(format!("endpoint index binds quarantined instance {id}"));
                }
                None => return Err(format!("endpoint index binds unregistered instance {id}")),
            }
        }
        for (id, (info, endpoint)) in &self.by_instance {
            if info.instance != *id {
                return Err(format!("record of {id} carries mismatched id {}", info.instance));
            }
            if let Some(e) = endpoint {
                if self.by_endpoint.get(e) != Some(id) {
                    return Err(format!("bound instance {id} missing from the endpoint index"));
                }
            }
            if id.0 >= self.next {
                return Err(format!("issued id {id} not below the id counter {}", self.next));
            }
        }
        Ok(())
    }

    /// Whether no instances are registered.
    pub fn is_empty(&self) -> bool {
        self.by_instance.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_unique_ids() {
        let mut r: Registry<u64> = Registry::new();
        let a = r.register(10, UserId(1), "h1", "app");
        let b = r.register(11, UserId(2), "h2", "app");
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.instance_at(10), Some(a));
        assert_eq!(r.endpoint_of(b), Some(11));
        assert_eq!(r.user_of(a), Some(UserId(1)));
    }

    #[test]
    fn deregister_removes_both_mappings() {
        let mut r: Registry<u64> = Registry::new();
        let a = r.register(10, UserId(1), "h", "app");
        let info = r.deregister(a).unwrap();
        assert_eq!(info.instance, a);
        assert!(r.is_empty());
        assert_eq!(r.instance_at(10), None);
        assert!(r.deregister(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r: Registry<u64> = Registry::new();
        let a = r.register(10, UserId(1), "h", "app");
        r.deregister(a);
        let b = r.register(10, UserId(1), "h", "app");
        assert_ne!(a, b);
    }

    #[test]
    fn unbind_and_rebind_preserve_the_record() {
        let mut r: Registry<u64> = Registry::new();
        let a = r.register(10, UserId(1), "h", "app");
        assert!(r.is_bound(a));
        assert_eq!(r.unbind(a), Some(10));
        assert!(!r.is_bound(a));
        assert!(r.contains(a));
        assert_eq!(r.instance_at(10), None);
        assert_eq!(r.endpoint_of(a), None);
        assert!(r.unbind(a).is_none(), "second unbind is a no-op");
        assert!(r.rebind(a, 42));
        assert!(r.is_bound(a));
        assert_eq!(r.instance_at(42), Some(a));
        assert_eq!(r.endpoint_of(a), Some(42));
        assert!(!r.rebind(InstanceId(999), 50));
    }

    #[test]
    fn strided_registries_never_collide() {
        let mut a: Registry<u64> = Registry::with_id_stride(1, 2);
        let mut b: Registry<u64> = Registry::with_id_stride(2, 2);
        let mut ids = Vec::new();
        for e in 0..4u64 {
            ids.push(a.register(e, UserId(1), "h", "app"));
            ids.push(b.register(e + 100, UserId(2), "h", "app"));
        }
        let unique: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn adopt_bumps_counter_within_stride_class() {
        let mut a: Registry<u64> = Registry::with_id_stride(1, 2);
        let mut b: Registry<u64> = Registry::with_id_stride(2, 2);
        let foreign = b.register(100, UserId(2), "h", "app");
        for e in 0..3u64 {
            b.register(e + 200, UserId(2), "h", "app");
        }
        let high = b.register(300, UserId(2), "h", "app");
        let (info, endpoint) = b.extract(high).unwrap();
        assert_eq!(endpoint, Some(300));
        a.adopt(info, endpoint);
        assert!(a.contains(high));
        assert_eq!(a.instance_at(300), Some(high));
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
        // Ids minted after adoption stay odd (stride class 1 mod 2) and
        // above the adopted id.
        let fresh = a.register(50, UserId(1), "h", "app");
        assert_eq!(fresh.0 % 2, 1);
        assert!(fresh.0 > high.0);
        assert_ne!(fresh, foreign);
    }

    #[test]
    fn all_is_sorted() {
        let mut r: Registry<u64> = Registry::new();
        for e in 0..5u64 {
            r.register(e, UserId(e), "h", "app");
        }
        let infos = r.all();
        for w in infos.windows(2) {
            assert!(w[0].instance < w[1].instance);
        }
    }
}
