//! `cosoft-server` — the COSOFT central communication server (§2.2,
//! Figure 4 of Zhao & Hoppe, ICDCS 1994).
//!
//! "A central controller (the server) coordinates the communication and
//! access control. A centralized database residing on the server consists
//! of four categories of data: the access permissions, the registration
//! records, the historical UI states, and the lock table."
//!
//! The state machine ([`ServerCore`]) is sans-I/O and generic over the
//! endpoint key, so the same core runs on the deterministic simulated
//! network and over real TCP (see `cosoft-net`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod access;
mod couple;
mod history;
mod locks;
mod overload;
mod registry;
mod server;
mod shard;

pub use access::AccessTable;
pub use couple::CoupleDirectory;
pub use history::{HistoryStack, HistoryStore};
pub use locks::{ExecId, LockTable};
pub use overload::{approx_cost, classify, MessageClass, OverloadConfig, Verdict};
pub use registry::Registry;
pub use server::{
    ComponentSlice, Delivery, LivenessConfig, Outgoing, RouteEvent, ServerCore, ServerStats,
};
pub use shard::{merge_refs, RouterStats, ShardRouter};
