//! Admission control and overload shedding (DESIGN.md §10).
//!
//! The paper's §3.2 auto-decoupling is an *eviction* mechanism: a
//! misbehaving peer is cut off and its couples dissolved. Under the
//! ROADMAP's heavy-traffic regime that is too blunt — a client that
//! briefly bursts past its fair share should be slowed down, not thrown
//! out. This module adds the graceful layer in front of eviction:
//! per-endpoint token-bucket budgets with priority classes, a global
//! inbound byte budget, and a [`Verdict`] that degrades in stages —
//! admit → shed with a [`Message::Busy`] reply → §3.2 eviction only
//! after sustained abuse.
//!
//! The subsystem is sans-I/O like the core it serves: time is the
//! core's virtual clock (`now_us`), so every shedding decision is
//! reproducible in the deterministic simulation and the model checker.

use std::collections::HashMap;
use std::hash::Hash;

use cosoft_wire::Message;

/// Priority class of an inbound message, deciding what is shed first
/// when budgets run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageClass {
    /// Liveness probes and teardown: always admitted. Shedding a `Ping`
    /// would make an overloaded server look dead (triggering reconnect
    /// storms — the opposite of load shedding), and shedding teardown
    /// (`Deregister`, `Rejoin`) would keep dead state alive.
    Liveness,
    /// Ordinary control-plane traffic (coupling, events, permissions,
    /// commands) plus the completion messages of in-flight transfers
    /// (`StateReply`, `StateApplied`, `ExecuteDone`) — completions
    /// *free* server state, so shedding them would wedge live transfer
    /// groups and make overload worse.
    Control,
    /// Bulk state-synchronization *initiators* (`CopyFrom`, `CopyTo`,
    /// `RemoteCopy`, undo/redo): the most expensive work a client can
    /// request, shed first.
    Bulk,
}

/// Classifies a message for admission. Exhaustive over [`Message`] so
/// adding a protocol kind without deciding its overload priority is a
/// compile error.
pub fn classify(msg: &Message) -> MessageClass {
    match msg {
        Message::Ping { .. }
        | Message::Pong { .. }
        | Message::Deregister
        | Message::Rejoin { .. } => MessageClass::Liveness,
        Message::CopyFrom { .. }
        | Message::CopyTo { .. }
        | Message::RemoteCopy { .. }
        | Message::UndoState { .. }
        | Message::RedoState { .. } => MessageClass::Bulk,
        Message::Register { .. }
        | Message::QueryInstances
        | Message::Couple { .. }
        | Message::Decouple { .. }
        | Message::RemoteCouple { .. }
        | Message::RemoteDecouple { .. }
        | Message::ListCoupled { .. }
        | Message::ObjectDestroyed { .. }
        | Message::Event { .. }
        | Message::ExecuteDone { .. }
        | Message::StateReply { .. }
        | Message::StateApplied { .. }
        | Message::SetPermission { .. }
        | Message::CoSendCommand { .. }
        // Server-to-client kinds arriving inbound are protocol misuse;
        // they are classified (and budgeted) as control traffic and
        // then answered by the dispatch's counted `unexpected` arm.
        | Message::Welcome { .. }
        | Message::InstanceList { .. }
        | Message::SessionToken { .. }
        | Message::CoupleUpdate { .. }
        | Message::CoupledSet { .. }
        | Message::EventGranted { .. }
        | Message::EventRejected { .. }
        | Message::ExecuteEvent { .. }
        | Message::GroupUnlocked { .. }
        | Message::StateRequest { .. }
        | Message::ApplyState { .. }
        | Message::ApplyDelta { .. }
        | Message::PermissionDenied { .. }
        | Message::CommandDelivery { .. }
        | Message::ErrorReply { .. }
        | Message::Busy { .. } => MessageClass::Control,
    }
}

/// Flat estimate for messages whose encoded size is dominated by fixed
/// headers and a few varints.
const BASE_COST: u64 = 16;

/// Approximate inbound cost of a message in bytes, charged against
/// [`OverloadConfig::max_window_bytes`]. A cheap over-the-structure
/// estimate, not an exact encoding length: the budget is a pressure
/// valve, not an accountant.
pub fn approx_cost(msg: &Message) -> u64 {
    let heavy = match msg {
        Message::Register { host, app_name, .. } => host.len() + app_name.len(),
        Message::Event { event, .. } => 8 * event.params.len() + 8 * event.path.depth(),
        Message::CopyTo { snapshot, .. } => snapshot.approx_size(),
        Message::StateReply { snapshot, .. } => {
            snapshot.as_ref().map_or(0, cosoft_wire::StateNode::approx_size)
        }
        Message::ApplyState { snapshot, .. } => snapshot.approx_size(),
        Message::ApplyDelta { delta, .. } => delta.approx_size(),
        Message::StateApplied { overwritten, error, .. } => {
            overwritten.as_ref().map_or(0, cosoft_wire::StateNode::approx_size)
                + error.as_ref().map_or(0, String::len)
        }
        Message::CoSendCommand { command, payload, .. } => command.len() + payload.len(),
        Message::CommandDelivery { command, payload, .. } => command.len() + payload.len(),
        Message::PermissionDenied { what } => what.len(),
        Message::ErrorReply { context, reason } => context.len() + reason.len(),
        Message::InstanceList { entries } => 32 * entries.len(),
        Message::CoupleUpdate { group } => 16 * group.len(),
        Message::CoupledSet { coupled, .. } => 16 * coupled.len(),
        Message::GroupUnlocked { objects, .. } => 8 * objects.len(),
        Message::ExecuteEvent { event, .. } => 8 * event.params.len() + 8 * event.path.depth(),
        Message::StateRequest { path, .. } => 8 * path.depth(),
        Message::Deregister
        | Message::Rejoin { .. }
        | Message::Ping { .. }
        | Message::Pong { .. }
        | Message::QueryInstances
        | Message::Welcome { .. }
        | Message::SessionToken { .. }
        | Message::Couple { .. }
        | Message::Decouple { .. }
        | Message::RemoteCouple { .. }
        | Message::RemoteDecouple { .. }
        | Message::ListCoupled { .. }
        | Message::ObjectDestroyed { .. }
        | Message::EventGranted { .. }
        | Message::EventRejected { .. }
        | Message::ExecuteDone { .. }
        | Message::CopyFrom { .. }
        | Message::RemoteCopy { .. }
        | Message::UndoState { .. }
        | Message::RedoState { .. }
        | Message::SetPermission { .. }
        | Message::Busy { .. } => 0,
    };
    BASE_COST + heavy as u64
}

/// Overload-control policy of a [`crate::ServerCore`]. The default
/// (all-zero) config disables admission entirely; each knob set to `0`
/// individually means "unlimited" for that budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Budget-window length in virtual µs. `0` disables admission
    /// control entirely (every other knob is ignored).
    pub window_us: u64,
    /// Control-class messages admitted per endpoint per window
    /// (`0` = unlimited).
    pub control_budget: u32,
    /// Bulk-class messages admitted per endpoint per window
    /// (`0` = unlimited).
    pub bulk_budget: u32,
    /// Global inbound byte budget per window across *all* endpoints,
    /// charged via [`approx_cost`] (`0` = unlimited). This is the
    /// server's pressure valve: even under-budget endpoints are shed
    /// when the aggregate inbound volume exceeds it.
    pub max_window_bytes: u64,
    /// Back-off advice carried in [`Message::Busy`] replies.
    pub retry_after_ms: u64,
    /// Consecutive *windows* containing at least one shed before the
    /// next shed escalates to §3.2 eviction (`0` = never escalate:
    /// shedding stays purely advisory).
    pub strikes_before_evict: u32,
}

impl OverloadConfig {
    /// Whether any admission checks run at all.
    pub fn enabled(&self) -> bool {
        self.window_us > 0
            && (self.control_budget > 0 || self.bulk_budget > 0 || self.max_window_bytes > 0)
    }
}

/// Decision for one inbound message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Process the message normally.
    Admit,
    /// Drop the message unprocessed.
    Shed {
        /// Its class (for per-class shed counters).
        class: MessageClass,
        /// Whether to answer with [`Message::Busy`] — true at most once
        /// per endpoint per window, so a flood of 10 000 shed messages
        /// produces one advisory reply, not 10 000.
        reply_busy: bool,
        /// Whether sustained abuse has crossed the strike threshold and
        /// the sender should now be evicted via §3.2 auto-decoupling.
        escalate: bool,
    },
}

/// Per-endpoint budget window.
#[derive(Debug, Clone, Copy)]
struct EndpointBudget {
    /// Virtual time the current window opened.
    window_start_us: u64,
    /// Remaining control-class admissions this window.
    control_left: u32,
    /// Remaining bulk-class admissions this window.
    bulk_left: u32,
    /// Whether a `Busy` reply was already issued this window.
    busy_sent: bool,
    /// Whether anything was shed this window (feeds `strikes`).
    shed_in_window: bool,
    /// Completed consecutive windows that contained at least one shed.
    strikes: u32,
}

/// Admission state: one budget window per recently-active endpoint plus
/// the global byte window. Owned by a [`crate::ServerCore`]; time comes
/// from the core's virtual clock.
#[derive(Debug, Clone)]
pub(crate) struct Admission<E> {
    config: OverloadConfig,
    buckets: HashMap<E, EndpointBudget>,
    global_window_start_us: u64,
    global_bytes: u64,
}

impl<E: Copy + Eq + Hash> Admission<E> {
    pub(crate) fn new(config: OverloadConfig) -> Self {
        Admission { config, buckets: HashMap::new(), global_window_start_us: 0, global_bytes: 0 }
    }

    pub(crate) fn config(&self) -> OverloadConfig {
        self.config
    }

    pub(crate) fn set_config(&mut self, config: OverloadConfig) {
        self.config = config;
        self.buckets.clear();
        self.global_bytes = 0;
    }

    /// Decides the fate of one inbound message at virtual time `now_us`.
    pub(crate) fn admit(&mut self, endpoint: E, msg: &Message, now_us: u64) -> Verdict {
        if !self.config.enabled() {
            return Verdict::Admit;
        }
        let class = classify(msg);
        if class == MessageClass::Liveness {
            return Verdict::Admit;
        }
        let config = self.config;
        let bucket = self.buckets.entry(endpoint).or_insert(EndpointBudget {
            window_start_us: now_us,
            control_left: config.control_budget,
            bulk_left: config.bulk_budget,
            busy_sent: false,
            shed_in_window: false,
            strikes: 0,
        });
        if now_us.saturating_sub(bucket.window_start_us) >= config.window_us {
            bucket.strikes =
                if bucket.shed_in_window { bucket.strikes.saturating_add(1) } else { 0 };
            bucket.window_start_us = now_us;
            bucket.control_left = config.control_budget;
            bucket.bulk_left = config.bulk_budget;
            bucket.busy_sent = false;
            bucket.shed_in_window = false;
        }
        let class_ok = match class {
            MessageClass::Liveness => true,
            MessageClass::Control => config.control_budget == 0 || bucket.control_left > 0,
            MessageClass::Bulk => config.bulk_budget == 0 || bucket.bulk_left > 0,
        };
        let cost = if config.max_window_bytes > 0 { approx_cost(msg) } else { 0 };
        if config.max_window_bytes > 0
            && now_us.saturating_sub(self.global_window_start_us) >= config.window_us
        {
            self.global_window_start_us = now_us;
            self.global_bytes = 0;
        }
        let bytes_ok = config.max_window_bytes == 0
            || self.global_bytes.saturating_add(cost) <= config.max_window_bytes;
        if class_ok && bytes_ok {
            match class {
                MessageClass::Liveness => {}
                MessageClass::Control if config.control_budget > 0 => bucket.control_left -= 1,
                MessageClass::Bulk if config.bulk_budget > 0 => bucket.bulk_left -= 1,
                MessageClass::Control | MessageClass::Bulk => {}
            }
            self.global_bytes = self.global_bytes.saturating_add(cost);
            return Verdict::Admit;
        }
        bucket.shed_in_window = true;
        let reply_busy = !bucket.busy_sent;
        bucket.busy_sent = true;
        let escalate =
            config.strikes_before_evict > 0 && bucket.strikes >= config.strikes_before_evict;
        Verdict::Shed { class, reply_busy, escalate }
    }

    /// Drops an endpoint's budget window (disconnect, eviction). The
    /// next message from a reconnected endpoint starts a fresh window
    /// with zero strikes.
    pub(crate) fn forget(&mut self, endpoint: &E) {
        self.buckets.remove(endpoint);
    }

    /// Evicts budget windows idle for two or more window lengths, so the
    /// bucket map is bounded by the set of recently-active endpoints
    /// rather than every endpoint ever seen. Called from the core's
    /// `tick`.
    pub(crate) fn prune(&mut self, now_us: u64) {
        if !self.config.enabled() {
            return;
        }
        let horizon = self.config.window_us.saturating_mul(2);
        self.buckets
            .retain(|_, b| now_us.saturating_sub(b.window_start_us) < horizon || b.shed_in_window);
    }

    /// Number of endpoints with a live budget window (observability).
    pub(crate) fn tracked_endpoints(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{GlobalObjectId, InstanceId, ObjectPath, StateNode, WidgetKind};

    fn oid(i: u64) -> GlobalObjectId {
        GlobalObjectId { instance: InstanceId(i), path: ObjectPath::parse("o").expect("valid") }
    }

    fn control_msg() -> Message {
        Message::Couple { src: oid(1), dst: oid(2) }
    }

    fn bulk_msg() -> Message {
        Message::CopyFrom {
            src: oid(1),
            dst: oid(2),
            mode: cosoft_wire::CopyMode::Strict,
            req_id: 1,
        }
    }

    fn config() -> OverloadConfig {
        OverloadConfig {
            window_us: 1_000,
            control_budget: 2,
            bulk_budget: 1,
            max_window_bytes: 0,
            retry_after_ms: 50,
            strikes_before_evict: 2,
        }
    }

    #[test]
    fn disabled_config_admits_everything() {
        let mut a: Admission<u64> = Admission::new(OverloadConfig::default());
        for _ in 0..10_000 {
            assert_eq!(a.admit(7, &bulk_msg(), 0), Verdict::Admit);
        }
        assert_eq!(a.tracked_endpoints(), 0);
    }

    #[test]
    fn liveness_is_always_admitted() {
        let mut a: Admission<u64> = Admission::new(config());
        for _ in 0..100 {
            assert_eq!(a.admit(7, &Message::Ping { nonce: 1 }, 0), Verdict::Admit);
            assert_eq!(a.admit(7, &Message::Rejoin { resume_token: 9 }, 0), Verdict::Admit);
        }
    }

    #[test]
    fn class_budgets_shed_and_refill() {
        let mut a: Admission<u64> = Admission::new(config());
        assert_eq!(a.admit(7, &control_msg(), 0), Verdict::Admit);
        assert_eq!(a.admit(7, &control_msg(), 0), Verdict::Admit);
        let v = a.admit(7, &control_msg(), 0);
        assert!(matches!(
            v,
            Verdict::Shed { class: MessageClass::Control, reply_busy: true, escalate: false }
        ));
        // Bulk has its own (smaller) budget.
        assert_eq!(a.admit(7, &bulk_msg(), 0), Verdict::Admit);
        let v = a.admit(7, &bulk_msg(), 0);
        assert!(matches!(v, Verdict::Shed { class: MessageClass::Bulk, reply_busy: false, .. }));
        // Next window: budgets refill, Busy can be sent again.
        assert_eq!(a.admit(7, &control_msg(), 1_000), Verdict::Admit);
    }

    #[test]
    fn busy_reply_is_once_per_window() {
        let mut a: Admission<u64> = Admission::new(config());
        a.admit(7, &control_msg(), 0);
        a.admit(7, &control_msg(), 0);
        let mut busies = 0;
        for _ in 0..50 {
            if let Verdict::Shed { reply_busy: true, .. } = a.admit(7, &control_msg(), 0) {
                busies += 1;
            }
        }
        assert_eq!(busies, 1);
        // New window: budget refills, so spend it before counting sheds.
        a.admit(7, &control_msg(), 1_500);
        a.admit(7, &control_msg(), 1_500);
        let mut busies2 = 0;
        for _ in 0..50 {
            if let Verdict::Shed { reply_busy: true, .. } = a.admit(7, &control_msg(), 1_500) {
                busies2 += 1;
            }
        }
        assert_eq!(busies2, 1);
    }

    #[test]
    fn sustained_abuse_escalates_after_strike_windows() {
        let mut a: Admission<u64> = Admission::new(config());
        // Window 0: exhaust + shed (strike forming).
        for _ in 0..5 {
            a.admit(7, &control_msg(), 0);
        }
        // Window 1: shed again.
        let mut escalated = false;
        for _ in 0..5 {
            if let Verdict::Shed { escalate: true, .. } = a.admit(7, &control_msg(), 1_000) {
                escalated = true;
            }
        }
        assert!(!escalated, "one completed shed window must not yet escalate");
        // Window 2: strikes == 2 → first shed escalates.
        for _ in 0..5 {
            if let Verdict::Shed { escalate: true, .. } = a.admit(7, &control_msg(), 2_000) {
                escalated = true;
            }
        }
        assert!(escalated);
    }

    #[test]
    fn good_window_resets_strikes() {
        let mut a: Admission<u64> = Admission::new(config());
        for _ in 0..5 {
            a.admit(7, &control_msg(), 0); // shed window
        }
        a.admit(7, &control_msg(), 1_000); // clean window (under budget)
                                           // Two more shed windows still needed before escalation.
        for _ in 0..5 {
            a.admit(7, &control_msg(), 2_000);
        }
        for t in [3_000u64, 4_000] {
            for _ in 0..5 {
                if let Verdict::Shed { escalate, .. } = a.admit(7, &control_msg(), t) {
                    assert_eq!(escalate, t == 4_000, "escalates only at the third shed window");
                }
            }
        }
    }

    #[test]
    fn byte_budget_is_global_across_endpoints() {
        let mut a: Admission<u64> = Admission::new(OverloadConfig {
            window_us: 1_000,
            control_budget: 0,
            bulk_budget: 0,
            max_window_bytes: 600,
            retry_after_ms: 10,
            strikes_before_evict: 0,
        });
        let big = Message::CoSendCommand {
            to: cosoft_wire::Target::Broadcast,
            command: "blob".into(),
            payload: vec![0; 480],
        };
        assert_eq!(a.admit(1, &big, 0), Verdict::Admit);
        // A *different* endpoint is refused: the byte window is shared.
        assert!(matches!(a.admit(2, &big, 0), Verdict::Shed { .. }));
        // Next window admits again.
        assert_eq!(a.admit(2, &big, 1_000), Verdict::Admit);
    }

    #[test]
    fn per_endpoint_budgets_are_independent() {
        let mut a: Admission<u64> = Admission::new(config());
        a.admit(1, &control_msg(), 0);
        a.admit(1, &control_msg(), 0);
        assert!(matches!(a.admit(1, &control_msg(), 0), Verdict::Shed { .. }));
        // Endpoint 2 is unaffected by endpoint 1's exhaustion.
        assert_eq!(a.admit(2, &control_msg(), 0), Verdict::Admit);
    }

    #[test]
    fn forget_clears_strikes() {
        let mut a: Admission<u64> = Admission::new(config());
        for t in [0u64, 1_000, 2_000] {
            for _ in 0..5 {
                a.admit(7, &control_msg(), t);
            }
        }
        a.forget(&7);
        // Fresh bucket: admits normally, no immediate escalation.
        assert_eq!(a.admit(7, &control_msg(), 2_500), Verdict::Admit);
    }

    #[test]
    fn prune_bounds_the_bucket_map() {
        let mut a: Admission<u64> = Admission::new(config());
        for e in 0..100u64 {
            a.admit(e, &control_msg(), 0);
        }
        assert_eq!(a.tracked_endpoints(), 100);
        a.prune(10_000);
        assert_eq!(a.tracked_endpoints(), 0);
    }

    #[test]
    fn approx_cost_tracks_payload_size() {
        let small = approx_cost(&Message::Ping { nonce: 1 });
        let snapshot = StateNode::new(WidgetKind::Canvas, "c");
        let big = approx_cost(&Message::CoSendCommand {
            to: cosoft_wire::Target::Broadcast,
            command: "x".into(),
            payload: vec![0; 4096],
        });
        assert!(small < 64);
        assert!(big > 4096);
        assert!(
            approx_cost(&Message::CopyTo {
                src: oid(1),
                dst: oid(2),
                snapshot,
                mode: cosoft_wire::CopyMode::Strict,
                req_id: 1,
            }) >= BASE_COST
        );
    }

    #[test]
    fn classify_matches_priority_table() {
        assert_eq!(classify(&Message::Ping { nonce: 0 }), MessageClass::Liveness);
        assert_eq!(classify(&Message::Deregister), MessageClass::Liveness);
        assert_eq!(classify(&control_msg()), MessageClass::Control);
        assert_eq!(classify(&Message::ExecuteDone { exec_id: 1 }), MessageClass::Control);
        assert_eq!(classify(&bulk_msg()), MessageClass::Bulk);
        assert_eq!(classify(&Message::UndoState { object: oid(1) }), MessageClass::Bulk);
    }
}
