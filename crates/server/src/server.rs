//! The COSOFT central server (§2.2, Figure 4).
//!
//! `ServerCore` is written sans-I/O: [`ServerCore::handle`] maps one
//! incoming message to the set of outgoing messages, keyed by a generic
//! endpoint type `E` (a simulated node id or a TCP connection id). The
//! same core therefore drives both the deterministic simulation and the
//! real TCP transport.
//!
//! The server owns the centralized database of §2.2: registration records
//! ([`crate::Registry`]), access permissions ([`crate::AccessTable`]),
//! historical UI states ([`crate::HistoryStore`]) and the lock table
//! ([`crate::LockTable`]), plus the couple directory implementing the
//! couple relation and its transitive closure.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use bytes::Bytes;
use cosoft_wire::{
    codec, delta, AccessRight, CopyMode, GlobalObjectId, InstanceId, Message, ObjectPath,
    SharedFrame, StateNode, Target, UserId,
};

use crate::access::AccessTable;
use crate::couple::CoupleDirectory;
use crate::history::{HistoryStack, HistoryStore};
use crate::locks::LockTable;
use crate::overload::{Admission, MessageClass, OverloadConfig, Verdict};
use crate::registry::Registry;

/// What a state transfer is doing, which decides how its completion is
/// recorded in the history store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferKind {
    /// A CopyFrom / CopyTo / RemoteCopy.
    Copy,
    /// An undo restoring a historical state.
    Undo,
    /// A redo re-applying an undone state.
    Redo,
}

/// One per-target leg of a state transfer. A copy onto a *coupled*
/// destination fans out to every member of its group (the group must stay
/// consistent), so a logical transfer owns several legs.
#[derive(Debug, Clone)]
struct Transfer {
    dst: GlobalObjectId,
    kind: TransferKind,
    group: u64,
    /// The state this leg is installing at its destination, kept until
    /// the destination acknowledges: a success installs it as the
    /// destination's sync base for future delta diffs; a failed
    /// delta-encoded leg resends `snapshot_bytes` as a full `ApplyState`.
    sync: Option<AppliedSync>,
}

/// Bookkeeping for the snapshot a transfer leg carries (see
/// [`Transfer::sync`]).
#[derive(Debug, Clone)]
struct AppliedSync {
    /// Content version of the carried state ([`delta::state_version`]).
    version: u64,
    /// The carried state itself (shared across the fan-out's legs).
    state: Arc<StateNode>,
    /// Its canonical encoding, for the full-snapshot fallback resend.
    snapshot_bytes: Bytes,
    /// Reconciliation mode of the original leg, reused by the fallback.
    mode: CopyMode,
    /// Whether the leg went out as an `ApplyDelta` (and may therefore
    /// fall back) rather than a full `ApplyState`.
    via_delta: bool,
}

/// The logical transfer a requester is waiting on.
#[derive(Debug, Clone)]
struct TransferGroup {
    requester: InstanceId,
    client_req: u64,
    outstanding: usize,
    failed: Option<String>,
}

#[derive(Debug, Clone)]
struct ExecState {
    /// The object each instance actually executed on: the member base
    /// joined with the event's path relative to the origin's base. These
    /// are the paths clients disabled, so `GroupUnlocked` must list them.
    targets: Vec<GlobalObjectId>,
    /// Outstanding `ExecuteDone` replies per instance.
    owed: HashMap<InstanceId, usize>,
}

/// A pull-mode transfer waiting for the source's `StateReply`. Records
/// *both* ends: the destination (so destination death fails the leg) and
/// the source (so a source dying before it replies fails the leg too,
/// instead of leaving the transfer group outstanding forever).
#[derive(Debug, Clone)]
struct PendingPull {
    src: InstanceId,
    dst: GlobalObjectId,
    mode: CopyMode,
    group: u64,
}

/// One delivery item produced by the server's outgoing path.
///
/// Unicast replies carry an owned [`Message`], encoded by whichever
/// transport actually sends it. Broadcast fan-out instead carries one
/// pre-encoded [`SharedFrame`] next to the full list of destination
/// endpoints: the frame body is encoded exactly once and the cheaply
/// clonable frame is delivered everywhere (§3.2's multiple execution
/// makes broadcast the server's hottest path).
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery<E> {
    /// A message for exactly one endpoint, not yet encoded.
    Unicast(E, Message),
    /// One shared pre-encoded frame for every listed endpoint.
    Shared(Vec<E>, SharedFrame),
}

/// Outgoing deliveries produced by one [`ServerCore::handle`] call.
///
/// Transport-facing consumers either walk [`Outgoing::items`] (or
/// [`Outgoing::into_frames`]) to deliver shared frames without
/// re-encoding, or flatten via [`Outgoing::into_messages`] when
/// per-endpoint owned messages are more convenient (tests, the
/// deterministic simulation's message-level introspection).
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing<E> {
    items: Vec<Delivery<E>>,
}

impl<E> Default for Outgoing<E> {
    fn default() -> Self {
        Outgoing { items: Vec::new() }
    }
}

impl<E> Outgoing<E> {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an owned message for one endpoint.
    pub fn push_unicast(&mut self, endpoint: E, msg: Message) {
        self.items.push(Delivery::Unicast(endpoint, msg));
    }

    /// Queues one pre-encoded frame for every endpoint in `endpoints`.
    /// An empty endpoint list is dropped — there is nothing to deliver.
    pub fn push_shared(&mut self, endpoints: Vec<E>, frame: SharedFrame) {
        if !endpoints.is_empty() {
            self.items.push(Delivery::Shared(endpoints, frame));
        }
    }

    /// The queued delivery items, in production order.
    pub fn items(&self) -> &[Delivery<E>] {
        &self.items
    }

    /// Consumes the batch into its delivery items.
    pub fn into_items(self) -> Vec<Delivery<E>> {
        self.items
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of per-endpoint messages this batch delivers (a shared
    /// frame counts once per destination endpoint).
    pub fn message_count(&self) -> usize {
        self.items
            .iter()
            .map(|d| match d {
                Delivery::Unicast(..) => 1,
                Delivery::Shared(endpoints, _) => endpoints.len(),
            })
            .sum()
    }

    /// Appends every item of `other`, preserving order.
    pub fn extend(&mut self, other: Outgoing<E>) {
        self.items.extend(other.items);
    }

    /// Flattens into per-endpoint owned messages. A shared frame is
    /// decoded once and the message cloned per endpoint — the
    /// compatibility path for consumers that want `(endpoint, Message)`
    /// pairs; the TCP hot path uses [`Outgoing::into_frames`] instead.
    pub fn into_messages(self) -> Vec<(E, Message)> {
        let mut flat = Vec::with_capacity(self.items.len());
        for item in self.items {
            match item {
                Delivery::Unicast(e, m) => flat.push((e, m)),
                Delivery::Shared(endpoints, frame) => {
                    // audit: infallible — frames here are built by frame_message_shared from valid messages
                    let msg = frame.decode().expect("server-encoded frame decodes");
                    let mut endpoints = endpoints.into_iter();
                    if let Some(last) = endpoints.next_back() {
                        for e in endpoints {
                            flat.push((e, msg.clone()));
                        }
                        flat.push((last, msg));
                    }
                }
            }
        }
        flat
    }

    /// Flattens into per-endpoint pre-encoded frames: unicast messages
    /// are framed here (exactly once each), shared frames are cheaply
    /// cloned per destination. The result is ready for a transport
    /// `send_batch`.
    pub fn into_frames(self) -> Vec<(E, SharedFrame)> {
        let mut flat = Vec::with_capacity(self.items.len());
        for item in self.items {
            match item {
                Delivery::Unicast(e, m) => flat.push((e, codec::frame_message_shared(&m))),
                Delivery::Shared(endpoints, frame) => {
                    for e in endpoints {
                        flat.push((e, frame.clone()));
                    }
                }
            }
        }
        flat
    }
}

/// Client-liveness policy: how long a silently dropped connection keeps
/// its instance resumable, and when a silent-but-connected instance is
/// presumed dead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LivenessConfig {
    /// How long (virtual µs) a disconnected instance stays quarantined —
    /// registered, coupled, resumable via its token — before the regular
    /// §3.2 auto-decoupling deregistration runs. `0` disables quarantine:
    /// a disconnect deregisters immediately (the pre-liveness behavior).
    pub grace_us: u64,
    /// Quarantine an instance whose connection has produced no traffic
    /// (not even a [`Message::Ping`]) for this long. `0` disables the
    /// idle check.
    pub idle_timeout_us: u64,
    /// Upper bound on concurrently quarantined instances (and therefore
    /// on live resume tokens held for disconnected peers). When a new
    /// quarantine would exceed it, the entry with the *oldest* deadline
    /// is expired early through the full deregistration path, so a
    /// register/disconnect flood cannot grow the quarantine and token
    /// stores without limit. `0` = unbounded (the pre-cap behavior).
    pub max_quarantined: usize,
}

/// A disconnected instance whose grace period is still running.
#[derive(Debug, Clone, Copy)]
struct Quarantined {
    deadline_us: u64,
}

/// Snapshot of the server's observability counters: floor control,
/// locking, broadcast fan-out, and state-transfer liveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Events granted by floor control.
    pub events_granted: u64,
    /// Events rejected (permission or lock conflict).
    pub events_rejected: u64,
    /// Rejections caused specifically by a lock conflict.
    pub lock_conflicts: u64,
    /// `PermissionDenied` replies sent.
    pub permission_denials: u64,
    /// Total messages produced for delivery.
    pub messages_out: u64,
    /// Largest fan-out produced by a single incoming message.
    pub max_fanout: usize,
    /// State-transfer groups started (copies, undos, redos).
    pub transfers_started: u64,
    /// Transfer groups that completed successfully.
    pub transfers_completed: u64,
    /// Transfer groups that finished with an error (including peers
    /// dying mid-transfer).
    pub transfers_failed: u64,
    /// Currently registered instances (bound + quarantined).
    pub registered_instances: usize,
    /// Transfer groups still in flight.
    pub live_transfer_groups: usize,
    /// Push legs (`ApplyState` awaiting `StateApplied`) still in flight.
    pub live_transfer_legs: usize,
    /// Pull legs (`StateRequest` awaiting `StateReply`) still in flight.
    pub live_pending_pulls: usize,
    /// Multiple-execution groups still awaiting `ExecuteDone`s.
    pub live_execs: usize,
    /// Locks currently held.
    pub held_locks: usize,
    /// `Ping` probes answered.
    pub pings: u64,
    /// Instances placed in quarantine after a disconnect or idle timeout.
    pub quarantines: u64,
    /// Quarantined instances successfully resumed via `Rejoin`.
    pub resumes: u64,
    /// `Rejoin` attempts refused (unknown or expired token).
    pub rejoins_rejected: u64,
    /// Quarantines that expired into a full deregistration.
    pub quarantine_expiries: u64,
    /// Instances currently quarantined.
    pub quarantined_instances: usize,
    /// Messages of a kind the server never accepts from clients
    /// (server-to-client-only kinds arriving inbound); each one is
    /// answered with an [`Message::ErrorReply`] rather than dropped.
    pub unexpected_messages: u64,
    /// Shared frames encoded on the outgoing path — each counts one
    /// encode regardless of how many endpoints it reaches.
    pub shared_frames_encoded: u64,
    /// Per-endpoint deliveries served by shared frames.
    pub shared_deliveries: u64,
    /// Bytes encoded into shared frames (counted once per frame).
    pub shared_bytes_encoded: u64,
    /// Bytes handed to transports via shared frames (counted once per
    /// delivery); the gap to `shared_bytes_encoded` is what encode-once
    /// saved over the old clone-and-re-encode fan-out.
    pub shared_bytes_delivered: u64,
    /// Heavy payloads (event bodies, state snapshots) serialized.
    pub payload_encodes: u64,
    /// Fan-out legs that spliced an already-serialized heavy payload
    /// into their frame instead of re-encoding it.
    pub payload_reuses: u64,
    /// `tick` calls whose `now_us` was earlier than the stored virtual
    /// clock. The clock is clamped (it never rewinds — a rewind would
    /// re-arm quarantine grace periods and idle timeouts), and each
    /// regression is counted here so a misbehaving time source is
    /// observable instead of silent.
    pub clock_regressions: u64,
    /// Control-class messages shed by admission control.
    pub overload_sheds_control: u64,
    /// Bulk-class messages shed by admission control.
    pub overload_sheds_bulk: u64,
    /// [`Message::Busy`] replies sent (at most one per endpoint per
    /// budget window, so this counts advisory notifications, not sheds).
    pub busy_replies: u64,
    /// Endpoints evicted via §3.2 auto-decoupling after sustained
    /// admission-control abuse (strikes exhausted).
    pub overload_evictions: u64,
    /// Quarantine entries expired *early* because
    /// [`LivenessConfig::max_quarantined`] was reached (oldest-deadline
    /// first). Disjoint from `quarantine_expiries`, which counts
    /// on-time expiries.
    pub quarantine_store_evictions: u64,
    /// Endpoints currently holding an admission budget window (gauge,
    /// bounded by pruning of idle windows).
    pub overload_tracked_endpoints: usize,
    /// Objects whose history chains were purged on the teardown path
    /// (instance deregistration or an `ObjectDestroyed` notification).
    pub history_purges: u64,
    /// Fan-out legs sent as attribute-level `ApplyDelta` (the destination
    /// held a matching sync base) instead of a full `ApplyState`.
    pub delta_legs_sent: u64,
    /// Delta legs the receiver refused (diverged or unknown base) that
    /// were resent as full snapshots.
    pub delta_fallbacks: u64,
}

/// Aggregates counters across shard cores: sums everything except
/// gauges that only make sense as a maximum.
impl ServerStats {
    /// Merges another core's counters into this snapshot (used by the
    /// shard router to expose one aggregate [`ServerStats`]).
    pub fn merge(&mut self, other: &ServerStats) {
        let ServerStats {
            events_granted,
            events_rejected,
            lock_conflicts,
            permission_denials,
            messages_out,
            max_fanout,
            transfers_started,
            transfers_completed,
            transfers_failed,
            registered_instances,
            live_transfer_groups,
            live_transfer_legs,
            live_pending_pulls,
            live_execs,
            held_locks,
            pings,
            quarantines,
            resumes,
            rejoins_rejected,
            quarantine_expiries,
            quarantined_instances,
            unexpected_messages,
            shared_frames_encoded,
            shared_deliveries,
            shared_bytes_encoded,
            shared_bytes_delivered,
            payload_encodes,
            payload_reuses,
            clock_regressions,
            overload_sheds_control,
            overload_sheds_bulk,
            busy_replies,
            overload_evictions,
            quarantine_store_evictions,
            overload_tracked_endpoints,
            history_purges,
            delta_legs_sent,
            delta_fallbacks,
        } = other;
        self.events_granted += events_granted;
        self.events_rejected += events_rejected;
        self.lock_conflicts += lock_conflicts;
        self.permission_denials += permission_denials;
        self.messages_out += messages_out;
        self.max_fanout = self.max_fanout.max(*max_fanout);
        self.transfers_started += transfers_started;
        self.transfers_completed += transfers_completed;
        self.transfers_failed += transfers_failed;
        self.registered_instances += registered_instances;
        self.live_transfer_groups += live_transfer_groups;
        self.live_transfer_legs += live_transfer_legs;
        self.live_pending_pulls += live_pending_pulls;
        self.live_execs += live_execs;
        self.held_locks += held_locks;
        self.pings += pings;
        self.quarantines += quarantines;
        self.resumes += resumes;
        self.rejoins_rejected += rejoins_rejected;
        self.quarantine_expiries += quarantine_expiries;
        self.quarantined_instances += quarantined_instances;
        self.unexpected_messages += unexpected_messages;
        self.shared_frames_encoded += shared_frames_encoded;
        self.shared_deliveries += shared_deliveries;
        self.shared_bytes_encoded += shared_bytes_encoded;
        self.shared_bytes_delivered += shared_bytes_delivered;
        self.payload_encodes += payload_encodes;
        self.payload_reuses += payload_reuses;
        self.clock_regressions += clock_regressions;
        self.overload_sheds_control += overload_sheds_control;
        self.overload_sheds_bulk += overload_sheds_bulk;
        self.busy_replies += busy_replies;
        self.overload_evictions += overload_evictions;
        self.quarantine_store_evictions += quarantine_store_evictions;
        self.overload_tracked_endpoints += overload_tracked_endpoints;
        self.history_purges += history_purges;
        self.delta_legs_sent += delta_legs_sent;
        self.delta_fallbacks += delta_fallbacks;
    }
}

/// A routing-relevant lifecycle change, recorded by the core for its
/// router (when enabled via [`ServerCore::enable_route_log`]) so the
/// instance→shard, endpoint→shard, and token→shard maps stay exactly in
/// sync with the registries without the router sniffing outgoing
/// traffic.
///
/// Shard migrations ([`ServerCore::extract_component`] /
/// [`ServerCore::absorb_component`]) deliberately record nothing: the
/// router rebinds routes itself from the migrated slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEvent<E> {
    /// An instance became bound to an endpoint (register or rejoin).
    Bound {
        /// The instance that gained an endpoint.
        instance: InstanceId,
        /// Its endpoint.
        endpoint: E,
    },
    /// An instance lost its endpoint but kept its record (quarantine).
    Unbound {
        /// The instance that lost its endpoint.
        instance: InstanceId,
        /// The endpoint it was bound to.
        endpoint: E,
    },
    /// An instance left the registry entirely.
    Deregistered {
        /// The departed instance.
        instance: InstanceId,
        /// The endpoint it was bound to, if it was not quarantined.
        endpoint: Option<E>,
    },
    /// A resume token was issued (registration or rotation on rejoin).
    TokenIssued {
        /// The token value.
        token: u64,
        /// The instance it resumes.
        instance: InstanceId,
    },
    /// A resume token stopped being honored (rotation or deregistration).
    TokenRetired {
        /// The retired token value.
        token: u64,
    },
}

/// Everything one couple-component owns inside a [`ServerCore`],
/// extracted for migration to another shard: registration records,
/// liveness bookkeeping, couple links, history stacks, access tuples,
/// and the protocol state (executions with their locks, transfer groups
/// with their legs and pulls) that lives entirely inside the component.
///
/// Produced by [`ServerCore::extract_component`] and consumed by
/// [`ServerCore::absorb_component`]; opaque to everything in between.
#[derive(Debug, Clone)]
pub struct ComponentSlice<E> {
    records: Vec<(cosoft_wire::InstanceInfo, Option<E>)>,
    last_seen: Vec<(InstanceId, u64)>,
    quarantined: Vec<(InstanceId, u64)>,
    tokens: Vec<(u64, InstanceId)>,
    links: Vec<(GlobalObjectId, GlobalObjectId)>,
    history: Vec<(GlobalObjectId, HistoryStack, HistoryStack)>,
    /// Destination sync bases (object, content version, last applied
    /// state): delta sync keeps working across a shard migration because
    /// the versions travel in the slice.
    sync_bases: Vec<(GlobalObjectId, u64, Arc<StateNode>)>,
    access: Vec<(UserId, GlobalObjectId, AccessRight)>,
    execs: Vec<(u64, ExecState, Vec<GlobalObjectId>)>,
    transfer_groups: Vec<(u64, TransferGroup)>,
    transfers: Vec<(u64, Transfer)>,
    pulls: Vec<(u64, PendingPull)>,
}

impl<E: Copy> ComponentSlice<E> {
    /// The migrated instances, in extraction order.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.records.iter().map(|(info, _)| info.instance).collect()
    }

    /// The migrated instances that are bound to an endpoint, with their
    /// endpoints (quarantined members migrate without one).
    pub fn bound_endpoints(&self) -> Vec<(InstanceId, E)> {
        self.records.iter().filter_map(|(info, e)| e.map(|e| (info.instance, e))).collect()
    }

    /// The resume tokens travelling with the slice (quarantined members
    /// keep their credential across the migration).
    pub fn resume_tokens(&self) -> Vec<u64> {
        self.tokens.iter().map(|(t, _)| *t).collect()
    }

    /// Whether the slice carries no instances at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of migrated instances.
    pub fn len(&self) -> usize {
        self.records.len()
    }
}

/// The sans-I/O COSOFT server state machine.
///
/// `Clone` produces an independent snapshot of the entire database —
/// the schedule-exploring model checker (`crates/server/tests/lock_model.rs`)
/// forks the server state at every branching point of its search.
#[derive(Debug, Clone)]
pub struct ServerCore<E> {
    registry: Registry<E>,
    access: AccessTable,
    locks: LockTable,
    couples: CoupleDirectory,
    history: HistoryStore,
    /// Per destination object: the content version and state of the last
    /// snapshot it acknowledged applying, used to diff attribute-level
    /// `ApplyDelta` legs instead of re-sending full snapshots.
    sync_bases: HashMap<GlobalObjectId, (u64, Arc<StateNode>)>,
    next_exec: u64,
    next_transfer: u64,
    execs: HashMap<u64, ExecState>,
    transfers: HashMap<u64, Transfer>,
    transfer_groups: HashMap<u64, TransferGroup>,
    next_transfer_group: u64,
    /// Pull-mode transfers awaiting a `StateReply`.
    pending_pulls: HashMap<u64, PendingPull>,
    /// Floor-control rejections served so far (benchmark metric).
    rejected_events: u64,
    /// Events granted so far (benchmark metric).
    granted_events: u64,
    /// Rejections caused by a lock conflict (subset of `rejected_events`).
    lock_conflicts: u64,
    /// `PermissionDenied` replies sent.
    permission_denials: u64,
    /// Total messages produced for delivery.
    messages_out: u64,
    /// Largest fan-out of a single incoming message.
    max_fanout: usize,
    /// Transfer groups started / completed / failed.
    transfers_started: u64,
    transfers_completed: u64,
    transfers_failed: u64,
    /// Liveness policy (grace period, idle timeout).
    liveness: LivenessConfig,
    /// Virtual clock, advanced by [`ServerCore::tick`].
    now_us: u64,
    /// Disconnected instances whose grace period is still running.
    quarantined: HashMap<InstanceId, Quarantined>,
    /// Resume token → instance (issued at registration, rotated on rejoin).
    tokens: HashMap<u64, InstanceId>,
    /// Instance → its current resume token.
    token_of: HashMap<InstanceId, u64>,
    /// Counter feeding deterministic token generation.
    next_token_seq: u64,
    /// Last time (virtual µs) each bound instance produced any traffic.
    last_seen: HashMap<InstanceId, u64>,
    /// Liveness counters.
    pings: u64,
    quarantines: u64,
    resumes: u64,
    rejoins_rejected: u64,
    quarantine_expiries: u64,
    /// Inbound messages of a server-to-client-only kind.
    unexpected_messages: u64,
    /// Shared-frame delivery counters (see [`ServerStats`]).
    shared_frames_encoded: u64,
    shared_deliveries: u64,
    shared_bytes_encoded: u64,
    shared_bytes_delivered: u64,
    payload_encodes: u64,
    payload_reuses: u64,
    /// `tick` calls that presented a clock earlier than `now_us`.
    clock_regressions: u64,
    /// Admission-control state (token-bucket budgets per endpoint).
    admission: Admission<E>,
    /// Overload counters (see [`ServerStats`]).
    overload_sheds_control: u64,
    overload_sheds_bulk: u64,
    busy_replies: u64,
    overload_evictions: u64,
    /// Quarantine entries expired early by the `max_quarantined` cap.
    quarantine_store_evictions: u64,
    /// Objects whose history was purged on the teardown path.
    history_purges: u64,
    /// Delta-sync counters (see [`ServerStats`]).
    delta_legs_sent: u64,
    delta_fallbacks: u64,
    /// Increment applied to every id counter (exec, transfer, transfer
    /// group, token seq). Shard `i` of `n` starts its counters at `i + 1`
    /// with stride `n`, so ids minted by different shards never collide.
    id_stride: u64,
    /// Routing-relevant lifecycle changes since the last
    /// [`ServerCore::take_route_events`], recorded only when enabled.
    route_log: Vec<RouteEvent<E>>,
    /// Whether lifecycle changes are recorded (routers only; leaving it
    /// off keeps standalone cores from accumulating an undrained log).
    route_log_enabled: bool,
}

impl<E: Copy + Eq + Hash> Default for ServerCore<E> {
    fn default() -> Self {
        ServerCore::new()
    }
}

impl<E: Copy + Eq + Hash> ServerCore<E> {
    /// Creates a server with the permissive default access policy.
    pub fn new() -> Self {
        ServerCore {
            registry: Registry::new(),
            access: AccessTable::new(),
            locks: LockTable::new(),
            couples: CoupleDirectory::new(),
            history: HistoryStore::new(),
            sync_bases: HashMap::new(),
            next_exec: 1,
            next_transfer: 1,
            execs: HashMap::new(),
            transfers: HashMap::new(),
            transfer_groups: HashMap::new(),
            next_transfer_group: 1,
            pending_pulls: HashMap::new(),
            rejected_events: 0,
            granted_events: 0,
            lock_conflicts: 0,
            permission_denials: 0,
            messages_out: 0,
            max_fanout: 0,
            transfers_started: 0,
            transfers_completed: 0,
            transfers_failed: 0,
            liveness: LivenessConfig::default(),
            now_us: 0,
            quarantined: HashMap::new(),
            tokens: HashMap::new(),
            token_of: HashMap::new(),
            next_token_seq: 1,
            last_seen: HashMap::new(),
            pings: 0,
            quarantines: 0,
            resumes: 0,
            rejoins_rejected: 0,
            quarantine_expiries: 0,
            unexpected_messages: 0,
            shared_frames_encoded: 0,
            shared_deliveries: 0,
            shared_bytes_encoded: 0,
            shared_bytes_delivered: 0,
            payload_encodes: 0,
            payload_reuses: 0,
            clock_regressions: 0,
            admission: Admission::new(OverloadConfig::default()),
            overload_sheds_control: 0,
            overload_sheds_bulk: 0,
            busy_replies: 0,
            overload_evictions: 0,
            quarantine_store_evictions: 0,
            history_purges: 0,
            delta_legs_sent: 0,
            delta_fallbacks: 0,
            id_stride: 1,
            route_log: Vec::new(),
            route_log_enabled: false,
        }
    }

    /// Creates shard `index` of `stride` shards: every id this core mints
    /// (instance, exec, transfer, transfer group, resume-token sequence)
    /// stays in the residue class `index + 1` modulo `stride`, so ids
    /// from different shards never collide and a migrated component's
    /// ids can be adopted verbatim. The resume tokens themselves stay
    /// globally unique because SplitMix64 is a bijection on `u64`.
    pub fn with_shard_ids(index: u64, stride: u64) -> Self {
        let stride = stride.max(1);
        let first = index.min(stride - 1) + 1;
        let mut s = Self::new();
        s.registry = Registry::with_id_stride(first, stride);
        s.next_exec = first;
        s.next_transfer = first;
        s.next_transfer_group = first;
        s.next_token_seq = first;
        s.id_stride = stride;
        s
    }

    /// Creates a server with an explicit default access right.
    pub fn with_default_right(right: AccessRight) -> Self {
        let mut s = Self::new();
        s.access = AccessTable::with_default(right);
        s
    }

    /// Creates a server with an explicit liveness policy.
    pub fn with_liveness(liveness: LivenessConfig) -> Self {
        let mut s = Self::new();
        s.liveness = liveness;
        s
    }

    /// Replaces the liveness policy.
    pub fn set_liveness(&mut self, liveness: LivenessConfig) {
        self.liveness = liveness;
    }

    /// The active liveness policy.
    pub fn liveness(&self) -> LivenessConfig {
        self.liveness
    }

    /// Creates a server with an explicit overload-control policy.
    pub fn with_overload(overload: OverloadConfig) -> Self {
        let mut s = Self::new();
        s.set_overload(overload);
        s
    }

    /// Replaces the overload-control policy. Budget windows restart:
    /// existing strikes and partially-spent budgets are discarded.
    pub fn set_overload(&mut self, overload: OverloadConfig) {
        self.admission.set_config(overload);
    }

    /// The active overload-control policy.
    pub fn overload(&self) -> OverloadConfig {
        self.admission.config()
    }

    /// The registration records.
    pub fn registry(&self) -> &Registry<E> {
        &self.registry
    }

    /// The couple directory.
    pub fn couples(&self) -> &CoupleDirectory {
        &self.couples
    }

    /// The lock table.
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The historical-UI-state store.
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Events rejected by floor control so far.
    pub fn rejected_events(&self) -> u64 {
        self.rejected_events
    }

    /// Events granted by floor control so far.
    pub fn granted_events(&self) -> u64 {
        self.granted_events
    }

    /// Snapshot of the server's observability counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            events_granted: self.granted_events,
            events_rejected: self.rejected_events,
            lock_conflicts: self.lock_conflicts,
            permission_denials: self.permission_denials,
            messages_out: self.messages_out,
            max_fanout: self.max_fanout,
            transfers_started: self.transfers_started,
            transfers_completed: self.transfers_completed,
            transfers_failed: self.transfers_failed,
            registered_instances: self.registry.all().len(),
            live_transfer_groups: self.transfer_groups.len(),
            live_transfer_legs: self.transfers.len(),
            live_pending_pulls: self.pending_pulls.len(),
            live_execs: self.execs.len(),
            held_locks: self.locks.len(),
            pings: self.pings,
            quarantines: self.quarantines,
            resumes: self.resumes,
            rejoins_rejected: self.rejoins_rejected,
            quarantine_expiries: self.quarantine_expiries,
            quarantined_instances: self.quarantined.len(),
            unexpected_messages: self.unexpected_messages,
            shared_frames_encoded: self.shared_frames_encoded,
            shared_deliveries: self.shared_deliveries,
            shared_bytes_encoded: self.shared_bytes_encoded,
            shared_bytes_delivered: self.shared_bytes_delivered,
            payload_encodes: self.payload_encodes,
            payload_reuses: self.payload_reuses,
            clock_regressions: self.clock_regressions,
            overload_sheds_control: self.overload_sheds_control,
            overload_sheds_bulk: self.overload_sheds_bulk,
            busy_replies: self.busy_replies,
            overload_evictions: self.overload_evictions,
            quarantine_store_evictions: self.quarantine_store_evictions,
            overload_tracked_endpoints: self.admission.tracked_endpoints(),
            history_purges: self.history_purges,
            delta_legs_sent: self.delta_legs_sent,
            delta_fallbacks: self.delta_fallbacks,
        }
    }

    /// Turns on the route log: lifecycle changes ([`RouteEvent`]) are
    /// recorded for the owning router to drain via
    /// [`ServerCore::take_route_events`].
    pub fn enable_route_log(&mut self) {
        self.route_log_enabled = true;
    }

    /// Drains the recorded routing-relevant lifecycle changes, in order.
    pub fn take_route_events(&mut self) -> Vec<RouteEvent<E>> {
        std::mem::take(&mut self.route_log)
    }

    #[inline]
    fn route_event(&mut self, event: RouteEvent<E>) {
        if self.route_log_enabled {
            self.route_log.push(event);
        }
    }

    /// Refreshes the liveness timestamp of the instance bound to
    /// `endpoint`, as if it had produced traffic. Routers call this when
    /// they answer a message on the core's behalf (merged instance
    /// queries, cross-shard command delivery), so the sender is not
    /// idle-quarantined despite being active.
    pub fn touch(&mut self, endpoint: E) {
        if let Some(id) = self.registry.instance_at(endpoint) {
            self.last_seen.insert(id, self.now_us);
        }
    }

    /// Whether this core issued (and still honors) `token` as a resume
    /// credential.
    pub fn owns_resume_token(&self, token: u64) -> bool {
        self.tokens.contains_key(&token)
    }

    /// Number of live resume tokens (router invariant checks).
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// The couple-component of `id` at instance granularity — the shard
    /// key. Empty when `id` is not registered here; always includes `id`
    /// itself otherwise (an uncoupled instance is a singleton component).
    pub fn component_of(&self, id: InstanceId) -> Vec<InstanceId> {
        if !self.registry.contains(id) {
            return Vec::new();
        }
        let mut members = self.couples.instance_component(id);
        // The BFS only sees instances with coupled objects; keep the
        // component closed over membership regardless.
        members.retain(|m| self.registry.contains(*m));
        if !members.contains(&id) {
            members.push(id);
            members.sort();
        }
        members
    }

    /// The server-wide invariant pack (§2.2/§3.2), promoted from the lock
    /// table's index check into a whole-database consistency audit. The
    /// schedule-exploring checker (`crates/server/tests/lock_model.rs`)
    /// runs it after every step of every explored interleaving; production
    /// message paths run it under `debug_assertions`.
    ///
    /// Checked invariants:
    ///
    /// * registry endpoint index ↔ instance records agree, ids never
    ///   reused ([`Registry::check_invariants`]);
    /// * lock-table holder map ↔ reverse index agree
    ///   ([`LockTable::check_invariants`]);
    /// * couple links ↔ adjacency agree
    ///   ([`CoupleDirectory::check_invariants`]);
    /// * no lost or leaked locks: every held lock belongs to a live
    ///   multiple-execution round, and every live round still holds at
    ///   least one lock (its group cannot have been unlocked twice);
    /// * no deadlock: locks are acquired atomically per group
    ///   ([`LockTable::try_lock_group`]), so the wait-for graph has no
    ///   edges between execs; what must hold instead is that every
    ///   instance a live round is waiting on (`ExecuteDone` owed) is a
    ///   bound, reachable instance — a round waiting on a dead or
    ///   quarantined connection would hold its group's locks forever;
    /// * transfer-liveness accounting: each transfer group's
    ///   `outstanding` equals its live push legs plus pull legs, and no
    ///   leg or pull references a dropped group (a late reply would
    ///   otherwise resurrect state for a dead requester);
    /// * liveness bookkeeping: quarantined instances are registered but
    ///   unbound, resume tokens form a bijection with their instances,
    ///   and traffic timestamps only exist for registered instances.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.registry.check_invariants()?;
        self.locks.check_invariants()?;
        self.couples.check_invariants()?;
        // Lock ↔ exec liveness, both directions.
        let mut holders: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (object, exec) in self.locks.held_locks() {
            if !self.execs.contains_key(&exec) {
                return Err(format!("lock on {object} held by finished exec {exec}"));
            }
            holders.insert(exec);
        }
        for (exec_id, exec) in &self.execs {
            if !holders.contains(exec_id) {
                return Err(format!("live exec {exec_id} holds no locks (doubled unlock?)"));
            }
            for (inst, owed) in &exec.owed {
                if *owed > 0 && !self.registry.is_bound(*inst) {
                    return Err(format!(
                        "exec {exec_id} waits on {owed} done(s) from unreachable instance {inst}"
                    ));
                }
            }
        }
        // Transfer accounting: outstanding == live legs + live pulls.
        let mut per_group: HashMap<u64, usize> = HashMap::new();
        for (req_id, t) in &self.transfers {
            if !self.transfer_groups.contains_key(&t.group) {
                return Err(format!("push leg {req_id} references dropped group {}", t.group));
            }
            *per_group.entry(t.group).or_insert(0) += 1;
        }
        for (req_id, p) in &self.pending_pulls {
            if !self.transfer_groups.contains_key(&p.group) {
                return Err(format!("pull leg {req_id} references dropped group {}", p.group));
            }
            *per_group.entry(p.group).or_insert(0) += 1;
        }
        for (group_id, g) in &self.transfer_groups {
            let live = per_group.get(group_id).copied().unwrap_or(0);
            if g.outstanding != live {
                return Err(format!(
                    "group {group_id} outstanding={} but {live} live leg(s)",
                    g.outstanding
                ));
            }
            if !self.registry.contains(g.requester) {
                return Err(format!(
                    "group {group_id} awaited by unregistered instance {}",
                    g.requester
                ));
            }
        }
        // Liveness bookkeeping.
        for id in self.quarantined.keys() {
            if !self.registry.contains(*id) {
                return Err(format!("quarantined instance {id} is not registered"));
            }
            if self.registry.is_bound(*id) {
                return Err(format!("quarantined instance {id} is still bound to an endpoint"));
            }
        }
        for (token, id) in &self.tokens {
            if self.token_of.get(id) != Some(token) {
                return Err(format!("resume token of {id} diverged between the two maps"));
            }
        }
        for (id, token) in &self.token_of {
            if self.tokens.get(token) != Some(id) {
                return Err(format!("resume token of {id} missing from the token index"));
            }
        }
        for id in self.last_seen.keys() {
            if !self.registry.contains(*id) {
                return Err(format!("traffic timestamp retained for unregistered instance {id}"));
            }
        }
        // Delta sync bases must be purged with their instance, or the
        // cache grows without bound under register/leave churn.
        for object in self.sync_bases.keys() {
            if !self.registry.contains(object.instance) {
                return Err(format!("sync base retained for unregistered object {object}"));
            }
        }
        Ok(())
    }

    /// Runs [`ServerCore::check_invariants`] in debug builds, panicking on
    /// violation; compiled out of release builds.
    #[inline]
    fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            // audit: infallible — deliberate debug-build assert, compiled out of release binaries
            panic!("server invariant violated: {e}");
        }
    }

    /// Accounts one incoming message's outgoing batch.
    fn note_outgoing(&mut self, out: &Outgoing<E>) {
        let n = out.message_count();
        self.messages_out += n as u64;
        self.max_fanout = self.max_fanout.max(n);
        for item in out.items() {
            match item {
                Delivery::Unicast(_, m) => {
                    if matches!(m, Message::PermissionDenied { .. }) {
                        self.permission_denials += 1;
                    }
                }
                Delivery::Shared(endpoints, frame) => {
                    self.shared_frames_encoded += 1;
                    self.shared_deliveries += endpoints.len() as u64;
                    self.shared_bytes_encoded += frame.len() as u64;
                    self.shared_bytes_delivered += (frame.len() * endpoints.len()) as u64;
                }
            }
        }
    }

    /// Effective right of `user` on `object`: the object's owner always
    /// has write access; otherwise the permission table decides.
    fn right_of(&self, user: UserId, object: &GlobalObjectId) -> AccessRight {
        if self.registry.user_of(object.instance) == Some(user) {
            return AccessRight::Write;
        }
        self.access.right_of(user, object)
    }

    fn to_instance(&self, id: InstanceId, msg: Message, out: &mut Outgoing<E>) {
        if let Some(e) = self.registry.endpoint_of(id) {
            out.push_unicast(e, msg);
        }
    }

    /// Delivers one identical message to a set of instances. With more
    /// than one reachable endpoint the message is encoded exactly once
    /// into a [`SharedFrame`] fanned out to all of them; with a single
    /// receiver it stays an owned unicast message (pre-framing for one
    /// destination buys nothing).
    fn to_group(&self, instances: &[InstanceId], msg: Message, out: &mut Outgoing<E>) {
        let mut endpoints: Vec<E> =
            instances.iter().filter_map(|id| self.registry.endpoint_of(*id)).collect();
        if endpoints.len() > 1 {
            out.push_shared(endpoints, codec::frame_message_shared(&msg));
        } else if let Some(endpoint) = endpoints.pop() {
            out.push_unicast(endpoint, msg);
        }
    }

    /// Handles a transport-level disconnect of `endpoint`.
    ///
    /// With the default zero grace period this behaves exactly like a
    /// graceful `Deregister` (§3.2: decoupling "is applied automatically
    /// when ... an application instance terminates"). With a non-zero
    /// grace period the instance is quarantined instead: its execution
    /// and transfer participation is severed immediately (peers must not
    /// block on a dead connection) but its registration record, couples,
    /// and access rights survive until the grace expires, so a `Rejoin`
    /// carrying its resume token can reclaim them.
    pub fn disconnect(&mut self, endpoint: E) -> Outgoing<E> {
        let out = match self.registry.instance_at(endpoint) {
            Some(id) if self.liveness.grace_us > 0 => self.quarantine_instance(id),
            Some(id) => self.deregister_instance(id),
            None => Outgoing::new(),
        };
        self.note_outgoing(&out);
        self.debug_check_invariants();
        out
    }

    /// Advances the server's virtual clock, expiring quarantines whose
    /// grace period has run out (each runs the regular deregistration
    /// path, fanning out `CoupleUpdate`s) and quarantining bound
    /// instances that have been silent past the idle timeout.
    ///
    /// Transports call this periodically; the deterministic simulation
    /// calls it with the virtual clock.
    pub fn tick(&mut self, now_us: u64) -> Outgoing<E> {
        if now_us < self.now_us {
            // Clamp: a rewinding clock (NTP step, suspend/resume, a
            // misbehaving caller) must not re-arm grace periods that
            // already ran down. Count it so the regression is visible.
            self.clock_regressions += 1;
        } else {
            self.now_us = now_us;
        }
        let mut out = Outgoing::new();
        let mut expired: Vec<InstanceId> = self
            .quarantined
            .iter()
            .filter(|(_, q)| q.deadline_us <= self.now_us)
            .map(|(id, _)| *id)
            .collect();
        expired.sort();
        for id in expired {
            self.quarantined.remove(&id);
            self.quarantine_expiries += 1;
            let dereg = self.deregister_instance(id);
            out.extend(dereg);
        }
        if self.liveness.idle_timeout_us > 0 && self.liveness.grace_us > 0 {
            let mut idle: Vec<InstanceId> = self
                .last_seen
                .iter()
                .filter(|(id, seen)| {
                    self.registry.is_bound(**id)
                        && seen.saturating_add(self.liveness.idle_timeout_us) <= self.now_us
                })
                .map(|(id, _)| *id)
                .collect();
            idle.sort();
            for id in idle {
                let q = self.quarantine_instance(id);
                out.extend(q);
            }
        }
        self.admission.prune(self.now_us);
        self.note_outgoing(&out);
        self.debug_check_invariants();
        out
    }

    /// Deterministic resume-token generation (SplitMix64 over a counter):
    /// unique per issuance, reproducible in the simulation.
    fn mint_token(&mut self, id: InstanceId) -> u64 {
        let token = loop {
            let mut z = self.next_token_seq.wrapping_add(0x9e37_79b9_7f4a_7c15);
            self.next_token_seq += self.id_stride;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if !self.tokens.contains_key(&z) {
                break z;
            }
        };
        if let Some(old) = self.token_of.insert(id, token) {
            self.tokens.remove(&old);
            self.route_event(RouteEvent::TokenRetired { token: old });
        }
        self.tokens.insert(token, id);
        self.route_event(RouteEvent::TokenIssued { token, instance: id });
        token
    }

    /// Handles a pre-registration `Rejoin`: a returning connection
    /// presenting the resume token of a quarantined instance reclaims
    /// that instance — id, couples, access rights — on its new endpoint.
    fn do_rejoin(&mut self, endpoint: E, resume_token: u64) -> Outgoing<E> {
        let resumable = self
            .tokens
            .get(&resume_token)
            .copied()
            .filter(|id| self.quarantined.contains_key(id))
            .filter(|_| self.registry.instance_at(endpoint).is_none());
        let mut out = Outgoing::new();
        let Some(id) = resumable else {
            self.rejoins_rejected += 1;
            out.push_unicast(
                endpoint,
                Message::ErrorReply {
                    context: "rejoin".to_owned(),
                    reason: "unknown or expired resume token".to_owned(),
                },
            );
            return out;
        };
        self.quarantined.remove(&id);
        self.registry.rebind(id, endpoint);
        self.route_event(RouteEvent::Bound { instance: id, endpoint });
        self.last_seen.insert(id, self.now_us);
        self.resumes += 1;
        // Rotate the token: a resume credential is single-use.
        let fresh = self.mint_token(id);
        out.push_unicast(endpoint, Message::Welcome { instance: id });
        out.push_unicast(endpoint, Message::SessionToken { resume_token: fresh });
        out
    }

    /// Processes one message from `endpoint`, returning the messages to
    /// send in response (to any endpoints).
    pub fn handle(&mut self, endpoint: E, msg: Message) -> Outgoing<E> {
        let out = self.handle_inner(endpoint, msg);
        self.debug_check_invariants();
        out
    }

    /// Runs admission control for one inbound message without processing
    /// it. `None` admits (and charges the message against the endpoint's
    /// budgets); `Some(out)` sheds, where `out` carries at most one
    /// [`Message::Busy`] advisory per endpoint per budget window and, if
    /// sustained abuse crossed the strike threshold, the §3.2
    /// auto-decoupling fan-out of the evicted sender.
    ///
    /// [`ServerCore::handle`] calls this itself; the only external caller
    /// is the shard router, for messages it answers without forwarding to
    /// a core (merged queries, cross-shard reads and command delivery).
    /// Calling it *and* `handle` for the same message double-charges the
    /// budget.
    pub fn admit(&mut self, endpoint: E, msg: &Message) -> Option<Outgoing<E>> {
        let verdict = self.admission.admit(endpoint, msg, self.now_us);
        let Verdict::Shed { class, reply_busy, escalate } = verdict else {
            return None;
        };
        match class {
            MessageClass::Control => self.overload_sheds_control += 1,
            MessageClass::Bulk => self.overload_sheds_bulk += 1,
            // Liveness is never shed.
            MessageClass::Liveness => {}
        }
        let mut out = Outgoing::new();
        if reply_busy {
            self.busy_replies += 1;
            let retry_after_ms = self.admission.config().retry_after_ms;
            out.push_unicast(endpoint, Message::Busy { retry_after_ms });
        }
        if let Some(id) = self.registry.instance_at(endpoint) {
            // A shed message still proves the peer is alive: keep the
            // idle-timeout clock from quarantining a throttled-but-live
            // client.
            self.last_seen.insert(id, self.now_us);
            if escalate {
                self.overload_evictions += 1;
                self.admission.forget(&endpoint);
                let evicted = if self.liveness.grace_us > 0 {
                    self.quarantine_instance(id)
                } else {
                    self.deregister_instance(id)
                };
                out.extend(evicted);
            }
        }
        self.note_outgoing(&out);
        self.debug_check_invariants();
        Some(out)
    }

    fn handle_inner(&mut self, endpoint: E, msg: Message) -> Outgoing<E> {
        // Admission control runs before anything else — including
        // registration, so a pre-registration `Register` flood is shed
        // like any other control traffic.
        if let Some(shed) = self.admit(endpoint, &msg) {
            return shed;
        }
        // Registration and rejoin are the only messages legal before a
        // Welcome.
        if let Message::Register { user, host, app_name } = &msg {
            let id = self.registry.register(endpoint, *user, host, app_name);
            self.route_event(RouteEvent::Bound { instance: id, endpoint });
            self.last_seen.insert(id, self.now_us);
            let mut out = Outgoing::new();
            out.push_unicast(endpoint, Message::Welcome { instance: id });
            if self.liveness.grace_us > 0 {
                let token = self.mint_token(id);
                out.push_unicast(endpoint, Message::SessionToken { resume_token: token });
            }
            self.note_outgoing(&out);
            return out;
        }
        if let Message::Rejoin { resume_token } = &msg {
            let out = self.do_rejoin(endpoint, *resume_token);
            self.note_outgoing(&out);
            return out;
        }
        let Some(from) = self.registry.instance_at(endpoint) else {
            let mut out = Outgoing::new();
            out.push_unicast(
                endpoint,
                Message::ErrorReply {
                    context: msg.kind_name().to_owned(),
                    reason: "endpoint is not registered".to_owned(),
                },
            );
            self.note_outgoing(&out);
            return out;
        };
        self.last_seen.insert(from, self.now_us);
        let out = self.handle_registered(from, msg);
        self.note_outgoing(&out);
        out
    }

    fn handle_registered(&mut self, from: InstanceId, msg: Message) -> Outgoing<E> {
        let mut out = Outgoing::new();
        match msg {
            Message::Register { .. } | Message::Rejoin { .. } => {
                // audit: infallible — handle() dispatches Register/Rejoin before reaching here
                unreachable!("handled in handle()")
            }
            Message::Ping { nonce } => {
                self.pings += 1;
                self.to_instance(from, Message::Pong { nonce }, &mut out);
            }
            // Any traffic counts as liveness; a Pong needs no reply.
            Message::Pong { .. } => {}
            Message::Deregister => {
                out.extend(self.deregister_instance(from));
            }
            Message::QueryInstances => {
                let entries = self.registry.all();
                self.to_instance(from, Message::InstanceList { entries }, &mut out);
            }
            Message::Couple { src, dst } | Message::RemoteCouple { a: src, b: dst } => {
                out.extend(self.do_couple(from, src, dst));
            }
            Message::Decouple { src, dst } | Message::RemoteDecouple { a: src, b: dst } => {
                out.extend(self.do_decouple(from, src, dst));
            }
            Message::ListCoupled { object } => {
                let coupled = self.couples.coupled_with(&object);
                self.to_instance(from, Message::CoupledSet { object, coupled }, &mut out);
            }
            Message::ObjectDestroyed { object } => {
                if object.instance != from {
                    self.to_instance(
                        from,
                        Message::PermissionDenied {
                            what: format!("destroy notification for foreign object {object}"),
                        },
                        &mut out,
                    );
                } else {
                    let survivors = self.couples.remove_object(&object);
                    if self.history.forget(&object) {
                        self.history_purges += 1;
                    }
                    self.sync_bases.remove(&object);
                    // Each survivor (and the destroyer) learns the new
                    // grouping of the remaining objects.
                    for o in &survivors {
                        let group = self.couples.group_of(o);
                        let members = self.couples.instances_in_group(o);
                        self.to_group(&members, Message::CoupleUpdate { group }, &mut out);
                    }
                    self.to_instance(from, Message::CoupleUpdate { group: vec![object] }, &mut out);
                }
            }
            Message::Event { origin, event, seq } => {
                out.extend(self.do_event(from, origin, event, seq));
            }
            Message::ExecuteDone { exec_id } => {
                out.extend(self.do_execute_done(from, exec_id));
            }
            Message::CopyFrom { src, dst, mode, req_id } => {
                out.extend(self.do_copy(from, src, dst, mode, req_id, None));
            }
            Message::RemoteCopy { src, dst, mode, req_id } => {
                out.extend(self.do_copy(from, src, dst, mode, req_id, None));
            }
            Message::CopyTo { src, dst, snapshot, mode, req_id } => {
                out.extend(self.do_copy(from, src, dst, mode, req_id, Some(snapshot)));
            }
            Message::StateReply { req_id, snapshot } => {
                out.extend(self.do_state_reply(req_id, snapshot));
            }
            Message::StateApplied { req_id, overwritten, error } => {
                out.extend(self.do_state_applied(req_id, overwritten, error));
            }
            Message::UndoState { object } => {
                out.extend(self.do_undo(from, object, TransferKind::Undo));
            }
            Message::RedoState { object } => {
                out.extend(self.do_undo(from, object, TransferKind::Redo));
            }
            Message::SetPermission { user, object, right } => {
                if object.instance == from {
                    self.access.set(user, object, right);
                } else {
                    self.to_instance(
                        from,
                        Message::PermissionDenied {
                            what: format!("set-permission on {object} (not the owner)"),
                        },
                        &mut out,
                    );
                }
            }
            Message::CoSendCommand { to, command, payload } => {
                out.extend(self.do_command(from, to, command, payload));
            }
            // Server-originated kinds arriving at the server are protocol
            // misuse; answer with an error instead of panicking. The
            // variants are listed exhaustively — no wildcard — so adding a
            // `Message` variant without deciding its dispatch here is a
            // compile error (and a `cosoft-audit` lint failure).
            unexpected @ (Message::Welcome { .. }
            | Message::InstanceList { .. }
            | Message::SessionToken { .. }
            | Message::CoupleUpdate { .. }
            | Message::CoupledSet { .. }
            | Message::EventGranted { .. }
            | Message::EventRejected { .. }
            | Message::ExecuteEvent { .. }
            | Message::GroupUnlocked { .. }
            | Message::StateRequest { .. }
            | Message::ApplyState { .. }
            | Message::ApplyDelta { .. }
            | Message::PermissionDenied { .. }
            | Message::CommandDelivery { .. }
            | Message::ErrorReply { .. }
            | Message::Busy { .. }) => {
                self.unexpected_messages += 1;
                self.to_instance(
                    from,
                    Message::ErrorReply {
                        context: unexpected.kind_name().to_owned(),
                        reason: "message kind is server-to-client only".to_owned(),
                    },
                    &mut out,
                );
            }
        }
        out
    }

    // ---- coupling ---------------------------------------------------------

    fn check_objects_exist(&self, objs: &[&GlobalObjectId]) -> Result<(), String> {
        for o in objs {
            if !self.registry.contains(o.instance) {
                return Err(format!("instance {} is not registered", o.instance));
            }
        }
        Ok(())
    }

    fn do_couple(
        &mut self,
        from: InstanceId,
        src: GlobalObjectId,
        dst: GlobalObjectId,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        if let Err(reason) = self.check_objects_exist(&[&src, &dst]) {
            self.to_instance(
                from,
                Message::ErrorReply { context: "couple".into(), reason },
                &mut out,
            );
            return out;
        }
        let Some(user) = self.registry.user_of(from) else {
            // Caller races a deregistration: nothing to authorize.
            return out;
        };
        for o in [&src, &dst] {
            if !self.right_of(user, o).allows_write() {
                self.to_instance(
                    from,
                    Message::PermissionDenied { what: format!("couple {o}") },
                    &mut out,
                );
                return out;
            }
        }
        self.couples.couple(src.clone(), dst);
        // "The coupling information is replicated for each object": every
        // instance owning a group member receives the full closure —
        // encoded once, delivered to all of them.
        let group = self.couples.group_of(&src);
        let members = self.couples.instances_in_group(&src);
        self.to_group(&members, Message::CoupleUpdate { group }, &mut out);
        out
    }

    fn do_decouple(
        &mut self,
        from: InstanceId,
        src: GlobalObjectId,
        dst: GlobalObjectId,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        if !self.couples.decouple(&src, &dst) {
            self.to_instance(
                from,
                Message::ErrorReply {
                    context: "decouple".into(),
                    reason: format!("no couple link between {src} and {dst}"),
                },
                &mut out,
            );
            return out;
        }
        // The removal may have split the group; notify both halves (they
        // may still be one group if a cycle keeps them connected).
        let group_a = self.couples.group_of(&src);
        let group_b = self.couples.group_of(&dst);
        let split = group_b != group_a;
        let members_a = self.couples.instances_in_group(&src);
        self.to_group(&members_a, Message::CoupleUpdate { group: group_a }, &mut out);
        if split {
            let members_b = self.couples.instances_in_group(&dst);
            self.to_group(&members_b, Message::CoupleUpdate { group: group_b }, &mut out);
        }
        out
    }

    // ---- multiple execution (§3.2) ----------------------------------------

    fn do_event(
        &mut self,
        from: InstanceId,
        origin: GlobalObjectId,
        event: cosoft_wire::UiEvent,
        seq: u64,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        let Some(user) = self.registry.user_of(from) else {
            // Caller races a deregistration: nothing to authorize.
            return out;
        };
        if !self.right_of(user, &origin).allows_write() {
            self.to_instance(from, Message::EventRejected { seq }, &mut out);
            self.rejected_events += 1;
            return out;
        }
        // Events inside a coupled complex object route through the
        // enclosing object's couple links: resolve the coupled base and
        // the event path relative to it.
        let base = self.couples.coupled_base_of(&origin).unwrap_or_else(|| origin.clone());
        let rel = origin.path.strip_prefix(&base.path).unwrap_or_else(ObjectPath::root);
        let group = self.couples.group_of(&base);
        let exec_id = self.next_exec;
        if self.locks.try_lock_group(&group, exec_id).is_err() {
            self.rejected_events += 1;
            self.lock_conflicts += 1;
            self.to_instance(from, Message::EventRejected { seq }, &mut out);
            return out;
        }
        self.next_exec += self.id_stride;
        self.granted_events += 1;

        let mut owed: HashMap<InstanceId, usize> = HashMap::new();
        let mut targets = Vec::with_capacity(group.len());
        // Origin instance owes one done for its own callback execution.
        *owed.entry(from).or_insert(0) += 1;
        targets.push(origin.clone());
        self.to_instance(from, Message::EventGranted { seq, exec_id }, &mut out);
        // The event body — the heavy part of `ExecuteEvent` — is encoded
        // once (lazily, in case every other member is quarantined) and
        // spliced behind each leg's tiny header (exec id + target path).
        let mut event_bytes: Option<Bytes> = None;
        for member in &group {
            if *member == base {
                continue;
            }
            // A quarantined member can neither execute the event nor send
            // `ExecuteDone`; skip it so the group's locks don't hang on a
            // dead connection. It reconverges by state on rejoin.
            let Some(endpoint) = self.registry.endpoint_of(member.instance) else {
                continue;
            };
            *owed.entry(member.instance).or_insert(0) += 1;
            let target = member.path.join(&rel);
            targets.push(GlobalObjectId::new(member.instance, target.clone()));
            let payload = if let Some(b) = &event_bytes {
                self.payload_reuses += 1;
                b.clone()
            } else {
                self.payload_encodes += 1;
                event_bytes.insert(codec::encode_event_shared(&event)).clone()
            };
            out.push_shared(vec![endpoint], codec::frame_execute_event(exec_id, &target, &payload));
        }
        self.execs.insert(exec_id, ExecState { targets, owed });
        out
    }

    fn do_execute_done(&mut self, from: InstanceId, exec_id: u64) -> Outgoing<E> {
        let mut out = Outgoing::new();
        let Some(exec) = self.execs.get_mut(&exec_id) else {
            return out;
        };
        match exec.owed.get_mut(&from) {
            Some(n) if *n > 0 => *n -= 1,
            Some(_) | None => return out, // spurious done; ignore
        }
        if exec.owed.values().all(|&n| n == 0) {
            if let Some(exec) = self.execs.remove(&exec_id) {
                self.finish_exec(exec_id, &exec.targets, &mut out);
            }
        }
        out
    }

    fn finish_exec(&mut self, exec_id: u64, targets: &[GlobalObjectId], out: &mut Outgoing<E>) {
        self.locks.unlock_exec(exec_id);
        // Tell each involved instance which of its local objects to
        // re-enable: the paths the event actually executed on.
        let mut per_instance: HashMap<InstanceId, Vec<ObjectPath>> = HashMap::new();
        for t in targets {
            per_instance.entry(t.instance).or_default().push(t.path.clone());
        }
        for (inst, objects) in per_instance {
            self.to_instance(inst, Message::GroupUnlocked { exec_id, objects }, out);
        }
    }

    // ---- synchronization by state (§3.1) -----------------------------------

    fn do_copy(
        &mut self,
        from: InstanceId,
        src: GlobalObjectId,
        dst: GlobalObjectId,
        mode: CopyMode,
        client_req: u64,
        pushed_snapshot: Option<cosoft_wire::StateNode>,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        if let Err(reason) = self.check_objects_exist(&[&src, &dst]) {
            self.to_instance(
                from,
                Message::ErrorReply { context: "copy".into(), reason },
                &mut out,
            );
            return out;
        }
        let Some(user) = self.registry.user_of(from) else {
            // Caller races a deregistration: nothing to authorize.
            return out;
        };
        if !self.right_of(user, &src).allows_read() {
            self.to_instance(
                from,
                Message::PermissionDenied { what: format!("read state of {src}") },
                &mut out,
            );
            return out;
        }
        if dst.instance != from && !self.right_of(user, &dst).allows_write() {
            self.to_instance(
                from,
                Message::PermissionDenied { what: format!("write state of {dst}") },
                &mut out,
            );
            return out;
        }
        let group_id = self.next_transfer_group;
        self.next_transfer_group += self.id_stride;
        self.transfers_started += 1;
        self.transfer_groups.insert(
            group_id,
            TransferGroup { requester: from, client_req, outstanding: 0, failed: None },
        );
        match pushed_snapshot {
            // CopyTo: the sender supplied the snapshot; apply directly.
            Some(snapshot) => {
                self.fan_out_apply(group_id, &dst, snapshot, mode, TransferKind::Copy, &mut out);
                // All destinations unreachable -> the group failed with
                // zero legs outstanding; report instead of hanging.
                self.maybe_finish_group(group_id, &mut out);
            }
            // CopyFrom / RemoteCopy: pull the state from the source first.
            None => {
                // A quarantined source will never answer a `StateRequest`;
                // fail the transfer now rather than after the grace period.
                if !self.registry.is_bound(src.instance) {
                    if let Some(g) = self.transfer_groups.get_mut(&group_id) {
                        g.failed = Some("source instance is unreachable".into());
                    }
                    self.maybe_finish_group(group_id, &mut out);
                    return out;
                }
                let req_id = self.next_transfer;
                self.next_transfer += self.id_stride;
                self.pending_pulls
                    .insert(req_id, PendingPull { src: src.instance, dst, mode, group: group_id });
                if let Some(g) = self.transfer_groups.get_mut(&group_id) {
                    g.outstanding += 1;
                }
                self.to_instance(
                    src.instance,
                    Message::StateRequest { req_id, path: src.path.clone() },
                    &mut out,
                );
            }
        }
        out
    }

    /// Sends `ApplyState` for `dst` *and every object coupled with it*:
    /// a state copy onto a coupled object must keep its whole group
    /// consistent. Each leg gets its own transfer id so the overwritten
    /// states land in the right history stacks.
    fn fan_out_apply(
        &mut self,
        group_id: u64,
        dst: &GlobalObjectId,
        snapshot: cosoft_wire::StateNode,
        mode: CopyMode,
        kind: TransferKind,
        out: &mut Outgoing<E>,
    ) {
        // The group can be gone (its requester died between the pull and
        // the reply) or already failed (an earlier leg errored). Fanning
        // out `ApplyState` then would create legs no one will collect.
        match self.transfer_groups.get(&group_id) {
            Some(g) if g.failed.is_none() => {}
            Some(_) | None => return,
        }
        // Quarantined destinations cannot receive state; they reconverge
        // via their own `CopyFrom` resync on rejoin instead of holding
        // the whole transfer group hostage.
        let targets: Vec<GlobalObjectId> = self
            .couples
            .group_of(dst)
            .into_iter()
            .filter(|t| self.registry.is_bound(t.instance))
            .collect();
        let Some(group) = self.transfer_groups.get_mut(&group_id) else {
            return;
        };
        if targets.is_empty() {
            group.failed = Some("destination instance is unreachable".into());
            return;
        }
        group.outstanding += targets.len();
        // The snapshot — by far the heavy part of a state transfer — is
        // serialized exactly once; each leg's frame splices a shared
        // payload behind its own req-id and target path. Destinations
        // holding a known-good sync base (they acknowledged an earlier
        // snapshot) get an attribute-level `ApplyDelta` diffed against
        // that base instead of the full snapshot; deltas are cached per
        // base version, so one encoded delta serves every group member
        // that last acknowledged the same state.
        let snapshot_bytes = codec::encode_state_shared(&snapshot);
        let new_version = delta::version_of_encoded(&snapshot_bytes);
        let state = Arc::new(snapshot);
        self.payload_encodes += 1;
        let mut snapshot_spliced = false;
        let mut delta_cache: HashMap<u64, Bytes> = HashMap::new();
        for target in targets {
            let req_id = self.next_transfer;
            self.next_transfer += self.id_stride;
            let Some(endpoint) = self.registry.endpoint_of(target.instance) else {
                // Cannot happen (targets are filtered to bound instances)
                // but losing the endpoint must not lose the leg record.
                self.transfers.insert(
                    req_id,
                    Transfer { dst: target.clone(), kind, group: group_id, sync: None },
                );
                continue;
            };
            let (frame, via_delta) = match self.sync_bases.get(&target) {
                Some((base_version, base)) => {
                    let payload = match delta_cache.entry(*base_version) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            self.payload_reuses += 1;
                            e.into_mut()
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            self.payload_encodes += 1;
                            e.insert(codec::encode_delta_shared(&delta::diff(base, &state)))
                        }
                    };
                    let frame = codec::frame_apply_delta(
                        req_id,
                        &target.path,
                        *base_version,
                        new_version,
                        payload,
                        mode,
                    );
                    (frame, true)
                }
                None => {
                    if snapshot_spliced {
                        self.payload_reuses += 1;
                    }
                    snapshot_spliced = true;
                    (codec::frame_apply_state(req_id, &target.path, &snapshot_bytes, mode), false)
                }
            };
            if via_delta {
                self.delta_legs_sent += 1;
            }
            self.transfers.insert(
                req_id,
                Transfer {
                    dst: target.clone(),
                    kind,
                    group: group_id,
                    sync: Some(AppliedSync {
                        version: new_version,
                        state: state.clone(),
                        snapshot_bytes: snapshot_bytes.clone(),
                        mode,
                        via_delta,
                    }),
                },
            );
            out.push_shared(vec![endpoint], frame);
        }
    }

    fn do_state_reply(
        &mut self,
        req_id: u64,
        snapshot: Option<cosoft_wire::StateNode>,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        let Some(PendingPull { dst, mode, group: group_id, .. }) =
            self.pending_pulls.remove(&req_id)
        else {
            return out;
        };
        if let Some(g) = self.transfer_groups.get_mut(&group_id) {
            g.outstanding -= 1;
        }
        match snapshot {
            Some(snapshot) => {
                self.fan_out_apply(group_id, &dst, snapshot, mode, TransferKind::Copy, &mut out);
                self.maybe_finish_group(group_id, &mut out);
            }
            None => {
                if let Some(g) = self.transfer_groups.get_mut(&group_id) {
                    g.failed = Some("source object does not exist".into());
                }
                self.maybe_finish_group(group_id, &mut out);
            }
        }
        out
    }

    fn maybe_finish_group(&mut self, group_id: u64, out: &mut Outgoing<E>) {
        let done = self.transfer_groups.get(&group_id).map(|g| g.outstanding == 0).unwrap_or(false);
        if !done {
            return;
        }
        let Some(g) = self.transfer_groups.remove(&group_id) else {
            return;
        };
        match g.failed {
            Some(reason) => {
                self.transfers_failed += 1;
                self.to_instance(
                    g.requester,
                    Message::ErrorReply { context: "copy".into(), reason },
                    out,
                );
            }
            None => {
                self.transfers_completed += 1;
                self.to_instance(
                    g.requester,
                    Message::StateApplied { req_id: g.client_req, overwritten: None, error: None },
                    out,
                );
            }
        }
    }

    fn do_state_applied(
        &mut self,
        req_id: u64,
        overwritten: Option<cosoft_wire::StateNode>,
        error: Option<String>,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        let Some(t) = self.transfers.remove(&req_id) else {
            return out;
        };
        // A refused delta leg — the receiver's sync base was unknown or
        // diverged — falls back to the full snapshot: drop the stale
        // base, mint a replacement leg splicing the stored encoding, and
        // leave the group's accounting untouched (outstanding stays the
        // same, no failure is recorded, the other legs are unaffected).
        if error.is_some() && t.sync.as_ref().is_some_and(|s| s.via_delta) {
            self.sync_bases.remove(&t.dst);
            if let Some(endpoint) = self.registry.endpoint_of(t.dst.instance) {
                self.delta_fallbacks += 1;
                let new_req = self.next_transfer;
                self.next_transfer += self.id_stride;
                let mut fallback = t;
                if let Some(sync) = fallback.sync.as_mut() {
                    sync.via_delta = false;
                    self.payload_reuses += 1;
                    out.push_shared(
                        vec![endpoint],
                        codec::frame_apply_state(
                            new_req,
                            &fallback.dst.path,
                            &sync.snapshot_bytes,
                            sync.mode,
                        ),
                    );
                }
                self.transfers.insert(new_req, fallback);
                return out;
            }
            // No endpoint to resend to: fall through to the normal
            // failure accounting below.
            if let Some(g) = self.transfer_groups.get_mut(&t.group) {
                g.outstanding -= 1;
                g.failed = Some("delta fallback target unreachable".into());
            }
            self.maybe_finish_group(t.group, &mut out);
            return out;
        }
        let succeeded = error.is_none();
        if let Some(g) = self.transfer_groups.get_mut(&t.group) {
            g.outstanding -= 1;
            if let Some(reason) = error {
                g.failed = Some(reason);
            }
        }
        // A successful apply makes the carried state the destination's
        // sync base: the next transfer to this object can travel as an
        // attribute-level delta against it.
        if succeeded {
            if let Some(sync) = &t.sync {
                self.sync_bases.insert(t.dst.clone(), (sync.version, sync.state.clone()));
            }
        }
        if let Some(prev) = overwritten {
            match t.kind {
                TransferKind::Copy => self.history.record_overwrite(t.dst.clone(), prev),
                TransferKind::Undo => self.history.record_undone(t.dst.clone(), prev),
                TransferKind::Redo => self.history.record_redone(t.dst.clone(), prev),
            }
        }
        self.maybe_finish_group(t.group, &mut out);
        out
    }

    fn do_undo(
        &mut self,
        from: InstanceId,
        object: GlobalObjectId,
        kind: TransferKind,
    ) -> Outgoing<E> {
        let mut out = Outgoing::new();
        let Some(user) = self.registry.user_of(from) else {
            // Caller races a deregistration: nothing to authorize.
            return out;
        };
        if !self.right_of(user, &object).allows_write() {
            self.to_instance(
                from,
                Message::PermissionDenied { what: format!("undo/redo on {object}") },
                &mut out,
            );
            return out;
        }
        let popped = match kind {
            TransferKind::Undo => self.history.pop_undo(&object),
            TransferKind::Redo => self.history.pop_redo(&object),
            TransferKind::Copy => None,
        };
        let Some(snapshot) = popped else {
            self.to_instance(
                from,
                Message::ErrorReply {
                    context: if kind == TransferKind::Undo { "undo" } else { "redo" }.into(),
                    reason: "no historical state recorded".into(),
                },
                &mut out,
            );
            return out;
        };
        let group_id = self.next_transfer_group;
        self.next_transfer_group += self.id_stride;
        self.transfers_started += 1;
        self.transfer_groups.insert(
            group_id,
            TransferGroup { requester: from, client_req: 0, outstanding: 0, failed: None },
        );
        // Undo/redo also fans out to the object's coupling group so the
        // group stays consistent.
        self.fan_out_apply(group_id, &object, snapshot, CopyMode::DestructiveMerge, kind, &mut out);
        self.maybe_finish_group(group_id, &mut out);
        out
    }

    // ---- protocol extension (§3.4) ------------------------------------------

    fn do_command(
        &mut self,
        from: InstanceId,
        to: Target,
        command: String,
        payload: Vec<u8>,
    ) -> Outgoing<E> {
        match self.command_out(from, to, &command, &payload) {
            Ok(out) => out,
            Err(reason) => {
                let mut out = Outgoing::new();
                self.to_instance(
                    from,
                    Message::ErrorReply { context: "co-send-command".into(), reason },
                    &mut out,
                );
                out
            }
        }
    }

    /// Delivers a §3.4 application command on this core's local members
    /// on behalf of `from`, which may be registered on *another* shard:
    /// the shard router fans `Target::Broadcast` to every shard and
    /// routes `Target::Instance`/`Target::Group` to the shard hosting
    /// the target, without migrating the sender's component for a
    /// fire-and-forget delivery.
    ///
    /// # Errors
    ///
    /// Returns the reason an instance-targeted command was undeliverable
    /// (unknown here, or quarantined); the caller owns the sender's
    /// endpoint and builds the `ErrorReply`.
    pub fn deliver_command(
        &mut self,
        from: InstanceId,
        to: Target,
        command: &str,
        payload: &[u8],
    ) -> Result<Outgoing<E>, String> {
        let result = self.command_out(from, to, command, payload);
        if let Ok(out) = &result {
            self.note_outgoing(out);
        }
        self.debug_check_invariants();
        result
    }

    fn command_out(
        &mut self,
        from: InstanceId,
        to: Target,
        command: &str,
        payload: &[u8],
    ) -> Result<Outgoing<E>, String> {
        let mut out = Outgoing::new();
        let delivery = |command: &str, payload: &[u8]| Message::CommandDelivery {
            from,
            command: command.to_owned(),
            payload: payload.to_vec(),
        };
        match to {
            Target::Instance(i) => {
                if self.registry.is_bound(i) {
                    self.to_instance(i, delivery(command, payload), &mut out);
                } else {
                    // Unknown or quarantined: either way the command cannot
                    // be delivered right now, and commands are not queued.
                    return Err(format!("instance {i} is not reachable"));
                }
            }
            Target::Broadcast => {
                let others: Vec<InstanceId> =
                    self.registry.ids().into_iter().filter(|i| *i != from).collect();
                self.to_group(&others, delivery(command, payload), &mut out);
            }
            Target::Group(object) => {
                let members: Vec<InstanceId> = self
                    .couples
                    .instances_in_group(&object)
                    .into_iter()
                    .filter(|i| *i != from)
                    .collect();
                self.to_group(&members, delivery(command, payload), &mut out);
            }
        }
        Ok(out)
    }

    // ---- termination ---------------------------------------------------------

    /// Severs an instance's participation in live protocol work: settles
    /// executions waiting on it, fails transfer legs and pulls touching
    /// it, and drops transfer groups it requested — *including their
    /// orphaned legs*, so a late `StateReply`/`StateApplied` for a dead
    /// requester finds nothing to act on instead of a dangling pull whose
    /// group is gone. Shared by deregistration and quarantine: peers must
    /// never block on a dead connection, whether or not it may return.
    fn sever_instance_io(&mut self, id: InstanceId, out: &mut Outgoing<E>) {
        // Settle pending executions that were waiting on the dead instance.
        let exec_ids: Vec<u64> = self.execs.keys().copied().collect();
        for exec_id in exec_ids {
            let finished = {
                let Some(exec) = self.execs.get_mut(&exec_id) else { continue };
                exec.owed.remove(&id);
                exec.owed.values().all(|&n| n == 0)
            };
            if finished {
                if let Some(exec) = self.execs.remove(&exec_id) {
                    let targets: Vec<GlobalObjectId> =
                        exec.targets.iter().filter(|t| t.instance != id).cloned().collect();
                    self.finish_exec(exec_id, &targets, out);
                }
            }
        }
        // Fail transfer legs touching the dead instance.
        let dead_legs: Vec<u64> =
            self.transfers.iter().filter(|(_, t)| t.dst.instance == id).map(|(k, _)| *k).collect();
        for req_id in dead_legs {
            let Some(t) = self.transfers.remove(&req_id) else { continue };
            if let Some(g) = self.transfer_groups.get_mut(&t.group) {
                g.outstanding -= 1;
                g.failed = Some("peer instance terminated".into());
            }
            self.maybe_finish_group(t.group, out);
        }
        // A pull leg dies with either end: the destination can no longer
        // apply, and a source that dies before its `StateReply` would
        // otherwise leave the transfer group outstanding forever (the
        // requester would never see completion).
        let dead_pulls: Vec<u64> = self
            .pending_pulls
            .iter()
            .filter(|(_, pull)| pull.dst.instance == id || pull.src == id)
            .map(|(k, _)| *k)
            .collect();
        for req_id in dead_pulls {
            let Some(pull) = self.pending_pulls.remove(&req_id) else { continue };
            if let Some(g) = self.transfer_groups.get_mut(&pull.group) {
                g.outstanding -= 1;
                g.failed = Some(if pull.src == id {
                    "source instance terminated before replying".into()
                } else {
                    "peer instance terminated".into()
                });
            }
            self.maybe_finish_group(pull.group, &mut *out);
        }
        // Groups whose requester died evaporate (there is no one left to
        // answer); they still count as failed transfers. Their remaining
        // legs and pulls must go with them — a group-less leg would make
        // a late `StateReply` resurrect state for a dead requester (and,
        // before this purge existed, panic in `fan_out_apply`).
        let dead_groups: Vec<u64> = self
            .transfer_groups
            .iter()
            .filter(|(_, g)| g.requester == id)
            .map(|(k, _)| *k)
            .collect();
        if !dead_groups.is_empty() {
            self.transfers_failed += dead_groups.len() as u64;
            for group_id in &dead_groups {
                self.transfer_groups.remove(group_id);
            }
            self.transfers.retain(|_, t| !dead_groups.contains(&t.group));
            self.pending_pulls.retain(|_, p| !dead_groups.contains(&p.group));
        }
    }

    /// Places an instance in quarantine: live I/O is severed and the
    /// endpoint unbound, but the registration record, couples, and
    /// access rights survive until the grace period expires.
    fn quarantine_instance(&mut self, id: InstanceId) -> Outgoing<E> {
        let mut out = Outgoing::new();
        // Bounded store: make room before inserting by expiring the
        // oldest-deadline entries early (ties broken by smallest id for
        // determinism). Each eviction runs the full deregistration path,
        // so couples dissolve and resume tokens retire exactly as they
        // would at on-time expiry.
        let cap = self.liveness.max_quarantined;
        if cap > 0 {
            while self.quarantined.len() >= cap {
                let oldest =
                    self.quarantined.iter().map(|(i, q)| (q.deadline_us, *i)).min().map(|(_, i)| i);
                let Some(victim) = oldest else { break };
                self.quarantined.remove(&victim);
                self.quarantine_store_evictions += 1;
                let dereg = self.deregister_instance(victim);
                out.extend(dereg);
            }
        }
        self.sever_instance_io(id, &mut out);
        if let Some(endpoint) = self.registry.unbind(id) {
            self.route_event(RouteEvent::Unbound { instance: id, endpoint });
            self.admission.forget(&endpoint);
        }
        self.last_seen.remove(&id);
        let deadline_us = self.now_us.saturating_add(self.liveness.grace_us);
        self.quarantined.insert(id, Quarantined { deadline_us });
        self.quarantines += 1;
        out
    }

    fn deregister_instance(&mut self, id: InstanceId) -> Outgoing<E> {
        let mut out = Outgoing::new();
        // Auto-decouple: notify each surviving group of its new membership.
        let affected = self.couples.remove_instance(id);
        for survivors in affected {
            let mut instances: Vec<InstanceId> = survivors.iter().map(|g| g.instance).collect();
            instances.sort();
            instances.dedup();
            instances.retain(|i| *i != id);
            self.to_group(&instances, Message::CoupleUpdate { group: survivors }, &mut out);
        }
        self.sever_instance_io(id, &mut out);
        // The departed instance's objects are gone for good: their
        // history chains and delta sync bases must go with them, or the
        // stores grow monotonically under register/leave churn.
        self.history_purges += self.history.purge_instance(id) as u64;
        self.sync_bases.retain(|o, _| o.instance != id);
        self.quarantined.remove(&id);
        self.last_seen.remove(&id);
        if let Some(token) = self.token_of.remove(&id) {
            self.tokens.remove(&token);
            self.route_event(RouteEvent::TokenRetired { token });
        }
        let endpoint = self.registry.endpoint_of(id);
        if let Some(e) = endpoint {
            self.admission.forget(&e);
        }
        self.registry.deregister(id);
        self.route_event(RouteEvent::Deregistered { instance: id, endpoint });
        out
    }

    // ---- shard migration ------------------------------------------------------

    /// Extracts the couple-component of `seed` — registration records,
    /// liveness bookkeeping, couple links, history, access tuples, and
    /// all protocol state living entirely inside the component — for
    /// absorption by another shard ([`ServerCore::absorb_component`]).
    ///
    /// Protocol state that *straddles* the component boundary cannot
    /// migrate (its two halves would land on different shards):
    ///
    /// * a multiple-execution round whose submitter sits outside the
    ///   locked group's component sheds the far side's owed replies,
    ///   finishing the round if nothing else is outstanding — the same
    ///   sever semantics a far-side death would apply;
    /// * a transfer group with legs on both sides is failed outright and
    ///   its requester told, exactly like a peer dying mid-transfer.
    ///
    /// The returned [`Outgoing`] carries those settlement messages
    /// (`GroupUnlocked`, `ErrorReply`); deliver it like any handle
    /// output. Extraction records no [`RouteEvent`]s — the router
    /// rebinds routes itself from the returned slice.
    ///
    /// An unregistered `seed` yields an empty slice.
    pub fn extract_component(&mut self, seed: InstanceId) -> (ComponentSlice<E>, Outgoing<E>) {
        let members_vec = self.component_of(seed);
        let members: std::collections::HashSet<InstanceId> = members_vec.iter().copied().collect();
        let mut out = Outgoing::new();
        if members.is_empty() {
            let slice = ComponentSlice {
                records: Vec::new(),
                last_seen: Vec::new(),
                quarantined: Vec::new(),
                tokens: Vec::new(),
                links: Vec::new(),
                history: Vec::new(),
                sync_bases: Vec::new(),
                access: Vec::new(),
                execs: Vec::new(),
                transfer_groups: Vec::new(),
                transfers: Vec::new(),
                pulls: Vec::new(),
            };
            return (slice, out);
        }
        // Snapshot which objects each live execution round has locked:
        // the locked group's side of the boundary is the round's home.
        let mut lock_objects: HashMap<u64, Vec<GlobalObjectId>> = HashMap::new();
        for (object, exec) in self.locks.held_locks() {
            lock_objects.entry(exec).or_default().push(object.clone());
        }
        let mut exec_ids: Vec<u64> = self.execs.keys().copied().collect();
        exec_ids.sort();
        let mut inside_execs: Vec<u64> = Vec::new();
        for exec_id in exec_ids {
            let home_inside = lock_objects
                .get(&exec_id)
                .and_then(|objs| objs.first())
                .map(|o| members.contains(&o.instance))
                .unwrap_or(false);
            let straddles = {
                let Some(exec) = self.execs.get(&exec_id) else { continue };
                exec.owed.keys().any(|i| members.contains(i) != home_inside)
                    || exec.targets.iter().any(|t| members.contains(&t.instance) != home_inside)
            };
            if straddles {
                let finished = {
                    let Some(exec) = self.execs.get_mut(&exec_id) else { continue };
                    exec.owed.retain(|i, _| members.contains(i) == home_inside);
                    exec.targets.retain(|t| members.contains(&t.instance) == home_inside);
                    exec.owed.values().all(|&n| n == 0)
                };
                if finished {
                    if let Some(exec) = self.execs.remove(&exec_id) {
                        self.finish_exec(exec_id, &exec.targets, &mut out);
                    }
                    continue;
                }
            }
            if home_inside {
                inside_execs.push(exec_id);
            }
        }
        // Transfer groups: wholly inside migrates, wholly outside stays,
        // straddling fails sever-style.
        let mut group_ids: Vec<u64> = self.transfer_groups.keys().copied().collect();
        group_ids.sort();
        let mut inside_groups: Vec<u64> = Vec::new();
        for gid in group_ids {
            let Some((requester, req_inside)) = self
                .transfer_groups
                .get(&gid)
                .map(|g| (g.requester, members.contains(&g.requester)))
            else {
                continue;
            };
            let uniform = self
                .transfers
                .values()
                .filter(|t| t.group == gid)
                .all(|t| members.contains(&t.dst.instance) == req_inside)
                && self.pending_pulls.values().filter(|p| p.group == gid).all(|p| {
                    members.contains(&p.dst.instance) == req_inside
                        && members.contains(&p.src) == req_inside
                });
            if uniform {
                if req_inside {
                    inside_groups.push(gid);
                }
                continue;
            }
            self.transfers_failed += 1;
            self.transfer_groups.remove(&gid);
            self.transfers.retain(|_, t| t.group != gid);
            self.pending_pulls.retain(|_, p| p.group != gid);
            self.to_instance(
                requester,
                Message::ErrorReply {
                    context: "copy".into(),
                    reason: "transfer interrupted by a shard migration".into(),
                },
                &mut out,
            );
        }
        // Lift the component's state out of every store.
        let mut records = Vec::with_capacity(members_vec.len());
        for id in &members_vec {
            if let Some(rec) = self.registry.extract(*id) {
                records.push(rec);
            }
        }
        let last_seen = members_vec
            .iter()
            .filter_map(|id| self.last_seen.remove(id).map(|t| (*id, t)))
            .collect();
        let quarantined = members_vec
            .iter()
            .filter_map(|id| self.quarantined.remove(id).map(|q| (*id, q.deadline_us)))
            .collect();
        let tokens = members_vec
            .iter()
            .filter_map(|id| {
                self.token_of.remove(id).map(|tok| {
                    self.tokens.remove(&tok);
                    (tok, *id)
                })
            })
            .collect();
        let links = self.couples.extract_instance_links(&members);
        let history = self.history.extract_instances(&members);
        let mut sync_bases: Vec<(GlobalObjectId, u64, Arc<StateNode>)> = Vec::new();
        self.sync_bases.retain(|o, (version, state)| {
            let inside = members.contains(&o.instance);
            if inside {
                sync_bases.push((o.clone(), *version, state.clone()));
            }
            !inside
        });
        sync_bases.sort_by(|a, b| a.0.cmp(&b.0));
        let access = self.access.extract_instances(&members);
        let execs = inside_execs
            .into_iter()
            .filter_map(|eid| {
                self.execs.remove(&eid).map(|ex| {
                    let objs = lock_objects.remove(&eid).unwrap_or_default();
                    self.locks.unlock_exec(eid);
                    (eid, ex, objs)
                })
            })
            .collect();
        let transfer_groups = inside_groups
            .iter()
            .filter_map(|gid| self.transfer_groups.remove(gid).map(|g| (*gid, g)))
            .collect();
        let leg_ids: Vec<u64> = self
            .transfers
            .iter()
            .filter(|(_, t)| inside_groups.contains(&t.group))
            .map(|(k, _)| *k)
            .collect();
        let transfers =
            leg_ids.into_iter().filter_map(|k| self.transfers.remove(&k).map(|t| (k, t))).collect();
        let pull_ids: Vec<u64> = self
            .pending_pulls
            .iter()
            .filter(|(_, p)| inside_groups.contains(&p.group))
            .map(|(k, _)| *k)
            .collect();
        let pulls = pull_ids
            .into_iter()
            .filter_map(|k| self.pending_pulls.remove(&k).map(|p| (k, p)))
            .collect();
        self.note_outgoing(&out);
        let slice = ComponentSlice {
            records,
            last_seen,
            quarantined,
            tokens,
            links,
            history,
            sync_bases,
            access,
            execs,
            transfer_groups,
            transfers,
            pulls,
        };
        self.debug_check_invariants();
        (slice, out)
    }

    /// Installs a component extracted from another shard. Ids never
    /// collide (each shard mints ids in its own residue class, and the
    /// registry bumps its counter past adopted ids), so adoption is a
    /// plain insertion into every store.
    pub fn absorb_component(&mut self, slice: ComponentSlice<E>) {
        let ComponentSlice {
            records,
            last_seen,
            quarantined,
            tokens,
            links,
            history,
            sync_bases,
            access,
            execs,
            transfer_groups,
            transfers,
            pulls,
        } = slice;
        for (info, endpoint) in records {
            self.registry.adopt(info, endpoint);
        }
        for (id, t) in last_seen {
            self.last_seen.insert(id, t);
        }
        for (id, deadline_us) in quarantined {
            self.quarantined.insert(id, Quarantined { deadline_us });
        }
        for (token, id) in tokens {
            self.tokens.insert(token, id);
            self.token_of.insert(id, token);
        }
        self.couples.adopt_links(links);
        self.history.adopt(history);
        for (object, version, state) in sync_bases {
            self.sync_bases.insert(object, (version, state));
        }
        self.access.adopt(access);
        for (exec_id, exec, objects) in execs {
            // Cannot conflict: the objects arrive with the component that
            // locked them, and no other component can reference them.
            let _ = self.locks.try_lock_group(&objects, exec_id);
            self.execs.insert(exec_id, exec);
        }
        for (gid, g) in transfer_groups {
            self.transfer_groups.insert(gid, g);
        }
        for (req_id, t) in transfers {
            self.transfers.insert(req_id, t);
        }
        for (req_id, p) in pulls {
            self.pending_pulls.insert(req_id, p);
        }
        self.debug_check_invariants();
    }
}
