//! Historical UI states (§2.2): "the historical UI states backup the UI
//! states which have been overwritten when synchronizing by state was
//! applied, and provide the possibility of undoing/redoing user's
//! actions".

use std::collections::HashMap;

use cosoft_wire::{GlobalObjectId, StateNode};

/// Per-object undo/redo stacks of overwritten UI states.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    undo: HashMap<GlobalObjectId, Vec<StateNode>>,
    redo: HashMap<GlobalObjectId, Vec<StateNode>>,
    max_depth: usize,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore { undo: HashMap::new(), redo: HashMap::new(), max_depth: 64 }
    }
}

impl HistoryStore {
    /// Creates a store with the default depth cap (64 states per object).
    pub fn new() -> Self {
        HistoryStore::default()
    }

    /// Creates a store with an explicit per-object depth cap.
    pub fn with_max_depth(max_depth: usize) -> Self {
        HistoryStore { undo: HashMap::new(), redo: HashMap::new(), max_depth: max_depth.max(1) }
    }

    /// Records a state overwritten by synchronization-by-state.
    ///
    /// A fresh overwrite invalidates the redo stack (standard linear
    /// history semantics).
    pub fn record_overwrite(&mut self, object: GlobalObjectId, overwritten: StateNode) {
        self.redo.remove(&object);
        let stack = self.undo.entry(object).or_default();
        stack.push(overwritten);
        if stack.len() > self.max_depth {
            stack.remove(0);
        }
    }

    /// Pops the most recent overwritten state for undo. The caller applies
    /// it and then feeds the state it displaced into
    /// [`HistoryStore::record_undone`].
    pub fn pop_undo(&mut self, object: &GlobalObjectId) -> Option<StateNode> {
        self.undo.get_mut(object)?.pop()
    }

    /// Records the state displaced by an undo, making it redoable.
    pub fn record_undone(&mut self, object: GlobalObjectId, displaced: StateNode) {
        let stack = self.redo.entry(object).or_default();
        stack.push(displaced);
        if stack.len() > self.max_depth {
            stack.remove(0);
        }
    }

    /// Pops the most recent undone state for redo. The caller applies it
    /// and feeds the displaced state back through
    /// [`HistoryStore::record_redone`].
    pub fn pop_redo(&mut self, object: &GlobalObjectId) -> Option<StateNode> {
        self.redo.get_mut(object)?.pop()
    }

    /// Records the state displaced by a redo back onto the undo stack
    /// (without clearing redo, unlike a fresh overwrite).
    pub fn record_redone(&mut self, object: GlobalObjectId, displaced: StateNode) {
        let stack = self.undo.entry(object).or_default();
        stack.push(displaced);
        if stack.len() > self.max_depth {
            stack.remove(0);
        }
    }

    /// Depth of the undo stack for `object`.
    pub fn undo_depth(&self, object: &GlobalObjectId) -> usize {
        self.undo.get(object).map(Vec::len).unwrap_or(0)
    }

    /// Depth of the redo stack for `object`.
    pub fn redo_depth(&self, object: &GlobalObjectId) -> usize {
        self.redo.get(object).map(Vec::len).unwrap_or(0)
    }

    /// Drops all history of `object` (e.g. when it is destroyed).
    pub fn forget(&mut self, object: &GlobalObjectId) {
        self.undo.remove(object);
        self.redo.remove(object);
    }

    /// Removes and returns the undo/redo stacks of every object owned by
    /// an instance in `members`, for migration to another shard.
    pub fn extract_instances(
        &mut self,
        members: &std::collections::HashSet<cosoft_wire::InstanceId>,
    ) -> Vec<(GlobalObjectId, Vec<StateNode>, Vec<StateNode>)> {
        let mut objects: Vec<GlobalObjectId> = self
            .undo
            .keys()
            .chain(self.redo.keys())
            .filter(|o| members.contains(&o.instance))
            .cloned()
            .collect();
        objects.sort();
        objects.dedup();
        objects
            .into_iter()
            .map(|o| {
                let undo = self.undo.remove(&o).unwrap_or_default();
                let redo = self.redo.remove(&o).unwrap_or_default();
                (o, undo, redo)
            })
            .collect()
    }

    /// Re-installs stacks extracted from another shard's store.
    pub fn adopt(&mut self, entries: Vec<(GlobalObjectId, Vec<StateNode>, Vec<StateNode>)>) {
        for (object, undo, redo) in entries {
            if !undo.is_empty() {
                self.undo.insert(object.clone(), undo);
            }
            if !redo.is_empty() {
                self.redo.insert(object, redo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{AttrName, InstanceId, ObjectPath, Value, WidgetKind};

    fn gid(p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(1), ObjectPath::parse(p).unwrap())
    }

    fn state(text: &str) -> StateNode {
        StateNode::new(WidgetKind::TextField, "f")
            .with_attr(AttrName::Text, Value::Text(text.into()))
    }

    #[test]
    fn undo_redo_round_trip() {
        let mut h = HistoryStore::new();
        let o = gid("a.f");
        // Current state "v2" overwrote "v1".
        h.record_overwrite(o.clone(), state("v1"));
        assert_eq!(h.undo_depth(&o), 1);

        // Undo: restore v1; the displaced current state v2 becomes redoable.
        let restored = h.pop_undo(&o).unwrap();
        assert_eq!(restored, state("v1"));
        h.record_undone(o.clone(), state("v2"));
        assert_eq!(h.redo_depth(&o), 1);

        // Redo: restore v2; displaced v1 goes back to undo.
        let redone = h.pop_redo(&o).unwrap();
        assert_eq!(redone, state("v2"));
        h.record_redone(o.clone(), state("v1"));
        assert_eq!(h.undo_depth(&o), 1);
        assert_eq!(h.redo_depth(&o), 0);
    }

    #[test]
    fn fresh_overwrite_clears_redo() {
        let mut h = HistoryStore::new();
        let o = gid("a.f");
        h.record_overwrite(o.clone(), state("v1"));
        h.pop_undo(&o).unwrap();
        h.record_undone(o.clone(), state("v2"));
        assert_eq!(h.redo_depth(&o), 1);
        h.record_overwrite(o.clone(), state("v3"));
        assert_eq!(h.redo_depth(&o), 0);
    }

    #[test]
    fn depth_cap_drops_oldest() {
        let mut h = HistoryStore::with_max_depth(3);
        let o = gid("a.f");
        for i in 0..5 {
            h.record_overwrite(o.clone(), state(&format!("v{i}")));
        }
        assert_eq!(h.undo_depth(&o), 3);
        assert_eq!(h.pop_undo(&o).unwrap(), state("v4"));
        assert_eq!(h.pop_undo(&o).unwrap(), state("v3"));
        assert_eq!(h.pop_undo(&o).unwrap(), state("v2"));
        assert!(h.pop_undo(&o).is_none());
    }

    #[test]
    fn objects_are_independent() {
        let mut h = HistoryStore::new();
        h.record_overwrite(gid("a"), state("x"));
        assert_eq!(h.undo_depth(&gid("b")), 0);
        assert!(h.pop_undo(&gid("b")).is_none());
    }

    #[test]
    fn forget_clears_both_stacks() {
        let mut h = HistoryStore::new();
        let o = gid("a");
        h.record_overwrite(o.clone(), state("x"));
        h.record_undone(o.clone(), state("y"));
        h.forget(&o);
        assert_eq!(h.undo_depth(&o), 0);
        assert_eq!(h.redo_depth(&o), 0);
    }
}
