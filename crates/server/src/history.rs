//! Historical UI states (§2.2): "the historical UI states backup the UI
//! states which have been overwritten when synchronizing by state was
//! applied, and provide the possibility of undoing/redoing user's
//! actions".
//!
//! Stacks are stored as a *structural-sharing chain* rather than a vector
//! of full snapshots: every entry is either an anchor — an immutable
//! [`Arc`]-shared tree whose unchanged subtrees are physically shared with
//! its neighbors — or the attribute-level [`StateDelta`] that turns the
//! previous state into this one. Anchors recur every
//! [`ANCHOR_EVERY`] entries, so undo/redo reconstruct any state by
//! replaying at most a handful of deltas from the nearest anchor, and a
//! deep UI tree no longer costs a full copy per overwrite. Cloning a
//! store (the model checker forks [`crate::ServerCore`] at every
//! branching point) only bumps reference counts — the trees themselves
//! are shared between the forks.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use cosoft_wire::delta::{EditOp, NodeEdit, NodePatch, StateDelta};
use cosoft_wire::{AttrMap, GlobalObjectId, InstanceId, StateNode, WidgetKind};

/// A full anchor snapshot is stored every this many entries; the chain
/// between two anchors is pure deltas, so reconstructing any state
/// replays at most `ANCHOR_EVERY - 1` of them.
const ANCHOR_EVERY: usize = 8;

/// An immutable, reference-counted state tree. Structurally identical to
/// [`StateNode`] except that children are `Arc`-shared, so rebuilding one
/// spine of the tree (the usual shape of an overwrite) shares every
/// untouched subtree with the previous state.
#[derive(Debug, Clone, PartialEq)]
struct SharedNode {
    kind: WidgetKind,
    name: String,
    attrs: AttrMap,
    semantic: Vec<u8>,
    children: Vec<Arc<SharedNode>>,
}

fn from_state(s: &StateNode) -> Arc<SharedNode> {
    Arc::new(SharedNode {
        kind: s.kind.clone(),
        name: s.name.clone(),
        attrs: s.attrs.clone(),
        semantic: s.semantic.clone(),
        children: s.children.iter().map(from_state).collect(),
    })
}

fn to_state(n: &SharedNode) -> StateNode {
    let mut out = StateNode::new(n.kind.clone(), &n.name);
    out.attrs = n.attrs.clone();
    out.semantic = n.semantic.clone();
    out.children = n.children.iter().map(|c| to_state(c)).collect();
    out
}

fn eq_state(n: &SharedNode, s: &StateNode) -> bool {
    n.kind == s.kind
        && n.name == s.name
        && n.attrs == s.attrs
        && n.semantic == s.semantic
        && n.children.len() == s.children.len()
        && n.children.iter().zip(&s.children).all(|(a, b)| eq_state(a, b))
}

fn shared_child<'a>(n: &'a SharedNode, name: &str) -> Option<&'a Arc<SharedNode>> {
    n.children.iter().find(|c| c.name == name)
}

fn has_duplicate_names<'a>(names: impl Iterator<Item = &'a str>) -> bool {
    let mut seen = HashSet::new();
    names.into_iter().any(|n| !seen.insert(n))
}

/// Computes the delta that turns the shared tree `base` into `target`,
/// with exactly the semantics of [`cosoft_wire::delta::diff`] (root
/// rename and duplicate child names fall back to wholesale replacement;
/// everything else is per-node patches plus child restructures).
fn diff_shared(base: &SharedNode, target: &StateNode) -> StateDelta {
    let mut edits = Vec::new();
    if base.name != target.name {
        if !eq_state(base, target) {
            edits.push(NodeEdit { path: Vec::new(), op: EditOp::Replace(target.clone()) });
        }
        return StateDelta { edits };
    }
    let mut path = Vec::new();
    diff_shared_rec(base, target, &mut path, &mut edits);
    StateDelta { edits }
}

fn diff_shared_rec(
    base: &SharedNode,
    target: &StateNode,
    path: &mut Vec<String>,
    edits: &mut Vec<NodeEdit>,
) {
    if eq_state(base, target) {
        return;
    }
    if has_duplicate_names(base.children.iter().map(|c| c.name.as_str()))
        || has_duplicate_names(target.children.iter().map(|c| c.name.as_str()))
    {
        edits.push(NodeEdit { path: path.clone(), op: EditOp::Replace(target.clone()) });
        return;
    }

    let mut patch = NodePatch::default();
    if base.kind != target.kind {
        patch.kind = Some(target.kind.clone());
    }
    for (k, v) in &target.attrs {
        if base.attrs.get(k) != Some(v) {
            patch.upserts.insert(k.clone(), v.clone());
        }
    }
    for k in base.attrs.keys() {
        if !target.attrs.contains_key(k) {
            patch.removals.push(k.clone());
        }
    }
    if base.semantic != target.semantic {
        patch.semantic = Some(target.semantic.clone());
    }
    if !patch.is_empty() {
        edits.push(NodeEdit { path: path.clone(), op: EditOp::Patch(patch) });
    }

    let base_names: Vec<&str> = base.children.iter().map(|c| c.name.as_str()).collect();
    let target_names: Vec<&str> = target.children.iter().map(|c| c.name.as_str()).collect();
    if base_names != target_names {
        let base_set: HashSet<&str> = base_names.iter().copied().collect();
        let inserts: Vec<StateNode> = target
            .children
            .iter()
            .filter(|c| !base_set.contains(c.name.as_str()))
            .cloned()
            .collect();
        edits.push(NodeEdit {
            path: path.clone(),
            op: EditOp::Restructure {
                order: target_names.iter().map(|s| (*s).to_owned()).collect(),
                inserts,
            },
        });
    }

    for tc in &target.children {
        if let Some(bc) = shared_child(base, &tc.name) {
            path.push(tc.name.clone());
            diff_shared_rec(bc, tc, path, edits);
            path.pop();
        }
    }
}

/// Applies a delta to a shared tree copy-on-write: only the spine from
/// the root to each edited node is rebuilt, every untouched subtree is
/// `Arc`-shared with `base`.
///
/// Total by construction: the store only ever applies a delta to the
/// exact state it was diffed against, so unresolvable paths or child
/// names cannot occur — if they somehow did, the edit is skipped rather
/// than panicking.
fn apply_shared(base: &Arc<SharedNode>, delta: &StateDelta) -> Arc<SharedNode> {
    let mut cur = base.clone();
    for edit in &delta.edits {
        cur = apply_edit_shared(&cur, &edit.path, &edit.op);
    }
    cur
}

fn apply_edit_shared(node: &Arc<SharedNode>, path: &[String], op: &EditOp) -> Arc<SharedNode> {
    match path.split_first() {
        None => apply_op_shared(node, op),
        Some((seg, rest)) => {
            let Some(idx) = node.children.iter().position(|c| c.name == *seg) else {
                return node.clone();
            };
            let mut n = (**node).clone();
            // audit: infallible — idx comes from `position` over these same children
            n.children[idx] = apply_edit_shared(&node.children[idx], rest, op);
            Arc::new(n)
        }
    }
}

fn apply_op_shared(node: &Arc<SharedNode>, op: &EditOp) -> Arc<SharedNode> {
    match op {
        EditOp::Patch(p) => {
            let mut n = (**node).clone();
            if let Some(kind) = &p.kind {
                n.kind = kind.clone();
            }
            for (k, v) in &p.upserts {
                n.attrs.insert(k.clone(), v.clone());
            }
            for k in &p.removals {
                n.attrs.remove(k);
            }
            if let Some(semantic) = &p.semantic {
                n.semantic = semantic.clone();
            }
            Arc::new(n)
        }
        EditOp::Replace(replacement) => from_state(replacement),
        EditOp::Restructure { order, inserts } => {
            let mut n = (**node).clone();
            let existing = std::mem::take(&mut n.children);
            let mut rebuilt = Vec::with_capacity(order.len());
            for name in order {
                if let Some(c) = existing.iter().find(|c| &c.name == name) {
                    rebuilt.push(c.clone());
                } else if let Some(ins) = inserts.iter().find(|c| &c.name == name) {
                    rebuilt.push(from_state(ins));
                }
                // Unknown names cannot occur (see `apply_shared`); skip.
            }
            n.children = rebuilt;
            Arc::new(n)
        }
    }
}

/// One chain entry: a materialized anchor or the delta from the previous
/// entry's state.
#[derive(Debug, Clone)]
enum Entry {
    Anchor(Arc<SharedNode>),
    Delta(Arc<StateDelta>),
}

/// One object's undo (or redo) chain: anchors plus deltas in a
/// [`VecDeque`] (depth-cap eviction pops the *front* in O(1)), with the
/// newest state cached in materialized form. Opaque outside the store;
/// it only exists as a named type so extracted stacks can travel in a
/// shard-migration slice ([`HistoryStore::extract_instances`] /
/// [`HistoryStore::adopt`]).
#[derive(Debug, Clone, Default)]
pub struct HistoryStack {
    entries: VecDeque<Entry>,
    /// Materialization of the newest entry (`None` iff the chain is
    /// empty), so pushes diff against it without replaying the chain.
    top: Option<Arc<SharedNode>>,
}

impl HistoryStack {
    fn depth(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(&mut self, state: &StateNode, max_depth: usize) {
        let new_top = match &self.top {
            Some(top) => {
                let d = diff_shared(top, state);
                let nt = apply_shared(top, &d);
                let trailing_deltas =
                    self.entries.iter().rev().take_while(|e| matches!(e, Entry::Delta(_))).count();
                if trailing_deltas >= ANCHOR_EVERY - 1 {
                    self.entries.push_back(Entry::Anchor(nt.clone()));
                } else {
                    self.entries.push_back(Entry::Delta(Arc::new(d)));
                }
                nt
            }
            None => {
                let nt = from_state(state);
                self.entries.push_back(Entry::Anchor(nt.clone()));
                nt
            }
        };
        self.top = Some(new_top);
        while self.entries.len() > max_depth {
            self.evict_front();
        }
    }

    /// Drops the oldest entry. The front of a non-empty chain is always
    /// an anchor; when its successor is a delta, the successor is first
    /// materialized into an anchor so the chain still starts from a full
    /// snapshot.
    fn evict_front(&mut self) {
        let Some(front) = self.entries.pop_front() else { return };
        if let Entry::Anchor(base) = front {
            let promoted = match self.entries.front() {
                Some(Entry::Delta(d)) => Some(Entry::Anchor(apply_shared(&base, d))),
                _ => None,
            };
            if let Some(p) = promoted {
                // audit: infallible — `front()` just returned Some, so index 0 exists
                self.entries[0] = p;
            }
        }
        if self.entries.is_empty() {
            self.top = None;
        }
    }

    fn pop(&mut self) -> Option<StateNode> {
        let top = self.top.clone()?;
        self.entries.pop_back();
        self.top = self.rematerialize_top();
        Some(to_state(&top))
    }

    /// Replays the chain suffix from the nearest anchor (at most
    /// [`ANCHOR_EVERY`] − 1 delta applications) into the new top state.
    fn rematerialize_top(&self) -> Option<Arc<SharedNode>> {
        let start = self.entries.iter().rposition(|e| matches!(e, Entry::Anchor(_)))?;
        let mut cur: Option<Arc<SharedNode>> = None;
        for e in self.entries.iter().skip(start) {
            cur = Some(match e {
                Entry::Anchor(a) => a.clone(),
                Entry::Delta(d) => match cur {
                    Some(c) => apply_shared(&c, d),
                    // Unreachable: the scan starts at an anchor.
                    None => return None,
                },
            });
        }
        cur
    }

    /// Whether `other` is a clone sharing this chain's allocations: same
    /// entries, each backed by the *same* `Arc` (pointer equality).
    fn shares_storage_with(&self, other: &HistoryStack) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(a, b)| match (a, b) {
                (Entry::Anchor(x), Entry::Anchor(y)) => Arc::ptr_eq(x, y),
                (Entry::Delta(x), Entry::Delta(y)) => Arc::ptr_eq(x, y),
                _ => false,
            })
    }

    #[cfg(test)]
    fn count_unique_nodes(&self, seen: &mut HashSet<*const SharedNode>) -> usize {
        fn walk(n: &Arc<SharedNode>, seen: &mut HashSet<*const SharedNode>) -> usize {
            if !seen.insert(Arc::as_ptr(n)) {
                return 0;
            }
            1 + n.children.iter().map(|c| walk(c, seen)).sum::<usize>()
        }
        let mut total = 0;
        for e in &self.entries {
            if let Entry::Anchor(a) = e {
                total += walk(a, seen);
            }
        }
        if let Some(t) = &self.top {
            total += walk(t, seen);
        }
        total
    }
}

/// Per-object undo/redo chains of overwritten UI states.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    undo: HashMap<GlobalObjectId, HistoryStack>,
    redo: HashMap<GlobalObjectId, HistoryStack>,
    max_depth: usize,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore { undo: HashMap::new(), redo: HashMap::new(), max_depth: 64 }
    }
}

impl HistoryStore {
    /// Creates a store with the default depth cap (64 states per object).
    pub fn new() -> Self {
        HistoryStore::default()
    }

    /// Creates a store with an explicit per-object depth cap.
    pub fn with_max_depth(max_depth: usize) -> Self {
        HistoryStore { undo: HashMap::new(), redo: HashMap::new(), max_depth: max_depth.max(1) }
    }

    /// Records a state overwritten by synchronization-by-state.
    ///
    /// A fresh overwrite invalidates the redo stack (standard linear
    /// history semantics).
    pub fn record_overwrite(&mut self, object: GlobalObjectId, overwritten: StateNode) {
        self.redo.remove(&object);
        let max_depth = self.max_depth;
        self.undo.entry(object).or_default().push(&overwritten, max_depth);
    }

    /// Pops the most recent overwritten state for undo. The caller applies
    /// it and then feeds the state it displaced into
    /// [`HistoryStore::record_undone`].
    pub fn pop_undo(&mut self, object: &GlobalObjectId) -> Option<StateNode> {
        self.undo.get_mut(object)?.pop()
    }

    /// Records the state displaced by an undo, making it redoable.
    pub fn record_undone(&mut self, object: GlobalObjectId, displaced: StateNode) {
        let max_depth = self.max_depth;
        self.redo.entry(object).or_default().push(&displaced, max_depth);
    }

    /// Pops the most recent undone state for redo. The caller applies it
    /// and feeds the displaced state back through
    /// [`HistoryStore::record_redone`].
    pub fn pop_redo(&mut self, object: &GlobalObjectId) -> Option<StateNode> {
        self.redo.get_mut(object)?.pop()
    }

    /// Records the state displaced by a redo back onto the undo stack
    /// (without clearing redo, unlike a fresh overwrite).
    pub fn record_redone(&mut self, object: GlobalObjectId, displaced: StateNode) {
        let max_depth = self.max_depth;
        self.undo.entry(object).or_default().push(&displaced, max_depth);
    }

    /// Depth of the undo stack for `object`.
    pub fn undo_depth(&self, object: &GlobalObjectId) -> usize {
        self.undo.get(object).map(HistoryStack::depth).unwrap_or(0)
    }

    /// Depth of the redo stack for `object`.
    pub fn redo_depth(&self, object: &GlobalObjectId) -> usize {
        self.redo.get(object).map(HistoryStack::depth).unwrap_or(0)
    }

    /// Drops all history of `object` (e.g. when it is destroyed). Returns
    /// whether any entries were actually held.
    pub fn forget(&mut self, object: &GlobalObjectId) -> bool {
        let had_undo = self.undo.remove(object).is_some();
        let had_redo = self.redo.remove(object).is_some();
        had_undo || had_redo
    }

    /// Drops the history of every object owned by `instance` (the single
    /// teardown path: deregistration after quarantine expiry, eviction,
    /// or a graceful leave). Returns how many objects had entries purged.
    pub fn purge_instance(&mut self, instance: InstanceId) -> usize {
        let mut purged: HashSet<GlobalObjectId> = HashSet::new();
        self.undo.retain(|o, _| {
            let keep = o.instance != instance;
            if !keep {
                purged.insert(o.clone());
            }
            keep
        });
        self.redo.retain(|o, _| {
            let keep = o.instance != instance;
            if !keep {
                purged.insert(o.clone());
            }
            keep
        });
        purged.len()
    }

    /// Whether `other` (typically a fork of the owning
    /// [`crate::ServerCore`]) physically shares this store's chain
    /// allocations: identical stacks whose entries are pointer-equal
    /// `Arc`s, i.e. the clone cost was reference-count bumps, not tree
    /// copies.
    pub fn storage_is_shared_with(&self, other: &HistoryStore) -> bool {
        fn maps_share(
            a: &HashMap<GlobalObjectId, HistoryStack>,
            b: &HashMap<GlobalObjectId, HistoryStack>,
        ) -> bool {
            a.len() == b.len()
                && a.iter().all(|(o, s)| b.get(o).is_some_and(|t| s.shares_storage_with(t)))
        }
        maps_share(&self.undo, &other.undo) && maps_share(&self.redo, &other.redo)
    }

    /// Removes and returns the undo/redo chains of every object owned by
    /// an instance in `members`, for migration to another shard.
    pub fn extract_instances(
        &mut self,
        members: &HashSet<InstanceId>,
    ) -> Vec<(GlobalObjectId, HistoryStack, HistoryStack)> {
        let mut objects: Vec<GlobalObjectId> = self
            .undo
            .keys()
            .chain(self.redo.keys())
            .filter(|o| members.contains(&o.instance))
            .cloned()
            .collect();
        objects.sort();
        objects.dedup();
        objects
            .into_iter()
            .map(|o| {
                let undo = self.undo.remove(&o).unwrap_or_default();
                let redo = self.redo.remove(&o).unwrap_or_default();
                (o, undo, redo)
            })
            .collect()
    }

    /// Re-installs chains extracted from another shard's store.
    pub fn adopt(&mut self, entries: Vec<(GlobalObjectId, HistoryStack, HistoryStack)>) {
        for (object, undo, redo) in entries {
            if !undo.is_empty() {
                self.undo.insert(object.clone(), undo);
            }
            if !redo.is_empty() {
                self.redo.insert(object, redo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{AttrName, InstanceId, ObjectPath, Value, WidgetKind};

    fn gid(p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(1), ObjectPath::parse(p).unwrap())
    }

    fn state(text: &str) -> StateNode {
        StateNode::new(WidgetKind::TextField, "f")
            .with_attr(AttrName::Text, Value::Text(text.into()))
    }

    /// A complete binary tree of the given depth (depth 1 = a leaf).
    fn deep_tree(depth: usize, label: &str) -> StateNode {
        fn build(depth: usize, name: &str, label: &str) -> StateNode {
            let mut n = StateNode::new(WidgetKind::Panel, name)
                .with_attr(AttrName::Title, Value::Text(label.into()));
            if depth > 1 {
                n = n.with_child(build(depth - 1, "l", label)).with_child(build(
                    depth - 1,
                    "r",
                    label,
                ));
            }
            n
        }
        build(depth, "root", label)
    }

    /// `deep_tree` with one leaf attribute changed, leaving the rest of
    /// the tree identical — the typical shape of an overwrite.
    fn deep_tree_variant(depth: usize, label: &str, leaf_text: &str) -> StateNode {
        let mut t = deep_tree(depth, label);
        let mut node = &mut t;
        while let Some(first) = node.children.first_mut() {
            node = first;
        }
        node.attrs.insert(AttrName::Text, Value::Text(leaf_text.into()));
        t
    }

    #[test]
    fn undo_redo_round_trip() {
        let mut h = HistoryStore::new();
        let o = gid("a.f");
        // Current state "v2" overwrote "v1".
        h.record_overwrite(o.clone(), state("v1"));
        assert_eq!(h.undo_depth(&o), 1);

        // Undo: restore v1; the displaced current state v2 becomes redoable.
        let restored = h.pop_undo(&o).unwrap();
        assert_eq!(restored, state("v1"));
        h.record_undone(o.clone(), state("v2"));
        assert_eq!(h.redo_depth(&o), 1);

        // Redo: restore v2; displaced v1 goes back to undo.
        let redone = h.pop_redo(&o).unwrap();
        assert_eq!(redone, state("v2"));
        h.record_redone(o.clone(), state("v1"));
        assert_eq!(h.undo_depth(&o), 1);
        assert_eq!(h.redo_depth(&o), 0);
    }

    #[test]
    fn fresh_overwrite_clears_redo() {
        let mut h = HistoryStore::new();
        let o = gid("a.f");
        h.record_overwrite(o.clone(), state("v1"));
        h.pop_undo(&o).unwrap();
        h.record_undone(o.clone(), state("v2"));
        assert_eq!(h.redo_depth(&o), 1);
        h.record_overwrite(o.clone(), state("v3"));
        assert_eq!(h.redo_depth(&o), 0);
    }

    #[test]
    fn depth_cap_drops_oldest() {
        let mut h = HistoryStore::with_max_depth(3);
        let o = gid("a.f");
        for i in 0..5 {
            h.record_overwrite(o.clone(), state(&format!("v{i}")));
        }
        assert_eq!(h.undo_depth(&o), 3);
        assert_eq!(h.pop_undo(&o).unwrap(), state("v4"));
        assert_eq!(h.pop_undo(&o).unwrap(), state("v3"));
        assert_eq!(h.pop_undo(&o).unwrap(), state("v2"));
        assert!(h.pop_undo(&o).is_none());
    }

    #[test]
    fn objects_are_independent() {
        let mut h = HistoryStore::new();
        h.record_overwrite(gid("a"), state("x"));
        assert_eq!(h.undo_depth(&gid("b")), 0);
        assert!(h.pop_undo(&gid("b")).is_none());
    }

    #[test]
    fn forget_clears_both_stacks() {
        let mut h = HistoryStore::new();
        let o = gid("a");
        h.record_overwrite(o.clone(), state("x"));
        h.record_undone(o.clone(), state("y"));
        assert!(h.forget(&o));
        assert!(!h.forget(&o));
        assert_eq!(h.undo_depth(&o), 0);
        assert_eq!(h.redo_depth(&o), 0);
    }

    #[test]
    fn purge_instance_drops_all_objects_of_that_instance() {
        let mut h = HistoryStore::new();
        let mine_a = gid("a");
        let mine_b = gid("b");
        let foreign = GlobalObjectId::new(InstanceId(2), ObjectPath::parse("a").unwrap());
        h.record_overwrite(mine_a.clone(), state("x"));
        h.record_undone(mine_a.clone(), state("y"));
        h.record_overwrite(mine_b.clone(), state("x"));
        h.record_overwrite(foreign.clone(), state("x"));
        // Two distinct objects purged (a counted once despite both stacks).
        assert_eq!(h.purge_instance(InstanceId(1)), 2);
        assert_eq!(h.undo_depth(&mine_a), 0);
        assert_eq!(h.redo_depth(&mine_a), 0);
        assert_eq!(h.undo_depth(&mine_b), 0);
        assert_eq!(h.undo_depth(&foreign), 1);
        assert_eq!(h.purge_instance(InstanceId(1)), 0);
    }

    #[test]
    fn deep_chain_replays_exactly_across_anchors_and_eviction() {
        // More pushes than both the anchor interval and the cap: pops must
        // replay every surviving state exactly, across anchor boundaries
        // and after front eviction re-anchored the chain.
        let mut h = HistoryStore::with_max_depth(12);
        let o = gid("a.f");
        for i in 0..20 {
            h.record_overwrite(o.clone(), deep_tree_variant(5, "base", &format!("leaf{i}")));
        }
        assert_eq!(h.undo_depth(&o), 12);
        for i in (8..20).rev() {
            assert_eq!(h.pop_undo(&o).unwrap(), deep_tree_variant(5, "base", &format!("leaf{i}")));
        }
        assert!(h.pop_undo(&o).is_none());
    }

    #[test]
    fn duplicate_child_names_still_replay_exactly() {
        // Duplicate sibling names force the wholesale-replace fallback in
        // the delta layer; the chain must still reconstruct each state.
        let mut twins = StateNode::new(WidgetKind::Panel, "root");
        twins.children.push(state("first"));
        twins.children.push(state("second"));
        let mut twins2 = twins.clone();
        twins2.children[1] = state("changed");
        let mut h = HistoryStore::new();
        let o = gid("a");
        h.record_overwrite(o.clone(), twins.clone());
        h.record_overwrite(o.clone(), twins2.clone());
        assert_eq!(h.pop_undo(&o).unwrap(), twins2);
        assert_eq!(h.pop_undo(&o).unwrap(), twins);
    }

    #[test]
    fn overwrites_share_unchanged_subtrees() {
        // 32 overwrites of a depth-6 tree (63 nodes), each changing one
        // leaf attribute. With full copies this would retain ~32 × 63
        // nodes; structural sharing keeps it near one tree plus one spine
        // (6 nodes) per overwrite.
        let depth = 6usize;
        let tree_nodes = (1usize << depth) - 1;
        let pushes = 32usize;
        let mut h = HistoryStore::new();
        let o = gid("a");
        for i in 0..pushes {
            h.record_overwrite(o.clone(), deep_tree_variant(depth, "base", &format!("v{i}")));
        }
        let mut seen = HashSet::new();
        let unique = h.undo.get(&o).unwrap().count_unique_nodes(&mut seen);
        let full_copy_cost = pushes * tree_nodes;
        assert!(
            unique < tree_nodes + (pushes + 1) * (depth + 1),
            "unique nodes {unique} suggests full copies (cap {})",
            tree_nodes + (pushes + 1) * (depth + 1)
        );
        assert!(unique * 4 < full_copy_cost, "no structural sharing: {unique} nodes retained");
    }

    #[test]
    fn clones_share_chain_storage() {
        let mut h = HistoryStore::with_max_depth(50);
        let o = gid("a");
        for i in 0..40 {
            h.record_overwrite(o.clone(), deep_tree_variant(6, "base", &format!("v{i}")));
        }
        h.record_undone(o.clone(), state("displaced"));
        let fork = h.clone();
        assert!(fork.storage_is_shared_with(&h));
        // Divergence after the fork breaks sharing for the touched stack.
        let mut fork2 = h.clone();
        fork2.record_overwrite(o.clone(), state("new"));
        assert!(!fork2.storage_is_shared_with(&h));
    }

    #[test]
    fn extract_and_adopt_preserve_chains() {
        let mut h = HistoryStore::new();
        let o = gid("a");
        for i in 0..10 {
            h.record_overwrite(o.clone(), deep_tree_variant(4, "base", &format!("v{i}")));
        }
        let members: HashSet<InstanceId> = [InstanceId(1)].into_iter().collect();
        let extracted = h.extract_instances(&members);
        assert_eq!(h.undo_depth(&o), 0);
        let mut other = HistoryStore::new();
        other.adopt(extracted);
        for i in (0..10).rev() {
            assert_eq!(other.pop_undo(&o).unwrap(), deep_tree_variant(4, "base", &format!("v{i}")));
        }
    }
}
