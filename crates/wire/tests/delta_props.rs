//! Property-based tests for attribute-level state deltas: for arbitrary
//! `StateNode` trees (including semantic payloads, child reorders,
//! renames and duplicate child names) `apply(a, diff(a, b))` must
//! reconstruct `b` exactly — and therefore re-encode byte-identically —
//! and the delta codec must round-trip.

use proptest::prelude::*;

use cosoft_wire::delta::{apply, diff, state_version, version_of_encoded};
use cosoft_wire::{codec, AttrName, CopyMode, Message, ObjectPath, StateNode, Value, WidgetKind};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-]{0,16}".prop_map(Value::Text),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
        (any::<i32>(), any::<i32>()).prop_map(|(x, y)| Value::Point(x, y)),
    ]
}

fn arb_attr_name() -> impl Strategy<Value = AttrName> {
    prop_oneof![
        Just(AttrName::Title),
        Just(AttrName::Text),
        Just(AttrName::ValueNum),
        Just(AttrName::Selected),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| AttrName::from_str_lossy(&s)),
    ]
}

fn arb_kind() -> impl Strategy<Value = WidgetKind> {
    prop_oneof![
        Just(WidgetKind::Form),
        Just(WidgetKind::Panel),
        Just(WidgetKind::Label),
        Just(WidgetKind::TextField),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| WidgetKind::from_str_lossy(&s)),
    ]
}

/// Arbitrary snapshot trees. Child names are drawn from a small pool on
/// purpose so that independently generated trees overlap (exercising the
/// recursive-match path) and duplicates occur (exercising the wholesale
/// replace fallback).
fn arb_state() -> impl Strategy<Value = StateNode> {
    let leaf = (
        arb_kind(),
        "[a-e][0-2]{0,2}",
        prop::collection::btree_map(arb_attr_name(), arb_value(), 0..4),
        prop::collection::vec(any::<u8>(), 0..12),
    )
        .prop_map(|(kind, name, attrs, semantic)| {
            let mut n = StateNode::new(kind, &name);
            n.attrs = attrs;
            n.semantic = semantic;
            n
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_kind(),
            "[a-e][0-2]{0,2}",
            prop::collection::btree_map(arb_attr_name(), arb_value(), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(kind, name, attrs, children)| {
                let mut n = StateNode::new(kind, &name);
                n.attrs = attrs;
                n.children = children;
                n
            })
    })
}

/// One random edit applied to a tree, producing correlated (base, target)
/// pairs: attr upsert, attr removal, semantic change, child reorder,
/// child removal, child insertion — chosen by an opaque seed.
fn mutate(mut s: StateNode, seed: u64, attr: AttrName, value: Value) -> StateNode {
    // Walk to a pseudo-random node.
    let mut node = &mut s;
    let mut cursor = seed;
    while !node.children.is_empty() && cursor & 1 == 1 {
        let idx = ((cursor >> 1) as usize) % node.children.len();
        node = &mut node.children[idx];
        cursor >>= 3;
    }
    match (seed >> 32) % 6 {
        0 => {
            node.attrs.insert(attr, value);
        }
        1 => {
            let key = node.attrs.keys().next().cloned();
            if let Some(key) = key {
                node.attrs.remove(&key);
            }
        }
        2 => {
            node.semantic.push((seed >> 8) as u8);
        }
        3 => {
            node.children.reverse();
        }
        4 => {
            if !node.children.is_empty() {
                let idx = ((seed >> 16) as usize) % node.children.len();
                node.children.remove(idx);
            }
        }
        _ => {
            node.children.push(
                StateNode::new(WidgetKind::Button, &format!("n{}", seed % 97))
                    .with_attr(attr, value),
            );
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core contract: diff then apply reconstructs the target for
    /// arbitrary, independently generated tree pairs.
    #[test]
    fn diff_apply_reconstructs_arbitrary_pairs(a in arb_state(), b in arb_state()) {
        let d = diff(&a, &b);
        let rebuilt = apply(&a, &d).expect("delta of (a, b) must apply to a");
        prop_assert_eq!(&rebuilt, &b);
        // Byte-identical round trip: the reconstruction re-encodes to
        // exactly the target's canonical encoding.
        prop_assert_eq!(
            codec::encode_state_shared(&rebuilt),
            codec::encode_state_shared(&b)
        );
        prop_assert_eq!(state_version(&rebuilt), state_version(&b));
    }

    /// Correlated pairs: a chain of small mutations (attr upserts and
    /// removals, semantic edits, child reorder/remove/insert) stays
    /// reconstructible at every step.
    #[test]
    fn diff_apply_tracks_mutation_chains(
        base in arb_state(),
        seeds in prop::collection::vec(any::<u64>(), 1..6),
        attr in arb_attr_name(),
        value in arb_value(),
    ) {
        let mut prev = base;
        for seed in seeds {
            let next = mutate(prev.clone(), seed, attr.clone(), value.clone());
            let d = diff(&prev, &next);
            let rebuilt = apply(&prev, &d).expect("mutation delta must apply");
            prop_assert_eq!(&rebuilt, &next);
            prop_assert_eq!(
                codec::encode_state_shared(&rebuilt),
                codec::encode_state_shared(&next)
            );
            prev = next;
        }
    }

    /// Self-diff is empty and applies as the identity.
    #[test]
    fn self_diff_is_empty(a in arb_state()) {
        let d = diff(&a, &a);
        prop_assert!(d.is_empty());
        prop_assert_eq!(apply(&a, &d).expect("empty delta applies"), a);
    }

    /// The delta codec round-trips and leaves no trailing bytes.
    #[test]
    fn delta_codec_round_trips(a in arb_state(), b in arb_state()) {
        let d = diff(&a, &b);
        let mut buf = bytes::BytesMut::new();
        codec::put_delta(&mut buf, &d);
        let mut r = buf.freeze();
        let back = codec::get_delta(&mut r).expect("delta decodes");
        prop_assert_eq!(back, d);
        prop_assert_eq!(r.len(), 0);
    }

    /// ApplyDelta messages round-trip through the message codec, and the
    /// spliced (encode-once) framing is byte-identical to whole-message
    /// framing — the fan-out path is indistinguishable on the wire.
    #[test]
    fn spliced_apply_delta_matches_whole_message(
        a in arb_state(),
        b in arb_state(),
        req_id in any::<u64>(),
        base_version in any::<u64>(),
    ) {
        let delta = diff(&a, &b);
        let new_version = state_version(&b);
        let path = ObjectPath::parse("root.panel").expect("valid");
        let msg = Message::ApplyDelta {
            req_id,
            path: path.clone(),
            base_version,
            new_version,
            delta: delta.clone(),
            mode: CopyMode::FlexibleMatch,
        };
        let bytes = codec::encode_message(&msg);
        prop_assert_eq!(codec::decode_message(&bytes).expect("decodes"), msg.clone());

        let payload = codec::encode_delta_shared(&delta);
        let frame = codec::frame_apply_delta(
            req_id, &path, base_version, new_version, &payload, CopyMode::FlexibleMatch,
        );
        prop_assert_eq!(frame.as_slice(), codec::frame_message(&msg).as_slice());
    }

    /// Versions are content-derived: equal trees agree, and the
    /// encoded-bytes fast path agrees with the tree-level fingerprint.
    #[test]
    fn versions_are_content_derived(a in arb_state()) {
        prop_assert_eq!(state_version(&a), state_version(&a.clone()));
        prop_assert_eq!(
            state_version(&a),
            version_of_encoded(&codec::encode_state_shared(&a))
        );
    }
}

/// The client-side acceptance rule for a delta leg, mirrored from
/// `Session::apply_delta`: base version must match, the delta must
/// apply, and the reconstruction must hash to the advertised version.
fn client_accepts(
    client_base: &StateNode,
    assumed_base_version: u64,
    new_version: u64,
    d: &cosoft_wire::StateDelta,
) -> Result<StateNode, ()> {
    if state_version(client_base) != assumed_base_version {
        return Err(());
    }
    let next = apply(client_base, d).map_err(|_| ())?;
    if state_version(&next) != new_version {
        return Err(());
    }
    Ok(next)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Divergence safety: a client holding *any* base — matching,
    /// stale, or unrelated — either reconstructs the target exactly or
    /// rejects the delta; after a rejection, the full-snapshot fallback
    /// converges and re-primes a base that supports deltas again.
    #[test]
    fn divergent_base_falls_back_and_converges(
        server_base in arb_state(),
        client_base in arb_state(),
        target in arb_state(),
    ) {
        let d = diff(&server_base, &target);
        let new_version = state_version(&target);
        match client_accepts(&client_base, state_version(&server_base), new_version, &d) {
            Ok(next) => {
                // Acceptance implies byte-exact convergence — the
                // version check never lets a wrong state through.
                prop_assert_eq!(
                    codec::encode_state_shared(&next),
                    codec::encode_state_shared(&target)
                );
            }
            Err(()) => {
                // Fallback: the server re-sends `target` in full. The
                // snapshot converges by construction; the interesting
                // claim is that the re-primed base chain works — the
                // *next* delta (target → server_base, say) applies.
                let reprimed = target.clone();
                let d2 = diff(&reprimed, &server_base);
                let rebuilt = client_accepts(
                    &reprimed,
                    state_version(&reprimed),
                    state_version(&server_base),
                    &d2,
                );
                prop_assert_eq!(rebuilt, Ok(server_base.clone()));
            }
        }
        // A matching base always accepts: divergence is the only
        // reason a delta leg can fail.
        let matching = client_accepts(
            &server_base, state_version(&server_base), new_version, &d,
        );
        prop_assert_eq!(matching, Ok(target));
    }
}
