//! Golden test vectors: exact wire bytes for representative messages.
//! These pin the protocol encoding — any codec change that breaks
//! cross-version compatibility fails here, loudly and on purpose.

use cosoft_wire::{
    codec, AccessRight, AttrName, CopyMode, EventKind, GlobalObjectId, InstanceId, Message,
    ObjectPath, StateNode, Target, UiEvent, UserId, Value, WidgetKind,
};

fn gid(i: u64, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).expect("valid"))
}

#[test]
fn golden_register() {
    let m = Message::Register { user: UserId(7), host: "ws1".into(), app_name: "tori".into() };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            0, // tag Register
            7, // user varint
            3, b'w', b's', b'1', // host
            4, b't', b'o', b'r', b'i', // app_name
        ]
    );
}

#[test]
fn golden_welcome_with_multibyte_varint() {
    let m = Message::Welcome { instance: InstanceId(300) };
    // 300 = 0b100101100 -> LEB128: 0xAC 0x02
    assert_eq!(codec::encode_message(&m), vec![3, 0xac, 0x02]);
}

#[test]
fn golden_couple() {
    let m = Message::Couple { src: gid(1, "f.t"), dst: gid(2, "g") };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            5, // tag Couple
            1, // src instance
            2, 1, b'f', 1, b't', // src path: 2 segments "f" "t"
            2,    // dst instance
            1, 1, b'g', // dst path: 1 segment "g"
        ]
    );
}

#[test]
fn golden_event_with_params() {
    let m = Message::Event {
        origin: gid(1, "f"),
        event: UiEvent::new(
            ObjectPath::parse("f").expect("valid"),
            EventKind::ValueChanged,
            vec![Value::Int(-3), Value::Bool(true)],
        ),
        seq: 9,
    };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            12, // tag Event
            1,  // origin instance
            1, 1, b'f', // origin path
            1, 1, b'f', // event path
            1,    // EventKind::ValueChanged
            2,    // 2 params
            1, 5, // Value::Int tag, zigzag(-3)=5
            0, 1, // Value::Bool tag, true
            9, // seq
        ]
    );
}

#[test]
fn golden_apply_state() {
    let snapshot =
        StateNode::new(WidgetKind::Label, "l").with_attr(AttrName::Text, Value::Text("hi".into()));
    let m = Message::ApplyState {
        req_id: 4,
        path: ObjectPath::parse("f.l").expect("valid"),
        snapshot,
        mode: CopyMode::FlexibleMatch,
    };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            23, // tag ApplyState
            4,  // req_id
            2, 1, b'f', 1, b'l', // path
            5, b'l', b'a', b'b', b'e', b'l', // kind "label"
            1, b'l', // name "l"
            1,    // 1 attr
            4, b't', b'e', b'x', b't', // attr name "text"
            3, 2, b'h', b'i', // Value::Text "hi"
            0,    // semantic: 0 bytes
            0,    // 0 children
            2,    // CopyMode::FlexibleMatch
        ]
    );
}

#[test]
fn golden_co_send_command() {
    let m = Message::CoSendCommand {
        to: Target::Group(gid(3, "q")),
        command: "rpc".into(),
        payload: vec![0xde, 0xad],
    };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            29, // tag CoSendCommand
            2,  // Target::Group
            3, 1, 1, b'q', // gid
            3, b'r', b'p', b'c', // command
            2, 0xde, 0xad, // payload
        ]
    );
}

#[test]
fn golden_set_permission() {
    let m =
        Message::SetPermission { user: UserId(2), object: gid(1, "f"), right: AccessRight::Read };
    assert_eq!(codec::encode_message(&m), vec![27, 2, 1, 1, 1, b'f', 1]);
}

#[test]
fn golden_frame_layout() {
    let m = Message::Deregister;
    // Frame = u32-le length (1) + body (tag 1).
    assert_eq!(codec::frame_message(&m), vec![1, 0, 0, 0, 1]);
}

#[test]
fn golden_float_bits() {
    let mut buf = bytes::BytesMut::new();
    codec::put_value(&mut buf, &Value::Float(1.0));
    // Tag 2 + IEEE-754 little-endian bits of 1.0.
    assert_eq!(buf.to_vec(), vec![2, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f]);
}

#[test]
fn golden_liveness_messages() {
    // 300 = LEB128 0xAC 0x02.
    assert_eq!(codec::encode_message(&Message::Rejoin { resume_token: 300 }), vec![33, 0xac, 0x02]);
    assert_eq!(codec::encode_message(&Message::Ping { nonce: 5 }), vec![34, 5]);
    assert_eq!(codec::encode_message(&Message::Pong { nonce: 5 }), vec![35, 5]);
    assert_eq!(
        codec::encode_message(&Message::SessionToken { resume_token: 300 }),
        vec![36, 0xac, 0x02]
    );
}

#[test]
fn golden_stroke_list() {
    let mut buf = bytes::BytesMut::new();
    codec::put_value(&mut buf, &Value::StrokeList(vec![vec![(1, -1)], vec![]]));
    assert_eq!(
        buf.to_vec(),
        vec![
            10, // StrokeList tag
            2,  // 2 strokes
            1, 2, 1, // stroke 0: 1 point, zigzag(1)=2, zigzag(-1)=1
            0, // stroke 1: 0 points
        ]
    );
}
