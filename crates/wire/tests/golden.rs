//! Golden test vectors: exact wire bytes for every message kind.
//! These pin the protocol encoding — any codec change that breaks
//! cross-version compatibility fails here, loudly and on purpose.
//!
//! The table in [`golden_table`] carries one entry per [`Message`]
//! variant; [`golden_table_is_complete`] asserts it against
//! [`Message::ALL_KINDS`], the same canonical variant list the
//! `cosoft-audit` lint checks against the enum declaration and the
//! codec's tag tables. The two can therefore never drift: a new variant
//! without a golden vector fails this suite *and* the audit binary.

use std::collections::BTreeSet;

use cosoft_wire::{
    codec, AccessRight, AttrName, CopyMode, EditOp, EventKind, GlobalObjectId, InstanceId,
    InstanceInfo, Message, NodeEdit, NodePatch, ObjectPath, StateDelta, StateNode, Target, UiEvent,
    UserId, Value, WidgetKind,
};

fn gid(i: u64, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).expect("valid"))
}

fn path(p: &str) -> ObjectPath {
    ObjectPath::parse(p).expect("valid")
}

/// The snapshot used by every state-carrying entry: one label with one
/// text attribute, encoded as
/// `kind "label" ‖ name "l" ‖ 1 attr ("text" → Text "hi") ‖ 0 semantic ‖ 0 children`.
fn snap() -> StateNode {
    StateNode::new(WidgetKind::Label, "l").with_attr(AttrName::Text, Value::Text("hi".into()))
}

/// One golden vector per protocol message kind, in wire-tag order of the
/// session-management block first, then the declaration order of the
/// remaining groups. The byte vectors are literal on purpose: they are
/// the cross-version compatibility contract.
fn golden_table() -> Vec<(Message, Vec<u8>)> {
    use Message as M;
    vec![
        (
            M::Register { user: UserId(7), host: "ws1".into(), app_name: "tori".into() },
            vec![0x00, 0x07, 0x03, 0x77, 0x73, 0x31, 0x04, 0x74, 0x6f, 0x72, 0x69],
        ),
        (M::Deregister, vec![0x01]),
        // 300 = LEB128 0xAC 0x02.
        (M::Rejoin { resume_token: 300 }, vec![0x21, 0xac, 0x02]),
        (M::Ping { nonce: 5 }, vec![0x22, 0x05]),
        (M::Pong { nonce: 5 }, vec![0x23, 0x05]),
        (M::QueryInstances, vec![0x02]),
        (M::Welcome { instance: InstanceId(300) }, vec![0x03, 0xac, 0x02]),
        (
            M::InstanceList {
                entries: vec![InstanceInfo {
                    instance: InstanceId(1),
                    user: UserId(2),
                    host: "ws1".into(),
                    app_name: "t".into(),
                }],
            },
            vec![0x04, 0x01, 0x01, 0x02, 0x03, 0x77, 0x73, 0x31, 0x01, 0x74],
        ),
        (M::SessionToken { resume_token: 300 }, vec![0x24, 0xac, 0x02]),
        (
            M::Couple { src: gid(1, "f.t"), dst: gid(2, "g") },
            vec![0x05, 0x01, 0x02, 0x01, 0x66, 0x01, 0x74, 0x02, 0x01, 0x01, 0x67],
        ),
        (
            M::Decouple { src: gid(1, "f.t"), dst: gid(2, "g") },
            vec![0x06, 0x01, 0x02, 0x01, 0x66, 0x01, 0x74, 0x02, 0x01, 0x01, 0x67],
        ),
        (
            M::RemoteCouple { a: gid(3, "x"), b: gid(4, "y") },
            vec![0x07, 0x03, 0x01, 0x01, 0x78, 0x04, 0x01, 0x01, 0x79],
        ),
        (
            M::RemoteDecouple { a: gid(3, "x"), b: gid(4, "y") },
            vec![0x08, 0x03, 0x01, 0x01, 0x78, 0x04, 0x01, 0x01, 0x79],
        ),
        (
            M::CoupleUpdate { group: vec![gid(1, "a"), gid(2, "b")] },
            vec![0x09, 0x02, 0x01, 0x01, 0x01, 0x61, 0x02, 0x01, 0x01, 0x62],
        ),
        (M::ListCoupled { object: gid(1, "a") }, vec![0x0a, 0x01, 0x01, 0x01, 0x61]),
        (M::ObjectDestroyed { object: gid(1, "a") }, vec![0x20, 0x01, 0x01, 0x01, 0x61]),
        (
            M::CoupledSet { object: gid(1, "a"), coupled: vec![gid(2, "b")] },
            vec![0x0b, 0x01, 0x01, 0x01, 0x61, 0x01, 0x02, 0x01, 0x01, 0x62],
        ),
        (
            M::Event {
                origin: gid(1, "f"),
                event: UiEvent::new(
                    path("f"),
                    EventKind::ValueChanged,
                    vec![Value::Int(-3), Value::Bool(true)],
                ),
                seq: 9,
            },
            // tag ‖ origin ‖ event path ‖ kind=1 ‖ 2 params:
            // Int zigzag(-3)=5, Bool true ‖ seq.
            vec![
                0x0c, 0x01, 0x01, 0x01, 0x66, 0x01, 0x01, 0x66, 0x01, 0x02, 0x01, 0x05, 0x00, 0x01,
                0x09,
            ],
        ),
        (M::EventGranted { seq: 9, exec_id: 7 }, vec![0x0d, 0x09, 0x07]),
        (M::EventRejected { seq: 9 }, vec![0x0e, 0x09]),
        (
            M::ExecuteEvent {
                exec_id: 7,
                target: path("g"),
                event: UiEvent::simple(path("f"), EventKind::Activate),
            },
            vec![0x0f, 0x07, 0x01, 0x01, 0x67, 0x01, 0x01, 0x66, 0x00, 0x00],
        ),
        (M::ExecuteDone { exec_id: 7 }, vec![0x10, 0x07]),
        (
            M::GroupUnlocked { exec_id: 7, objects: vec![path("g")] },
            vec![0x11, 0x07, 0x01, 0x01, 0x01, 0x67],
        ),
        (
            M::CopyFrom { src: gid(1, "a"), dst: gid(2, "b"), mode: CopyMode::Strict, req_id: 1 },
            vec![0x12, 0x01, 0x01, 0x01, 0x61, 0x02, 0x01, 0x01, 0x62, 0x00, 0x01],
        ),
        (
            M::CopyTo {
                src: gid(1, "a"),
                dst: gid(2, "b"),
                snapshot: snap(),
                mode: CopyMode::DestructiveMerge,
                req_id: 2,
            },
            vec![
                0x13, 0x01, 0x01, 0x01, 0x61, 0x02, 0x01, 0x01, 0x62, 0x05, 0x6c, 0x61, 0x62, 0x65,
                0x6c, 0x01, 0x6c, 0x01, 0x04, 0x74, 0x65, 0x78, 0x74, 0x03, 0x02, 0x68, 0x69, 0x00,
                0x00, 0x01, 0x02,
            ],
        ),
        (
            M::RemoteCopy {
                src: gid(1, "a"),
                dst: gid(2, "b"),
                mode: CopyMode::FlexibleMatch,
                req_id: 3,
            },
            vec![0x14, 0x01, 0x01, 0x01, 0x61, 0x02, 0x01, 0x01, 0x62, 0x02, 0x03],
        ),
        (M::StateRequest { req_id: 3, path: path("a") }, vec![0x15, 0x03, 0x01, 0x01, 0x61]),
        (
            M::StateReply { req_id: 3, snapshot: Some(snap()) },
            vec![
                0x16, 0x03, 0x01, 0x05, 0x6c, 0x61, 0x62, 0x65, 0x6c, 0x01, 0x6c, 0x01, 0x04, 0x74,
                0x65, 0x78, 0x74, 0x03, 0x02, 0x68, 0x69, 0x00, 0x00,
            ],
        ),
        (
            M::ApplyState {
                req_id: 4,
                path: path("f.l"),
                snapshot: snap(),
                mode: CopyMode::FlexibleMatch,
            },
            vec![
                0x17, 0x04, 0x02, 0x01, 0x66, 0x01, 0x6c, 0x05, 0x6c, 0x61, 0x62, 0x65, 0x6c, 0x01,
                0x6c, 0x01, 0x04, 0x74, 0x65, 0x78, 0x74, 0x03, 0x02, 0x68, 0x69, 0x00, 0x00, 0x02,
            ],
        ),
        (
            M::StateApplied { req_id: 3, overwritten: None, error: Some("bad".into()) },
            vec![0x18, 0x03, 0x00, 0x01, 0x03, 0x62, 0x61, 0x64],
        ),
        (M::UndoState { object: gid(2, "b") }, vec![0x19, 0x02, 0x01, 0x01, 0x62]),
        (M::RedoState { object: gid(2, "b") }, vec![0x1a, 0x02, 0x01, 0x01, 0x62]),
        (
            M::SetPermission { user: UserId(2), object: gid(1, "f"), right: AccessRight::Read },
            vec![0x1b, 0x02, 0x01, 0x01, 0x01, 0x66, 0x01],
        ),
        (M::PermissionDenied { what: "no".into() }, vec![0x1c, 0x02, 0x6e, 0x6f]),
        (
            M::CoSendCommand {
                to: Target::Group(gid(3, "q")),
                command: "rpc".into(),
                payload: vec![0xde, 0xad],
            },
            vec![0x1d, 0x02, 0x03, 0x01, 0x01, 0x71, 0x03, 0x72, 0x70, 0x63, 0x02, 0xde, 0xad],
        ),
        (
            M::CommandDelivery { from: InstanceId(1), command: "rpc".into(), payload: vec![0xde] },
            vec![0x1e, 0x01, 0x03, 0x72, 0x70, 0x63, 0x01, 0xde],
        ),
        (
            M::ErrorReply { context: "couple".into(), reason: "bad".into() },
            vec![0x1f, 0x06, 0x63, 0x6f, 0x75, 0x70, 0x6c, 0x65, 0x03, 0x62, 0x61, 0x64],
        ),
        (M::Busy { retry_after_ms: 300 }, vec![0x25, 0xac, 0x02]),
        (
            M::ApplyDelta {
                req_id: 5,
                path: path("f.l"),
                base_version: 9,
                new_version: 300,
                delta: StateDelta {
                    edits: vec![NodeEdit {
                        path: vec![],
                        op: EditOp::Patch(NodePatch {
                            kind: None,
                            upserts: [(AttrName::Text, Value::Text("hi".into()))]
                                .into_iter()
                                .collect(),
                            removals: vec![],
                            semantic: None,
                        }),
                    }],
                },
                mode: CopyMode::FlexibleMatch,
            },
            // tag ‖ req_id ‖ path "f.l" ‖ base 9 ‖ new 300 (LEB128 0xAC
            // 0x02) ‖ 1 edit: empty path, Patch (no kind, 1 upsert
            // "text" → Text "hi", 0 removals, no semantic) ‖ mode.
            vec![
                0x26, 0x05, 0x02, 0x01, 0x66, 0x01, 0x6c, 0x09, 0xac, 0x02, 0x01, 0x00, 0x00, 0x00,
                0x01, 0x04, 0x74, 0x65, 0x78, 0x74, 0x03, 0x02, 0x68, 0x69, 0x00, 0x00, 0x02,
            ],
        ),
    ]
}

/// The completeness contract: the golden table covers exactly the
/// protocol's variant list, with no kind missing, duplicated, or stale.
#[test]
fn golden_table_is_complete() {
    let table = golden_table();
    let covered: Vec<&str> = table.iter().map(|(m, _)| m.kind_name()).collect();
    let covered_set: BTreeSet<&str> = covered.iter().copied().collect();
    assert_eq!(covered.len(), covered_set.len(), "duplicate kind in golden table");

    let expected: BTreeSet<&str> = Message::ALL_KINDS.iter().copied().collect();
    assert_eq!(expected.len(), Message::ALL_KINDS.len(), "Message::ALL_KINDS contains duplicates");
    let missing: Vec<&&str> = expected.difference(&covered_set).collect();
    let stale: Vec<&&str> = covered_set.difference(&expected).collect();
    assert!(
        missing.is_empty() && stale.is_empty(),
        "golden table drifted from Message::ALL_KINDS — missing {missing:?}, stale {stale:?}"
    );
}

/// Every table entry encodes to exactly its pinned bytes.
#[test]
fn golden_vectors_encode_exactly() {
    for (m, bytes) in golden_table() {
        assert_eq!(
            codec::encode_message(&m),
            bytes,
            "wire encoding of {} changed — this breaks cross-version compatibility",
            m.kind_name()
        );
    }
}

/// Every pinned byte vector decodes back to its message (the vectors are
/// valid wire traffic, not just encoder output).
#[test]
fn golden_vectors_decode_back() {
    for (m, bytes) in golden_table() {
        let back = codec::decode_message(&bytes)
            .unwrap_or_else(|e| panic!("golden bytes of {} failed to decode: {e}", m.kind_name()));
        assert_eq!(back, m, "round trip through golden bytes diverged for {}", m.kind_name());
    }
}

/// For every protocol kind, the shared (encode-once) framing is
/// byte-identical to the owned framing: a peer cannot tell whether the
/// server unicast-encoded its frame or fanned one shared encode out to
/// the whole group.
#[test]
fn golden_shared_frames_are_byte_identical() {
    for (m, bytes) in golden_table() {
        let frame = codec::frame_message_shared(&m);
        assert_eq!(
            frame.as_slice(),
            codec::frame_message(&m).as_slice(),
            "shared and owned framings of {} diverged",
            m.kind_name()
        );
        assert_eq!(frame.body(), &bytes[..], "shared frame body of {} drifted", m.kind_name());
        assert_eq!(frame.tag(), Some(bytes[0]), "shared frame tag of {}", m.kind_name());
        assert_eq!(
            frame.decode().expect("shared frame decodes"),
            m,
            "shared frame of {} decoded to a different message",
            m.kind_name()
        );
    }
}

/// `SharedFrame::kind_name` (driven by the tag-indexed
/// `TAG_KIND_NAMES` table) agrees with `Message::kind_name` for every
/// kind — the table the audit lint also checks.
#[test]
fn golden_shared_frame_kind_names_match() {
    for (m, _) in golden_table() {
        let frame = codec::frame_message_shared(&m);
        assert_eq!(frame.kind_name(), Some(m.kind_name()));
    }
}

/// Wire tags are unique: no two table entries share a first byte.
#[test]
fn golden_wire_tags_are_unique() {
    let mut seen: BTreeSet<u8> = BTreeSet::new();
    for (m, bytes) in golden_table() {
        let tag = bytes[0];
        assert!(seen.insert(tag), "wire tag {tag} reused by {}", m.kind_name());
    }
}

// ---- hand-annotated spot checks (kept from the original suite) ----------

#[test]
fn golden_couple_annotated() {
    let m = Message::Couple { src: gid(1, "f.t"), dst: gid(2, "g") };
    assert_eq!(
        codec::encode_message(&m),
        vec![
            5, // tag Couple
            1, // src instance
            2, 1, b'f', 1, b't', // src path: 2 segments "f" "t"
            2,    // dst instance
            1, 1, b'g', // dst path: 1 segment "g"
        ]
    );
}

#[test]
fn golden_frame_layout() {
    let m = Message::Deregister;
    // Frame = u32-le length (1) + body (tag 1).
    assert_eq!(codec::frame_message(&m), vec![1, 0, 0, 0, 1]);
}

#[test]
fn golden_float_bits() {
    let mut buf = bytes::BytesMut::new();
    codec::put_value(&mut buf, &Value::Float(1.0));
    // Tag 2 + IEEE-754 little-endian bits of 1.0.
    assert_eq!(buf.to_vec(), vec![2, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f]);
}

#[test]
fn golden_stroke_list() {
    let mut buf = bytes::BytesMut::new();
    codec::put_value(&mut buf, &Value::StrokeList(vec![vec![(1, -1)], vec![]]));
    assert_eq!(
        buf.to_vec(),
        vec![
            10, // StrokeList tag
            2,  // 2 strokes
            1, 2, 1, // stroke 0: 1 point, zigzag(1)=2, zigzag(-1)=1
            0, // stroke 1: 0 points
        ]
    );
}
