//! Property-based tests for the wire codec: `decode(encode(m)) == m` for
//! arbitrary protocol values, and decoder robustness on arbitrary bytes.

use proptest::prelude::*;

use cosoft_wire::codec;
use cosoft_wire::{
    AccessRight, AttrName, CopyMode, EventKind, GlobalObjectId, InstanceId, Message, ObjectPath,
    StateNode, Target, UiEvent, UserId, Value, WidgetKind,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _\\-\u{e4}\u{f6}]{0,24}".prop_map(Value::Text),
        prop::collection::vec("[a-z]{0,8}", 0..5).prop_map(Value::TextList),
        prop::collection::vec(any::<i64>(), 0..6).prop_map(Value::IntList),
        (any::<i32>(), any::<i32>()).prop_map(|(x, y)| Value::Point(x, y)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Value::Color(r, g, b)),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
        prop::collection::vec((any::<i32>(), any::<i32>()), 0..16).prop_map(Value::Stroke),
        prop::collection::vec(prop::collection::vec((any::<i32>(), any::<i32>()), 0..6), 0..5)
            .prop_map(Value::StrokeList),
    ]
}

fn arb_attr_name() -> impl Strategy<Value = AttrName> {
    prop_oneof![
        Just(AttrName::Title),
        Just(AttrName::Text),
        Just(AttrName::ValueNum),
        Just(AttrName::Selected),
        Just(AttrName::Enabled),
        Just(AttrName::Checked),
        // Map through the canonical parser so generated custom names never
        // collide with builtin names (the wire form is the canonical string).
        "[a-z][a-z0-9_]{0,10}".prop_map(|s| AttrName::from_str_lossy(&s)),
    ]
}

fn arb_kind() -> impl Strategy<Value = WidgetKind> {
    prop_oneof![
        Just(WidgetKind::Form),
        Just(WidgetKind::Panel),
        Just(WidgetKind::Button),
        Just(WidgetKind::Menu),
        Just(WidgetKind::TextField),
        Just(WidgetKind::Label),
        Just(WidgetKind::List),
        Just(WidgetKind::Slider),
        Just(WidgetKind::Canvas),
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| WidgetKind::from_str_lossy(&s)),
    ]
}

fn arb_path() -> impl Strategy<Value = ObjectPath> {
    prop::collection::vec("[a-zA-Z][a-zA-Z0-9_]{0,8}", 0..5)
        .prop_map(|segs| ObjectPath::from_segments(segs).expect("valid segments"))
}

fn arb_gid() -> impl Strategy<Value = GlobalObjectId> {
    (any::<u64>(), arb_path()).prop_map(|(i, p)| GlobalObjectId::new(InstanceId(i), p))
}

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Activate),
        Just(EventKind::ValueChanged),
        Just(EventKind::TextCommitted),
        Just(EventKind::TextEdited),
        Just(EventKind::SelectionChanged),
        Just(EventKind::Toggled),
        Just(EventKind::StrokeAdded),
        Just(EventKind::CanvasCleared),
        Just(EventKind::RowActivated),
        "[a-z][a-z\\-]{0,10}".prop_map(EventKind::Custom),
    ]
}

fn arb_event() -> impl Strategy<Value = UiEvent> {
    (arb_path(), arb_event_kind(), prop::collection::vec(arb_value(), 0..4))
        .prop_map(|(p, k, params)| UiEvent::new(p, k, params))
}

fn arb_state() -> impl Strategy<Value = StateNode> {
    let leaf = (
        arb_kind(),
        "[a-z][a-z0-9]{0,6}",
        prop::collection::btree_map(arb_attr_name(), arb_value(), 0..4),
        prop::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(|(kind, name, attrs, semantic)| {
            let mut n = StateNode::new(kind, &name);
            n.attrs = attrs;
            n.semantic = semantic;
            n
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_kind(),
            "[a-z][a-z0-9]{0,6}",
            prop::collection::btree_map(arb_attr_name(), arb_value(), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(kind, name, attrs, children)| {
                let mut n = StateNode::new(kind, &name);
                n.attrs = attrs;
                n.children = children;
                n
            })
    })
}

fn arb_copy_mode() -> impl Strategy<Value = CopyMode> {
    prop_oneof![
        Just(CopyMode::Strict),
        Just(CopyMode::DestructiveMerge),
        Just(CopyMode::FlexibleMatch)
    ]
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        any::<u64>().prop_map(|i| Target::Instance(InstanceId(i))),
        Just(Target::Broadcast),
        arb_gid().prop_map(Target::Group),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), "[a-z0-9]{0,10}", "[a-z0-9\\-]{0,12}").prop_map(|(u, host, app)| {
            Message::Register { user: UserId(u), host, app_name: app }
        }),
        Just(Message::Deregister),
        Just(Message::QueryInstances),
        any::<u64>().prop_map(|i| Message::Welcome { instance: InstanceId(i) }),
        (arb_gid(), arb_gid()).prop_map(|(src, dst)| Message::Couple { src, dst }),
        (arb_gid(), arb_gid()).prop_map(|(src, dst)| Message::Decouple { src, dst }),
        (arb_gid(), arb_gid()).prop_map(|(a, b)| Message::RemoteCouple { a, b }),
        prop::collection::vec(arb_gid(), 0..5).prop_map(|group| Message::CoupleUpdate { group }),
        (arb_gid(), arb_event(), any::<u64>()).prop_map(|(origin, event, seq)| Message::Event {
            origin,
            event,
            seq
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, exec_id)| Message::EventGranted { seq, exec_id }),
        (any::<u64>(), arb_path(), arb_event())
            .prop_map(|(exec_id, target, event)| Message::ExecuteEvent { exec_id, target, event }),
        (any::<u64>(), prop::collection::vec(arb_path(), 0..4))
            .prop_map(|(exec_id, objects)| Message::GroupUnlocked { exec_id, objects }),
        (arb_gid(), arb_gid(), arb_copy_mode(), any::<u64>())
            .prop_map(|(src, dst, mode, req_id)| Message::CopyFrom { src, dst, mode, req_id }),
        (arb_gid(), arb_gid(), arb_state(), arb_copy_mode(), any::<u64>()).prop_map(
            |(src, dst, snapshot, mode, req_id)| Message::CopyTo {
                src,
                dst,
                snapshot,
                mode,
                req_id
            }
        ),
        (any::<u64>(), prop::option::of(arb_state()))
            .prop_map(|(req_id, snapshot)| Message::StateReply { req_id, snapshot }),
        (any::<u64>(), arb_path(), arb_state(), arb_copy_mode()).prop_map(
            |(req_id, path, snapshot, mode)| Message::ApplyState { req_id, path, snapshot, mode }
        ),
        (any::<u64>(), prop::option::of(arb_state()), prop::option::of("[a-z ]{0,20}")).prop_map(
            |(req_id, overwritten, error)| Message::StateApplied { req_id, overwritten, error }
        ),
        (
            any::<u64>(),
            arb_gid(),
            prop_oneof![
                Just(AccessRight::Denied),
                Just(AccessRight::Read),
                Just(AccessRight::Write)
            ]
        )
            .prop_map(|(u, object, right)| Message::SetPermission {
                user: UserId(u),
                object,
                right
            }),
        (arb_target(), "[a-z\\-]{1,12}", prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(to, command, payload)| Message::CoSendCommand { to, command, payload }),
        ("[a-z ]{0,16}", "[a-z ]{0,24}")
            .prop_map(|(context, reason)| Message::ErrorReply { context, reason }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_round_trip(m in arb_message()) {
        let bytes = codec::encode_message(&m);
        let back = codec::decode_message(&bytes).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn value_round_trip(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_value(&mut buf, &v);
        let mut r = buf.freeze();
        prop_assert_eq!(codec::get_value(&mut r).unwrap(), v);
        prop_assert!(r.iter().next().is_none(), "no trailing bytes");
    }

    #[test]
    fn state_round_trip(s in arb_state()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_state(&mut buf, &s);
        let mut r = buf.freeze();
        prop_assert_eq!(codec::get_state(&mut r).unwrap(), s);
    }

    #[test]
    fn shared_frame_matches_owned_framing(m in arb_message()) {
        let frame = codec::frame_message_shared(&m);
        prop_assert_eq!(frame.as_slice(), codec::frame_message(&m).as_slice());
        prop_assert_eq!(frame.decode().unwrap(), m);
    }

    #[test]
    fn spliced_execute_event_matches_whole_message(
        exec_id in any::<u64>(),
        target in arb_path(),
        event in arb_event(),
    ) {
        // The fan-out path encodes the event payload once and splices it
        // into per-target frames; the result must be indistinguishable
        // from framing the whole ExecuteEvent message.
        let payload = codec::encode_event_shared(&event);
        let frame = codec::frame_execute_event(exec_id, &target, &payload);
        let msg = Message::ExecuteEvent { exec_id, target, event };
        prop_assert_eq!(frame.as_slice(), codec::frame_message(&msg).as_slice());
        prop_assert_eq!(frame.decode().unwrap(), msg);
    }

    #[test]
    fn spliced_apply_state_matches_whole_message(
        req_id in any::<u64>(),
        path in arb_path(),
        snapshot in arb_state(),
        mode in arb_copy_mode(),
    ) {
        let payload = codec::encode_state_shared(&snapshot);
        let frame = codec::frame_apply_state(req_id, &path, &payload, mode);
        let msg = Message::ApplyState { req_id, path, snapshot, mode };
        prop_assert_eq!(frame.as_slice(), codec::frame_message(&msg).as_slice());
        prop_assert_eq!(frame.decode().unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic or hang.
        let _ = codec::decode_message(&bytes);
    }

    #[test]
    fn framing_round_trip(msgs in prop::collection::vec(arb_message(), 0..8)) {
        let mut stream = Vec::new();
        for m in &msgs {
            codec::write_frame(&mut stream, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for m in &msgs {
            let got = codec::read_frame(&mut cursor).unwrap().expect("frame");
            prop_assert_eq!(&got, m);
        }
        prop_assert!(codec::read_frame(&mut cursor).unwrap().is_none());
    }
}
