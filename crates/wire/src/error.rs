use std::fmt;

/// Error produced while encoding or decoding wire data.
///
/// All variants carry enough context to locate the malformed byte region in
/// a captured frame; `Display` messages are lowercase and concise per Rust
/// API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before a complete value could be decoded.
    UnexpectedEof {
        /// What the decoder was trying to read.
        expected: &'static str,
    },
    /// A tag byte did not correspond to any known variant.
    InvalidTag {
        /// Which tagged union was being decoded.
        kind: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A varint used more bytes than permitted for its width.
    VarintOverflow,
    /// A declared length exceeded the configured maximum.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum the decoder accepts.
        max: u64,
    },
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An object pathname was syntactically invalid.
    InvalidPath {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input while reading {expected}")
            }
            WireError::InvalidTag { kind, tag } => {
                write!(f, "invalid tag {tag:#04x} for {kind}")
            }
            WireError::InvalidUtf8 => write!(f, "string field was not valid utf-8"),
            WireError::VarintOverflow => write!(f, "varint exceeded 64 bits"),
            WireError::LengthOverflow { declared, max } => {
                write!(f, "declared length {declared} exceeds maximum {max}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::InvalidPath { reason } => write!(f, "invalid object path: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            WireError::UnexpectedEof { expected: "varint" },
            WireError::InvalidTag { kind: "Value", tag: 0xff },
            WireError::InvalidUtf8,
            WireError::VarintOverflow,
            WireError::LengthOverflow { declared: 10, max: 5 },
            WireError::TrailingBytes { remaining: 3 },
            WireError::InvalidPath { reason: "empty segment" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_numeric));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
