use std::collections::BTreeMap;

use crate::{AttrName, Value, WidgetKind};

/// Ordered attribute map of one UI object.
///
/// A `BTreeMap` keeps wire encoding and diffing deterministic.
pub type AttrMap = BTreeMap<AttrName, Value>;

/// Snapshot of the state of a (possibly complex) UI object.
///
/// "The state of a UI object is the set of attribute–value pairs of this
/// object" (§3); a complex object snapshot is the tree of its components.
/// Snapshots are the payload of synchronization-by-state (`CopyFrom`,
/// `CopyTo`, `RemoteCopy`) and of the server's historical-UI-state store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateNode {
    /// Widget class of this node.
    pub kind: WidgetKind,
    /// The widget's own name (last pathname segment). The root node of a
    /// snapshot keeps its name so destructive merging can recreate it.
    pub name: String,
    /// Attribute–value pairs. For snapshots taken for coupling purposes this
    /// is restricted to the *relevant* attributes of the widget's type.
    pub attrs: AttrMap,
    /// Child component snapshots, in tree order.
    pub children: Vec<StateNode>,
    /// Opaque semantic payload produced by the application's `store`
    /// function (§3.1 "synchronizing semantic state"), applied by its
    /// `load` function on the receiving side. Empty when the object carries
    /// no semantic data.
    pub semantic: Vec<u8>,
}

impl StateNode {
    /// Creates a leaf snapshot with no attributes.
    pub fn new(kind: WidgetKind, name: &str) -> Self {
        StateNode {
            kind,
            name: name.to_owned(),
            attrs: AttrMap::new(),
            children: Vec::new(),
            semantic: Vec::new(),
        }
    }

    /// Builder-style: sets one attribute.
    pub fn with_attr(mut self, name: AttrName, value: Value) -> Self {
        self.attrs.insert(name, value);
        self
    }

    /// Builder-style: appends a child snapshot.
    pub fn with_child(mut self, child: StateNode) -> Self {
        self.children.push(child);
        self
    }

    /// Total number of nodes in the snapshot tree (including `self`).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(StateNode::node_count).sum::<usize>()
    }

    /// Depth of the snapshot tree (a leaf has depth 1).
    pub fn tree_depth(&self) -> usize {
        1 + self.children.iter().map(StateNode::tree_depth).max().unwrap_or(0)
    }

    /// Looks up a direct child by name.
    pub fn child(&self, name: &str) -> Option<&StateNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Approximate in-memory/wire size in bytes, used by benchmarks to
    /// report state-copy payload sizes.
    pub fn approx_size(&self) -> usize {
        let own: usize = self.name.len()
            + self.semantic.len()
            + self.attrs.iter().map(|(k, v)| k.as_str().len() + value_size(v)).sum::<usize>()
            + 8;
        own + self.children.iter().map(StateNode::approx_size).sum::<usize>()
    }

    /// Iterates over all nodes in pre-order together with their relative
    /// path segments from this root (the root itself has an empty path).
    pub fn walk(&self) -> Vec<(Vec<&str>, &StateNode)> {
        let mut out = Vec::new();
        fn rec<'a>(
            node: &'a StateNode,
            path: &mut Vec<&'a str>,
            out: &mut Vec<(Vec<&'a str>, &'a StateNode)>,
        ) {
            out.push((path.clone(), node));
            for c in &node.children {
                path.push(&c.name);
                rec(c, path, out);
                path.pop();
            }
        }
        rec(self, &mut Vec::new(), &mut out);
        out
    }
}

fn value_size(v: &Value) -> usize {
    match v {
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Text(s) => s.len() + 2,
        Value::TextList(v) => v.iter().map(|s| s.len() + 2).sum::<usize>() + 2,
        Value::IntList(v) => v.len() * 8 + 2,
        Value::Point(_, _) => 8,
        Value::Color(_, _, _) => 3,
        Value::Bytes(b) => b.len() + 2,
        Value::Stroke(p) => p.len() * 8 + 2,
        Value::StrokeList(s) => s.iter().map(|p| p.len() * 8 + 2).sum::<usize>() + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateNode {
        StateNode::new(WidgetKind::Form, "root")
            .with_attr(AttrName::Title, Value::Text("Query".into()))
            .with_child(
                StateNode::new(WidgetKind::TextField, "author")
                    .with_attr(AttrName::Text, Value::Text("Hoppe".into())),
            )
            .with_child(
                StateNode::new(WidgetKind::Menu, "operator")
                    .with_attr(AttrName::Selected, Value::Int(1)),
            )
    }

    #[test]
    fn node_count_and_depth() {
        let s = sample();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.tree_depth(), 2);
        assert_eq!(StateNode::new(WidgetKind::Button, "b").tree_depth(), 1);
    }

    #[test]
    fn child_lookup() {
        let s = sample();
        assert!(s.child("author").is_some());
        assert!(s.child("missing").is_none());
    }

    #[test]
    fn walk_visits_in_preorder() {
        let s = sample();
        let nodes = s.walk();
        assert_eq!(nodes.len(), 3);
        assert!(nodes[0].0.is_empty());
        assert_eq!(nodes[1].0, vec!["author"]);
        assert_eq!(nodes[2].0, vec!["operator"]);
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = StateNode::new(WidgetKind::Label, "l");
        let big = small.clone().with_attr(AttrName::Text, Value::Text("x".repeat(100)));
        assert!(big.approx_size() > small.approx_size() + 90);
    }
}
