use std::fmt;

use crate::{GlobalObjectId, InstanceId, ObjectPath, StateDelta, StateNode, UiEvent, UserId};

/// Access-right category of the server's three-valued permission tuples
/// `(user, UI-state identifier, access right)` (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessRight {
    /// No access: the user may neither read (copy) nor couple the state.
    Denied,
    /// Read access: the user's instances may copy the UI state.
    Read,
    /// Write access: the user's instances may couple with and modify the
    /// state. Implies `Read`.
    Write,
}

impl AccessRight {
    /// Whether this right permits reading (state copy).
    pub fn allows_read(self) -> bool {
        matches!(self, AccessRight::Read | AccessRight::Write)
    }

    /// Whether this right permits writing (coupling, event re-execution).
    pub fn allows_write(self) -> bool {
        matches!(self, AccessRight::Write)
    }
}

impl fmt::Display for AccessRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessRight::Denied => "denied",
            AccessRight::Read => "read",
            AccessRight::Write => "write",
        })
    }
}

/// How a UI-state snapshot is applied to a destination object (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyMode {
    /// Require structural compatibility; fail otherwise.
    Strict,
    /// Destructive merging: copy attribute values *and structure*,
    /// destroying conflicting children of the destination and creating
    /// missing ones.
    DestructiveMerge,
    /// Flexible matching: synchronize the identical substructure and
    /// conserve differing substructures.
    FlexibleMatch,
}

impl fmt::Display for CopyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CopyMode::Strict => "strict",
            CopyMode::DestructiveMerge => "destructive-merge",
            CopyMode::FlexibleMatch => "flexible-match",
        })
    }
}

/// Routing target of a `CoSendCommand` application command (§3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// Deliver to one instance.
    Instance(InstanceId),
    /// Deliver to every registered instance except the sender.
    Broadcast,
    /// Deliver to every instance owning an object coupled with the given
    /// object (the coupling group of §3).
    Group(GlobalObjectId),
}

/// Registration record of one application instance (§2.2: "application
/// instance identifier, host name, and user name, etc.").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Server-assigned instance id.
    pub instance: InstanceId,
    /// Owning user.
    pub user: UserId,
    /// Host the instance runs on.
    pub host: String,
    /// Application name ("the trainer's application may differ
    /// significantly from the students' version").
    pub app_name: String,
}

/// A message of the COSOFT client↔server protocol.
///
/// The protocol is application-independent: it is defined entirely over UI
/// objects, their states and their callback events, plus the
/// `CoSendCommand` escape hatch for application-defined extensions (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // ---- session management (client → server) -------------------------
    /// Register a new application instance; the server assigns an
    /// [`InstanceId`] and answers with [`Message::Welcome`].
    Register {
        /// The registering user.
        user: UserId,
        /// Host name of the workstation.
        host: String,
        /// Application name.
        app_name: String,
    },
    /// Graceful instance termination; triggers automatic decoupling.
    Deregister,
    /// Reclaim a quarantined instance after a connection drop. Carries the
    /// opaque token issued in [`Message::SessionToken`]; on success the
    /// server re-binds the old [`InstanceId`] — with its couples and access
    /// rights intact — to the new connection and answers with
    /// [`Message::Welcome`] followed by a fresh [`Message::SessionToken`].
    Rejoin {
        /// Token proving ownership of the quarantined instance.
        resume_token: u64,
    },
    /// Liveness probe. Either side may send it; the peer answers with
    /// [`Message::Pong`] echoing the nonce. Any traffic counts as liveness,
    /// so pings are only needed on otherwise-idle connections.
    Ping {
        /// Opaque nonce echoed in the reply.
        nonce: u64,
    },
    /// Reply to [`Message::Ping`].
    Pong {
        /// Echo of the probe nonce.
        nonce: u64,
    },
    /// Ask for the registration records of all instances (used by the
    /// classroom join UI to show the "stylized classroom situation").
    QueryInstances,

    // ---- session management (server → client) -------------------------
    /// Registration accepted.
    Welcome {
        /// The id assigned to the newly registered instance.
        instance: InstanceId,
    },
    /// Reply to [`Message::QueryInstances`].
    InstanceList {
        /// One record per live instance.
        entries: Vec<InstanceInfo>,
    },
    /// Resume credential for the instance this connection is bound to,
    /// sent right after [`Message::Welcome`] (and re-issued, rotated, after
    /// every successful [`Message::Rejoin`]). Presenting it within the
    /// server's grace period reclaims the instance.
    SessionToken {
        /// The (rotating) resume token.
        resume_token: u64,
    },

    // ---- coupling management -------------------------------------------
    /// Create a couple link from `src` to `dst` (client → server).
    Couple {
        /// Source object of the directed couple link.
        src: GlobalObjectId,
        /// Destination object.
        dst: GlobalObjectId,
    },
    /// Remove the couple link between `src` and `dst` (client → server).
    Decouple {
        /// Source object of the link to remove.
        src: GlobalObjectId,
        /// Destination object of the link to remove.
        dst: GlobalObjectId,
    },
    /// Third-party coupling: couple objects in two *remote* instances
    /// (§3.3 `RemoteCouple`), e.g. initiated from the teacher's control UI.
    RemoteCouple {
        /// First object.
        a: GlobalObjectId,
        /// Second object.
        b: GlobalObjectId,
    },
    /// Third-party decoupling (§3.3 `RemoteDecouple`).
    RemoteDecouple {
        /// First object.
        a: GlobalObjectId,
        /// Second object.
        b: GlobalObjectId,
    },
    /// Server → all group members: the membership of a coupling group
    /// changed; "the coupling information is replicated for each object
    /// (to be completely available locally)" (§3.2).
    CoupleUpdate {
        /// Complete transitive closure of the group, including local
        /// members of the receiving instance.
        group: Vec<GlobalObjectId>,
    },
    /// Ask the server for the coupled set `CO(o)` of an object.
    ListCoupled {
        /// The object whose group is queried.
        object: GlobalObjectId,
    },
    /// Client → server: a UI object was destroyed; the server applies the
    /// decoupling algorithm automatically (§3.2: "when a UI object is
    /// destroyed or an application instance terminates").
    ObjectDestroyed {
        /// The destroyed object.
        object: GlobalObjectId,
    },
    /// Reply to [`Message::ListCoupled`].
    CoupledSet {
        /// The queried object.
        object: GlobalObjectId,
        /// All objects transitively coupled with it (excluding itself).
        coupled: Vec<GlobalObjectId>,
    },

    // ---- synchronization by multiple execution (§3.2) -------------------
    /// Client → server: a callback event occurred on a coupled object.
    Event {
        /// The object the event occurred on.
        origin: GlobalObjectId,
        /// The event, packed with parameters.
        event: UiEvent,
        /// Client-chosen sequence number echoed in grant/reject replies.
        seq: u64,
    },
    /// Server → origin: floor control granted; proceed with local callback
    /// execution and reply [`Message::ExecuteDone`] when finished.
    EventGranted {
        /// Echo of the client sequence number.
        seq: u64,
        /// Server-assigned execution id shared by the whole group.
        exec_id: u64,
    },
    /// Server → origin: a member of the group was already locked; "undo
    /// syntactic built-in feedback of the event".
    EventRejected {
        /// Echo of the client sequence number.
        seq: u64,
    },
    /// Server → other group members: disable the target object, simulate
    /// the feedback of the event and execute its callbacks.
    ExecuteEvent {
        /// Server-assigned execution id.
        exec_id: u64,
        /// Local object the event is re-executed on.
        target: ObjectPath,
        /// The original event (its path is the *origin's* path; apply to
        /// `target` via [`UiEvent::retarget`]).
        event: UiEvent,
    },
    /// Client → server: re-execution of `exec_id` finished locally.
    ExecuteDone {
        /// The finished execution.
        exec_id: u64,
    },
    /// Server → all group members: all re-executions finished; unlock and
    /// re-enable the listed local objects.
    GroupUnlocked {
        /// The finished execution.
        exec_id: u64,
        /// Local objects to re-enable.
        objects: Vec<ObjectPath>,
    },

    // ---- synchronization by UI state (§3.1) ------------------------------
    /// Active synchronization: the requesting instance pulls the state of
    /// `src` into its own object `dst` ("monitoring another person's
    /// activities").
    CopyFrom {
        /// Remote source object.
        src: GlobalObjectId,
        /// Local destination object of the requester.
        dst: GlobalObjectId,
        /// How to reconcile structure differences.
        mode: CopyMode,
        /// Request id echoed through the state-transfer sub-protocol.
        req_id: u64,
    },
    /// Passive synchronization: the sending instance pushes a snapshot of
    /// its object `src` to remote object `dst` ("one person lets another
    /// person see his or her work").
    CopyTo {
        /// Local source object of the sender.
        src: GlobalObjectId,
        /// Remote destination object.
        dst: GlobalObjectId,
        /// Snapshot of `src`'s relevant state (incl. semantic payloads).
        snapshot: StateNode,
        /// How to reconcile structure differences.
        mode: CopyMode,
        /// Request id.
        req_id: u64,
    },
    /// Third-party copy (§3.1 `RemoteCopy`): copy `src` (in one remote
    /// instance) to `dst` (in another) on behalf of the sender.
    RemoteCopy {
        /// Remote source object.
        src: GlobalObjectId,
        /// Remote destination object.
        dst: GlobalObjectId,
        /// How to reconcile structure differences.
        mode: CopyMode,
        /// Request id.
        req_id: u64,
    },
    /// Server → source instance: produce a snapshot of the object at
    /// `path` (relevant attributes + semantic `store` payloads).
    StateRequest {
        /// Server-side transfer id.
        req_id: u64,
        /// Local object to snapshot.
        path: ObjectPath,
    },
    /// Source instance → server: the requested snapshot.
    StateReply {
        /// Echo of the transfer id.
        req_id: u64,
        /// The snapshot, or `None` if the object does not exist.
        snapshot: Option<StateNode>,
    },
    /// Server → destination instance: apply `snapshot` to the object at
    /// `path` using `mode`; reply with [`Message::StateApplied`].
    ApplyState {
        /// Server-side transfer id.
        req_id: u64,
        /// Local destination object.
        path: ObjectPath,
        /// Snapshot to apply.
        snapshot: StateNode,
        /// Reconciliation mode.
        mode: CopyMode,
    },
    /// Server → destination instance: apply an attribute-level delta to
    /// the object at `path`, provided the receiver's sync base for that
    /// object still carries `base_version`; reply with
    /// [`Message::StateApplied`]. On a version mismatch the receiver
    /// replies with an error and the server falls back to a full
    /// [`Message::ApplyState`] snapshot.
    ApplyDelta {
        /// Server-side transfer id.
        req_id: u64,
        /// Local destination object.
        path: ObjectPath,
        /// Content version of the sync base the delta was diffed against.
        base_version: u64,
        /// Content version of the state the delta reconstructs.
        new_version: u64,
        /// The attribute-level edits.
        delta: StateDelta,
        /// Reconciliation mode for applying the reconstructed state.
        mode: CopyMode,
    },
    /// Destination instance → server: state applied; `overwritten` is the
    /// destination's previous state, stored by the server as a historical
    /// UI state for undo (§2.2).
    StateApplied {
        /// Echo of the transfer id.
        req_id: u64,
        /// Previous state of the destination object, if it existed and the
        /// apply succeeded.
        overwritten: Option<StateNode>,
        /// Error description if the apply failed (e.g. strict-mode
        /// incompatibility).
        error: Option<String>,
    },
    /// Ask the server to restore the most recent overwritten state of an
    /// object (undo of synchronization-by-state).
    UndoState {
        /// The object to restore.
        object: GlobalObjectId,
    },
    /// Ask the server to re-apply an undone state (redo).
    RedoState {
        /// The object to restore.
        object: GlobalObjectId,
    },

    // ---- access control ---------------------------------------------------
    /// Declare an access-permission tuple (owner of the state → server).
    SetPermission {
        /// The user the right is granted to.
        user: UserId,
        /// The UI state (object) the right applies to.
        object: GlobalObjectId,
        /// The granted right.
        right: AccessRight,
    },
    /// Server → client: an operation was refused by access control.
    PermissionDenied {
        /// Human-readable description of the refused operation.
        what: String,
    },

    // ---- protocol extension (§3.4) -----------------------------------------
    /// Application-defined command: "a symbolic name of a function together
    /// with a packed message"; routed by the server without interpretation.
    CoSendCommand {
        /// Routing target.
        to: Target,
        /// Symbolic command name; the receiver looks up the corresponding
        /// unpack-and-interpret function.
        command: String,
        /// Packed message.
        payload: Vec<u8>,
    },
    /// Server → receiver: delivery of a `CoSendCommand`.
    CommandDelivery {
        /// Originating instance.
        from: InstanceId,
        /// Symbolic command name.
        command: String,
        /// Packed message.
        payload: Vec<u8>,
    },

    // ---- errors -------------------------------------------------------------
    /// Server → client: an operation failed.
    ErrorReply {
        /// What the client asked for.
        context: String,
        /// Why it failed.
        reason: String,
    },

    // ---- overload control ---------------------------------------------------
    /// Server → client: the message was shed by admission control (the
    /// endpoint's budget or the server's byte budget is exhausted). The
    /// request was *not* processed; the client should back off for at
    /// least `retry_after_ms` before retrying. Unlike a disconnect this
    /// keeps the session alive — only sustained abuse escalates to the
    /// §3.2 auto-decoupling path.
    Busy {
        /// Advisory back-off in milliseconds before retrying.
        retry_after_ms: u64,
    },
}

impl Message {
    /// Every kind name in the protocol, in declaration order.
    ///
    /// This is the canonical variant list shared by the verification
    /// layer: the `cosoft-audit` lint checks it against the enum
    /// declaration and the codec's tag tables, and the golden-vector
    /// suite (`crates/wire/tests/golden.rs`) asserts its vector table
    /// covers exactly this list. Adding a `Message` variant without
    /// extending this list (and the golden table, and the server
    /// dispatch) fails the audit gate.
    pub const ALL_KINDS: &'static [&'static str] = &[
        "register",
        "deregister",
        "rejoin",
        "ping",
        "pong",
        "query-instances",
        "welcome",
        "instance-list",
        "session-token",
        "couple",
        "decouple",
        "remote-couple",
        "remote-decouple",
        "couple-update",
        "list-coupled",
        "object-destroyed",
        "coupled-set",
        "event",
        "event-granted",
        "event-rejected",
        "execute-event",
        "execute-done",
        "group-unlocked",
        "copy-from",
        "copy-to",
        "remote-copy",
        "state-request",
        "state-reply",
        "apply-state",
        "apply-delta",
        "state-applied",
        "undo-state",
        "redo-state",
        "set-permission",
        "permission-denied",
        "co-send-command",
        "command-delivery",
        "error-reply",
        "busy",
    ];

    /// Short variant name for logging and metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Register { .. } => "register",
            Message::Deregister => "deregister",
            Message::Rejoin { .. } => "rejoin",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::SessionToken { .. } => "session-token",
            Message::QueryInstances => "query-instances",
            Message::Welcome { .. } => "welcome",
            Message::InstanceList { .. } => "instance-list",
            Message::Couple { .. } => "couple",
            Message::Decouple { .. } => "decouple",
            Message::RemoteCouple { .. } => "remote-couple",
            Message::RemoteDecouple { .. } => "remote-decouple",
            Message::CoupleUpdate { .. } => "couple-update",
            Message::ListCoupled { .. } => "list-coupled",
            Message::ObjectDestroyed { .. } => "object-destroyed",
            Message::CoupledSet { .. } => "coupled-set",
            Message::Event { .. } => "event",
            Message::EventGranted { .. } => "event-granted",
            Message::EventRejected { .. } => "event-rejected",
            Message::ExecuteEvent { .. } => "execute-event",
            Message::ExecuteDone { .. } => "execute-done",
            Message::GroupUnlocked { .. } => "group-unlocked",
            Message::CopyFrom { .. } => "copy-from",
            Message::CopyTo { .. } => "copy-to",
            Message::RemoteCopy { .. } => "remote-copy",
            Message::StateRequest { .. } => "state-request",
            Message::StateReply { .. } => "state-reply",
            Message::ApplyState { .. } => "apply-state",
            Message::ApplyDelta { .. } => "apply-delta",
            Message::StateApplied { .. } => "state-applied",
            Message::UndoState { .. } => "undo-state",
            Message::RedoState { .. } => "redo-state",
            Message::SetPermission { .. } => "set-permission",
            Message::PermissionDenied { .. } => "permission-denied",
            Message::CoSendCommand { .. } => "co-send-command",
            Message::CommandDelivery { .. } => "command-delivery",
            Message::ErrorReply { .. } => "error-reply",
            Message::Busy { .. } => "busy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_right_lattice() {
        assert!(!AccessRight::Denied.allows_read());
        assert!(!AccessRight::Denied.allows_write());
        assert!(AccessRight::Read.allows_read());
        assert!(!AccessRight::Read.allows_write());
        assert!(AccessRight::Write.allows_read());
        assert!(AccessRight::Write.allows_write());
        assert!(AccessRight::Denied < AccessRight::Read);
        assert!(AccessRight::Read < AccessRight::Write);
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let msgs = [
            Message::Deregister,
            Message::QueryInstances,
            Message::Welcome { instance: InstanceId(1) },
            Message::ExecuteDone { exec_id: 1 },
            Message::EventRejected { seq: 1 },
        ];
        let names: HashSet<&str> = msgs.iter().map(|m| m.kind_name()).collect();
        assert_eq!(names.len(), msgs.len());
    }

    #[test]
    fn display_impls() {
        assert_eq!(AccessRight::Write.to_string(), "write");
        assert_eq!(CopyMode::FlexibleMatch.to_string(), "flexible-match");
    }
}
