use std::fmt;

use crate::{ObjectPath, Value};

/// Kind of a high-level callback event.
///
/// The paper's synchronization unit is the *high-level callback event* of a
/// UI object ("pressing of push button object, entering and deleting of
/// characters", §3.4) — not raw X events. Each kind corresponds to one
/// callback slot of the toolkit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A button was activated (pressed and released).
    Activate,
    /// A ranged widget's numeric value changed; param 0 is the new value.
    ValueChanged,
    /// A text widget's content was committed (focus-out / Enter);
    /// param 0 is the full new text.
    TextCommitted,
    /// A single edit inside a text widget (fine-grained mode); params are
    /// the caret position and the inserted text (empty = deletion of one
    /// character at the position).
    TextEdited,
    /// A list/menu selection changed; param 0 is the new selected index.
    SelectionChanged,
    /// A toggle button flipped; param 0 is the new boolean state.
    Toggled,
    /// A stroke was added to a canvas; param 0 is the stroke.
    StrokeAdded,
    /// A canvas was cleared.
    CanvasCleared,
    /// A table row was activated; param 0 is the row index.
    RowActivated,
    /// Application-defined callback.
    Custom(String),
}

impl EventKind {
    /// Canonical textual form (used in logs and the UI-spec language).
    pub fn as_str(&self) -> &str {
        match self {
            EventKind::Activate => "activate",
            EventKind::ValueChanged => "value-changed",
            EventKind::TextCommitted => "text-committed",
            EventKind::TextEdited => "text-edited",
            EventKind::SelectionChanged => "selection-changed",
            EventKind::Toggled => "toggled",
            EventKind::StrokeAdded => "stroke-added",
            EventKind::CanvasCleared => "canvas-cleared",
            EventKind::RowActivated => "row-activated",
            EventKind::Custom(s) => s,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A high-level callback event on one UI object.
///
/// "Whenever an event occurs on one of the coupled objects, this event
/// packed with some parameters is sent to the server. Then the server
/// broadcasts this message to the application instances where it is
/// unpacked and re-executed." (§3.2)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UiEvent {
    /// Path of the object the event occurred on, within its instance.
    pub path: ObjectPath,
    /// The callback kind.
    pub kind: EventKind,
    /// Packed event parameters (new value, stroke, index, ...).
    pub params: Vec<Value>,
}

impl UiEvent {
    /// Creates an event with parameters.
    pub fn new(path: ObjectPath, kind: EventKind, params: Vec<Value>) -> Self {
        UiEvent { path, kind, params }
    }

    /// Creates a parameterless event.
    pub fn simple(path: ObjectPath, kind: EventKind) -> Self {
        UiEvent { path, kind, params: Vec::new() }
    }

    /// Returns the event re-targeted at another object path.
    ///
    /// Used during multiple execution: an event that occurred on object
    /// `o` is re-executed on every member of `CO(o)`, whose pathnames
    /// differ per instance.
    pub fn retarget(&self, path: ObjectPath) -> UiEvent {
        UiEvent { path, kind: self.kind.clone(), params: self.params.clone() }
    }
}

impl fmt::Display for UiEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.path)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retarget_preserves_kind_and_params() {
        let e = UiEvent::new(
            ObjectPath::parse("a.b").unwrap(),
            EventKind::ValueChanged,
            vec![Value::Int(5)],
        );
        let r = e.retarget(ObjectPath::parse("x.y").unwrap());
        assert_eq!(r.kind, EventKind::ValueChanged);
        assert_eq!(r.params, e.params);
        assert_eq!(r.path.to_string(), "x.y");
    }

    #[test]
    fn display_includes_params() {
        let e = UiEvent::new(
            ObjectPath::parse("f.s").unwrap(),
            EventKind::ValueChanged,
            vec![Value::Int(5), Value::Bool(true)],
        );
        assert_eq!(e.to_string(), "value-changed@f.s(5, true)");
        let s = UiEvent::simple(ObjectPath::parse("f.b").unwrap(), EventKind::Activate);
        assert_eq!(s.to_string(), "activate@f.b");
    }

    #[test]
    fn kind_str_forms_are_distinct() {
        use std::collections::HashSet;
        let kinds = [
            EventKind::Activate,
            EventKind::ValueChanged,
            EventKind::TextCommitted,
            EventKind::TextEdited,
            EventKind::SelectionChanged,
            EventKind::Toggled,
            EventKind::StrokeAdded,
            EventKind::CanvasCleared,
            EventKind::RowActivated,
        ];
        let set: HashSet<&str> = kinds.iter().map(|k| k.as_str()).collect();
        assert_eq!(set.len(), kinds.len());
    }
}
