//! Hand-rolled binary codec for the COSOFT protocol.
//!
//! Layout conventions:
//!
//! * unsigned integers are LEB128 varints; signed integers are zigzag-coded
//!   varints; `f64` travels as its 8 little-endian IEEE-754 bytes,
//! * strings and byte blobs are varint-length-prefixed,
//! * tagged unions use a single tag byte,
//! * a complete message on a stream transport is framed as
//!   `u32-le length ‖ body` (see [`write_frame`] / [`read_frame`]).
//!
//! Every decoder enforces [`MAX_LEN`] on declared lengths so a corrupt or
//! hostile frame cannot trigger huge allocations.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::delta::{EditOp, NodeEdit, NodePatch};
use crate::message::InstanceInfo;
use crate::{
    AccessRight, AttrName, CopyMode, EventKind, GlobalObjectId, InstanceId, Message, ObjectPath,
    StateDelta, StateNode, Target, UiEvent, UserId, Value, WidgetKind, WireError,
};

/// Maximum accepted declared length for any collection, string or frame.
pub const MAX_LEN: u64 = 64 * 1024 * 1024;

type Result<T> = std::result::Result<T, WireError>;

// --------------------------------------------------------------------------
// primitive writers
// --------------------------------------------------------------------------

/// Appends an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Appends a zigzag-coded signed varint.
pub fn put_ivarint(buf: &mut BytesMut, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    put_uvarint(buf, b.len() as u64);
    buf.put_slice(b);
}

fn put_bool(buf: &mut BytesMut, b: bool) {
    buf.put_u8(u8::from(b));
}

// --------------------------------------------------------------------------
// primitive readers
// --------------------------------------------------------------------------

/// Reads an unsigned LEB128 varint.
pub fn get_uvarint(buf: &mut Bytes) -> Result<u64> {
    let mut shift = 0u32;
    let mut out = 0u64;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof { expected: "varint" });
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Reads a zigzag-coded signed varint.
pub fn get_ivarint(buf: &mut Bytes) -> Result<i64> {
    let u = get_uvarint(buf)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

fn get_len(buf: &mut Bytes) -> Result<usize> {
    let n = get_uvarint(buf)?;
    if n > MAX_LEN {
        return Err(WireError::LengthOverflow { declared: n, max: MAX_LEN });
    }
    Ok(n as usize)
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let n = get_len(buf)?;
    if buf.remaining() < n {
        return Err(WireError::UnexpectedEof { expected: "string body" });
    }
    let raw = buf.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
}

fn get_blob(buf: &mut Bytes) -> Result<Vec<u8>> {
    let n = get_len(buf)?;
    if buf.remaining() < n {
        return Err(WireError::UnexpectedEof { expected: "byte blob" });
    }
    Ok(buf.split_to(n).to_vec())
}

fn get_bool(buf: &mut Bytes) -> Result<bool> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof { expected: "bool" });
    }
    Ok(buf.get_u8() != 0)
}

fn get_u8(buf: &mut Bytes, what: &'static str) -> Result<u8> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof { expected: what });
    }
    Ok(buf.get_u8())
}

fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(WireError::UnexpectedEof { expected: "f64" });
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

/// Encodes one attribute [`Value`].
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Bool(b) => {
            buf.put_u8(0);
            put_bool(buf, *b);
        }
        Value::Int(i) => {
            buf.put_u8(1);
            put_ivarint(buf, *i);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_u64_le(x.to_bits());
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::TextList(v) => {
            buf.put_u8(4);
            put_uvarint(buf, v.len() as u64);
            for s in v {
                put_str(buf, s);
            }
        }
        Value::IntList(v) => {
            buf.put_u8(5);
            put_uvarint(buf, v.len() as u64);
            for i in v {
                put_ivarint(buf, *i);
            }
        }
        Value::Point(x, y) => {
            buf.put_u8(6);
            put_ivarint(buf, i64::from(*x));
            put_ivarint(buf, i64::from(*y));
        }
        Value::Color(r, g, b) => {
            buf.put_u8(7);
            buf.put_u8(*r);
            buf.put_u8(*g);
            buf.put_u8(*b);
        }
        Value::Bytes(b) => {
            buf.put_u8(8);
            put_bytes(buf, b);
        }
        Value::Stroke(pts) => {
            buf.put_u8(9);
            put_uvarint(buf, pts.len() as u64);
            for (x, y) in pts {
                put_ivarint(buf, i64::from(*x));
                put_ivarint(buf, i64::from(*y));
            }
        }
        Value::StrokeList(strokes) => {
            buf.put_u8(10);
            put_uvarint(buf, strokes.len() as u64);
            for pts in strokes {
                put_uvarint(buf, pts.len() as u64);
                for (x, y) in pts {
                    put_ivarint(buf, i64::from(*x));
                    put_ivarint(buf, i64::from(*y));
                }
            }
        }
    }
}

/// Decodes one attribute [`Value`].
pub fn get_value(buf: &mut Bytes) -> Result<Value> {
    let tag = get_u8(buf, "value tag")?;
    Ok(match tag {
        0 => Value::Bool(get_bool(buf)?),
        1 => Value::Int(get_ivarint(buf)?),
        2 => Value::Float(get_f64(buf)?),
        3 => Value::Text(get_str(buf)?),
        4 => {
            let n = get_len(buf)?;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(get_str(buf)?);
            }
            Value::TextList(v)
        }
        5 => {
            let n = get_len(buf)?;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(get_ivarint(buf)?);
            }
            Value::IntList(v)
        }
        6 => Value::Point(get_i32(buf)?, get_i32(buf)?),
        7 => {
            Value::Color(get_u8(buf, "color r")?, get_u8(buf, "color g")?, get_u8(buf, "color b")?)
        }
        8 => Value::Bytes(get_blob(buf)?),
        9 => {
            let n = get_len(buf)?;
            let mut v = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                v.push((get_i32(buf)?, get_i32(buf)?));
            }
            Value::Stroke(v)
        }
        10 => {
            let n = get_len(buf)?;
            let mut strokes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let m = get_len(buf)?;
                let mut v = Vec::with_capacity(m.min(4096));
                for _ in 0..m {
                    v.push((get_i32(buf)?, get_i32(buf)?));
                }
                strokes.push(v);
            }
            Value::StrokeList(strokes)
        }
        other => return Err(WireError::InvalidTag { kind: "Value", tag: other }),
    })
}

fn get_i32(buf: &mut Bytes) -> Result<i32> {
    let v = get_ivarint(buf)?;
    i32::try_from(v)
        .map_err(|_| WireError::LengthOverflow { declared: v.unsigned_abs(), max: i32::MAX as u64 })
}

// --------------------------------------------------------------------------
// names, paths, ids
// --------------------------------------------------------------------------

fn put_attr_name(buf: &mut BytesMut, n: &AttrName) {
    put_str(buf, n.as_str());
}

fn get_attr_name(buf: &mut Bytes) -> Result<AttrName> {
    Ok(AttrName::from_str_lossy(&get_str(buf)?))
}

fn put_kind(buf: &mut BytesMut, k: &WidgetKind) {
    put_str(buf, k.as_str());
}

fn get_kind(buf: &mut Bytes) -> Result<WidgetKind> {
    Ok(WidgetKind::from_str_lossy(&get_str(buf)?))
}

/// Encodes an [`ObjectPath`].
pub fn put_path(buf: &mut BytesMut, p: &ObjectPath) {
    put_uvarint(buf, p.segments().len() as u64);
    for s in p.segments() {
        put_str(buf, s);
    }
}

/// Decodes an [`ObjectPath`].
pub fn get_path(buf: &mut Bytes) -> Result<ObjectPath> {
    let n = get_len(buf)?;
    let mut segs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        segs.push(get_str(buf)?);
    }
    ObjectPath::from_segments(segs)
}

fn put_gid(buf: &mut BytesMut, g: &GlobalObjectId) {
    put_uvarint(buf, g.instance.0);
    put_path(buf, &g.path);
}

fn get_gid(buf: &mut Bytes) -> Result<GlobalObjectId> {
    let inst = InstanceId(get_uvarint(buf)?);
    let path = get_path(buf)?;
    Ok(GlobalObjectId::new(inst, path))
}

// --------------------------------------------------------------------------
// state snapshots
// --------------------------------------------------------------------------

/// Encodes a [`StateNode`] snapshot tree.
pub fn put_state(buf: &mut BytesMut, s: &StateNode) {
    put_kind(buf, &s.kind);
    put_str(buf, &s.name);
    put_uvarint(buf, s.attrs.len() as u64);
    for (k, v) in &s.attrs {
        put_attr_name(buf, k);
        put_value(buf, v);
    }
    put_bytes(buf, &s.semantic);
    put_uvarint(buf, s.children.len() as u64);
    for c in &s.children {
        put_state(buf, c);
    }
}

/// Decodes a [`StateNode`] snapshot tree.
pub fn get_state(buf: &mut Bytes) -> Result<StateNode> {
    let kind = get_kind(buf)?;
    let name = get_str(buf)?;
    let n_attrs = get_len(buf)?;
    let mut node = StateNode::new(kind, &name);
    for _ in 0..n_attrs {
        let k = get_attr_name(buf)?;
        let v = get_value(buf)?;
        node.attrs.insert(k, v);
    }
    node.semantic = get_blob(buf)?;
    let n_children = get_len(buf)?;
    for _ in 0..n_children {
        node.children.push(get_state(buf)?);
    }
    Ok(node)
}

// --------------------------------------------------------------------------
// state deltas
// --------------------------------------------------------------------------

/// Encodes a [`StateDelta`].
pub fn put_delta(buf: &mut BytesMut, d: &StateDelta) {
    put_uvarint(buf, d.edits.len() as u64);
    for e in &d.edits {
        put_uvarint(buf, e.path.len() as u64);
        for seg in &e.path {
            put_str(buf, seg);
        }
        match &e.op {
            EditOp::Patch(p) => {
                buf.put_u8(0);
                match &p.kind {
                    None => buf.put_u8(0),
                    Some(k) => {
                        buf.put_u8(1);
                        put_kind(buf, k);
                    }
                }
                put_uvarint(buf, p.upserts.len() as u64);
                for (k, v) in &p.upserts {
                    put_attr_name(buf, k);
                    put_value(buf, v);
                }
                put_uvarint(buf, p.removals.len() as u64);
                for k in &p.removals {
                    put_attr_name(buf, k);
                }
                match &p.semantic {
                    None => buf.put_u8(0),
                    Some(b) => {
                        buf.put_u8(1);
                        put_bytes(buf, b);
                    }
                }
            }
            EditOp::Replace(s) => {
                buf.put_u8(1);
                put_state(buf, s);
            }
            EditOp::Restructure { order, inserts } => {
                buf.put_u8(2);
                put_uvarint(buf, order.len() as u64);
                for n in order {
                    put_str(buf, n);
                }
                put_uvarint(buf, inserts.len() as u64);
                for s in inserts {
                    put_state(buf, s);
                }
            }
        }
    }
}

/// Decodes a [`StateDelta`].
pub fn get_delta(buf: &mut Bytes) -> Result<StateDelta> {
    let n_edits = get_len(buf)?;
    let mut edits = Vec::with_capacity(n_edits.min(1024));
    for _ in 0..n_edits {
        let n_segs = get_len(buf)?;
        let mut path = Vec::with_capacity(n_segs.min(64));
        for _ in 0..n_segs {
            path.push(get_str(buf)?);
        }
        let op = match get_u8(buf, "edit op tag")? {
            0 => {
                let mut patch = NodePatch::default();
                match get_u8(buf, "option tag")? {
                    0 => {}
                    1 => patch.kind = Some(get_kind(buf)?),
                    other => {
                        return Err(WireError::InvalidTag {
                            kind: "Option<WidgetKind>",
                            tag: other,
                        })
                    }
                }
                let n_ups = get_len(buf)?;
                for _ in 0..n_ups {
                    let k = get_attr_name(buf)?;
                    let v = get_value(buf)?;
                    patch.upserts.insert(k, v);
                }
                let n_rm = get_len(buf)?;
                for _ in 0..n_rm {
                    patch.removals.push(get_attr_name(buf)?);
                }
                match get_u8(buf, "option tag")? {
                    0 => {}
                    1 => patch.semantic = Some(get_blob(buf)?),
                    other => {
                        return Err(WireError::InvalidTag { kind: "Option<Vec<u8>>", tag: other })
                    }
                }
                EditOp::Patch(patch)
            }
            1 => EditOp::Replace(get_state(buf)?),
            2 => {
                let n_order = get_len(buf)?;
                let mut order = Vec::with_capacity(n_order.min(1024));
                for _ in 0..n_order {
                    order.push(get_str(buf)?);
                }
                let n_ins = get_len(buf)?;
                let mut inserts = Vec::with_capacity(n_ins.min(1024));
                for _ in 0..n_ins {
                    inserts.push(get_state(buf)?);
                }
                EditOp::Restructure { order, inserts }
            }
            other => return Err(WireError::InvalidTag { kind: "EditOp", tag: other }),
        };
        edits.push(NodeEdit { path, op });
    }
    Ok(StateDelta { edits })
}

// --------------------------------------------------------------------------
// events
// --------------------------------------------------------------------------

fn put_event_kind(buf: &mut BytesMut, k: &EventKind) {
    let (tag, custom): (u8, Option<&str>) = match k {
        EventKind::Activate => (0, None),
        EventKind::ValueChanged => (1, None),
        EventKind::TextCommitted => (2, None),
        EventKind::TextEdited => (3, None),
        EventKind::SelectionChanged => (4, None),
        EventKind::Toggled => (5, None),
        EventKind::StrokeAdded => (6, None),
        EventKind::CanvasCleared => (7, None),
        EventKind::RowActivated => (8, None),
        EventKind::Custom(s) => (255, Some(s)),
    };
    buf.put_u8(tag);
    if let Some(s) = custom {
        put_str(buf, s);
    }
}

fn get_event_kind(buf: &mut Bytes) -> Result<EventKind> {
    let tag = get_u8(buf, "event kind tag")?;
    Ok(match tag {
        0 => EventKind::Activate,
        1 => EventKind::ValueChanged,
        2 => EventKind::TextCommitted,
        3 => EventKind::TextEdited,
        4 => EventKind::SelectionChanged,
        5 => EventKind::Toggled,
        6 => EventKind::StrokeAdded,
        7 => EventKind::CanvasCleared,
        8 => EventKind::RowActivated,
        255 => EventKind::Custom(get_str(buf)?),
        other => return Err(WireError::InvalidTag { kind: "EventKind", tag: other }),
    })
}

/// Encodes a [`UiEvent`].
pub fn put_event(buf: &mut BytesMut, e: &UiEvent) {
    put_path(buf, &e.path);
    put_event_kind(buf, &e.kind);
    put_uvarint(buf, e.params.len() as u64);
    for p in &e.params {
        put_value(buf, p);
    }
}

/// Decodes a [`UiEvent`].
pub fn get_event(buf: &mut Bytes) -> Result<UiEvent> {
    let path = get_path(buf)?;
    let kind = get_event_kind(buf)?;
    let n = get_len(buf)?;
    let mut params = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        params.push(get_value(buf)?);
    }
    Ok(UiEvent::new(path, kind, params))
}

// --------------------------------------------------------------------------
// small enums / records
// --------------------------------------------------------------------------

fn put_copy_mode(buf: &mut BytesMut, m: CopyMode) {
    buf.put_u8(match m {
        CopyMode::Strict => 0,
        CopyMode::DestructiveMerge => 1,
        CopyMode::FlexibleMatch => 2,
    });
}

fn get_copy_mode(buf: &mut Bytes) -> Result<CopyMode> {
    match get_u8(buf, "copy mode")? {
        0 => Ok(CopyMode::Strict),
        1 => Ok(CopyMode::DestructiveMerge),
        2 => Ok(CopyMode::FlexibleMatch),
        other => Err(WireError::InvalidTag { kind: "CopyMode", tag: other }),
    }
}

fn put_right(buf: &mut BytesMut, r: AccessRight) {
    buf.put_u8(match r {
        AccessRight::Denied => 0,
        AccessRight::Read => 1,
        AccessRight::Write => 2,
    });
}

fn get_right(buf: &mut Bytes) -> Result<AccessRight> {
    match get_u8(buf, "access right")? {
        0 => Ok(AccessRight::Denied),
        1 => Ok(AccessRight::Read),
        2 => Ok(AccessRight::Write),
        other => Err(WireError::InvalidTag { kind: "AccessRight", tag: other }),
    }
}

fn put_target(buf: &mut BytesMut, t: &Target) {
    match t {
        Target::Instance(i) => {
            buf.put_u8(0);
            put_uvarint(buf, i.0);
        }
        Target::Broadcast => buf.put_u8(1),
        Target::Group(g) => {
            buf.put_u8(2);
            put_gid(buf, g);
        }
    }
}

fn get_target(buf: &mut Bytes) -> Result<Target> {
    match get_u8(buf, "target tag")? {
        0 => Ok(Target::Instance(InstanceId(get_uvarint(buf)?))),
        1 => Ok(Target::Broadcast),
        2 => Ok(Target::Group(get_gid(buf)?)),
        other => Err(WireError::InvalidTag { kind: "Target", tag: other }),
    }
}

fn put_instance_info(buf: &mut BytesMut, i: &InstanceInfo) {
    put_uvarint(buf, i.instance.0);
    put_uvarint(buf, i.user.0);
    put_str(buf, &i.host);
    put_str(buf, &i.app_name);
}

fn get_instance_info(buf: &mut Bytes) -> Result<InstanceInfo> {
    Ok(InstanceInfo {
        instance: InstanceId(get_uvarint(buf)?),
        user: UserId(get_uvarint(buf)?),
        host: get_str(buf)?,
        app_name: get_str(buf)?,
    })
}

fn put_opt_state(buf: &mut BytesMut, s: &Option<StateNode>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_state(buf, s);
        }
    }
}

fn get_opt_state(buf: &mut Bytes) -> Result<Option<StateNode>> {
    match get_u8(buf, "option tag")? {
        0 => Ok(None),
        1 => Ok(Some(get_state(buf)?)),
        other => Err(WireError::InvalidTag { kind: "Option<StateNode>", tag: other }),
    }
}

fn put_opt_str(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut Bytes) -> Result<Option<String>> {
    match get_u8(buf, "option tag")? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        other => Err(WireError::InvalidTag { kind: "Option<String>", tag: other }),
    }
}

// --------------------------------------------------------------------------
// messages
// --------------------------------------------------------------------------

/// Encodes a complete [`Message`] body (without stream framing).
pub fn encode_message(m: &Message) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    put_message(&mut buf, m);
    buf.to_vec()
}

/// Appends a [`Message`] body to `buf`.
pub fn put_message(buf: &mut BytesMut, m: &Message) {
    match m {
        Message::Register { user, host, app_name } => {
            buf.put_u8(0);
            put_uvarint(buf, user.0);
            put_str(buf, host);
            put_str(buf, app_name);
        }
        Message::Deregister => buf.put_u8(1),
        Message::QueryInstances => buf.put_u8(2),
        Message::Welcome { instance } => {
            buf.put_u8(3);
            put_uvarint(buf, instance.0);
        }
        Message::InstanceList { entries } => {
            buf.put_u8(4);
            put_uvarint(buf, entries.len() as u64);
            for e in entries {
                put_instance_info(buf, e);
            }
        }
        Message::Couple { src, dst } => {
            buf.put_u8(5);
            put_gid(buf, src);
            put_gid(buf, dst);
        }
        Message::Decouple { src, dst } => {
            buf.put_u8(6);
            put_gid(buf, src);
            put_gid(buf, dst);
        }
        Message::RemoteCouple { a, b } => {
            buf.put_u8(7);
            put_gid(buf, a);
            put_gid(buf, b);
        }
        Message::RemoteDecouple { a, b } => {
            buf.put_u8(8);
            put_gid(buf, a);
            put_gid(buf, b);
        }
        Message::CoupleUpdate { group } => {
            buf.put_u8(9);
            put_uvarint(buf, group.len() as u64);
            for g in group {
                put_gid(buf, g);
            }
        }
        Message::ListCoupled { object } => {
            buf.put_u8(10);
            put_gid(buf, object);
        }
        Message::CoupledSet { object, coupled } => {
            buf.put_u8(11);
            put_gid(buf, object);
            put_uvarint(buf, coupled.len() as u64);
            for g in coupled {
                put_gid(buf, g);
            }
        }
        Message::Event { origin, event, seq } => {
            buf.put_u8(12);
            put_gid(buf, origin);
            put_event(buf, event);
            put_uvarint(buf, *seq);
        }
        Message::EventGranted { seq, exec_id } => {
            buf.put_u8(13);
            put_uvarint(buf, *seq);
            put_uvarint(buf, *exec_id);
        }
        Message::EventRejected { seq } => {
            buf.put_u8(14);
            put_uvarint(buf, *seq);
        }
        Message::ExecuteEvent { exec_id, target, event } => {
            buf.put_u8(15);
            put_uvarint(buf, *exec_id);
            put_path(buf, target);
            put_event(buf, event);
        }
        Message::ExecuteDone { exec_id } => {
            buf.put_u8(16);
            put_uvarint(buf, *exec_id);
        }
        Message::GroupUnlocked { exec_id, objects } => {
            buf.put_u8(17);
            put_uvarint(buf, *exec_id);
            put_uvarint(buf, objects.len() as u64);
            for p in objects {
                put_path(buf, p);
            }
        }
        Message::CopyFrom { src, dst, mode, req_id } => {
            buf.put_u8(18);
            put_gid(buf, src);
            put_gid(buf, dst);
            put_copy_mode(buf, *mode);
            put_uvarint(buf, *req_id);
        }
        Message::CopyTo { src, dst, snapshot, mode, req_id } => {
            buf.put_u8(19);
            put_gid(buf, src);
            put_gid(buf, dst);
            put_state(buf, snapshot);
            put_copy_mode(buf, *mode);
            put_uvarint(buf, *req_id);
        }
        Message::RemoteCopy { src, dst, mode, req_id } => {
            buf.put_u8(20);
            put_gid(buf, src);
            put_gid(buf, dst);
            put_copy_mode(buf, *mode);
            put_uvarint(buf, *req_id);
        }
        Message::StateRequest { req_id, path } => {
            buf.put_u8(21);
            put_uvarint(buf, *req_id);
            put_path(buf, path);
        }
        Message::StateReply { req_id, snapshot } => {
            buf.put_u8(22);
            put_uvarint(buf, *req_id);
            put_opt_state(buf, snapshot);
        }
        Message::ApplyState { req_id, path, snapshot, mode } => {
            buf.put_u8(23);
            put_uvarint(buf, *req_id);
            put_path(buf, path);
            put_state(buf, snapshot);
            put_copy_mode(buf, *mode);
        }
        Message::StateApplied { req_id, overwritten, error } => {
            buf.put_u8(24);
            put_uvarint(buf, *req_id);
            put_opt_state(buf, overwritten);
            put_opt_str(buf, error);
        }
        Message::UndoState { object } => {
            buf.put_u8(25);
            put_gid(buf, object);
        }
        Message::RedoState { object } => {
            buf.put_u8(26);
            put_gid(buf, object);
        }
        Message::SetPermission { user, object, right } => {
            buf.put_u8(27);
            put_uvarint(buf, user.0);
            put_gid(buf, object);
            put_right(buf, *right);
        }
        Message::PermissionDenied { what } => {
            buf.put_u8(28);
            put_str(buf, what);
        }
        Message::CoSendCommand { to, command, payload } => {
            buf.put_u8(29);
            put_target(buf, to);
            put_str(buf, command);
            put_bytes(buf, payload);
        }
        Message::CommandDelivery { from, command, payload } => {
            buf.put_u8(30);
            put_uvarint(buf, from.0);
            put_str(buf, command);
            put_bytes(buf, payload);
        }
        Message::ErrorReply { context, reason } => {
            buf.put_u8(31);
            put_str(buf, context);
            put_str(buf, reason);
        }
        Message::ObjectDestroyed { object } => {
            buf.put_u8(32);
            put_gid(buf, object);
        }
        Message::Rejoin { resume_token } => {
            buf.put_u8(33);
            put_uvarint(buf, *resume_token);
        }
        Message::Ping { nonce } => {
            buf.put_u8(34);
            put_uvarint(buf, *nonce);
        }
        Message::Pong { nonce } => {
            buf.put_u8(35);
            put_uvarint(buf, *nonce);
        }
        Message::SessionToken { resume_token } => {
            buf.put_u8(36);
            put_uvarint(buf, *resume_token);
        }
        Message::Busy { retry_after_ms } => {
            buf.put_u8(37);
            put_uvarint(buf, *retry_after_ms);
        }
        Message::ApplyDelta { req_id, path, base_version, new_version, delta, mode } => {
            buf.put_u8(38);
            put_uvarint(buf, *req_id);
            put_path(buf, path);
            put_uvarint(buf, *base_version);
            put_uvarint(buf, *new_version);
            put_delta(buf, delta);
            put_copy_mode(buf, *mode);
        }
    }
}

/// Decodes a complete [`Message`] body, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input (truncation, bad tags,
/// invalid UTF-8, over-long declared lengths, trailing bytes).
pub fn decode_message(bytes: &[u8]) -> Result<Message> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let m = get_message(&mut buf)?;
    if buf.has_remaining() {
        return Err(WireError::TrailingBytes { remaining: buf.remaining() });
    }
    Ok(m)
}

/// Decodes one [`Message`] from `buf`, leaving any following bytes.
pub fn get_message(buf: &mut Bytes) -> Result<Message> {
    let tag = get_u8(buf, "message tag")?;
    Ok(match tag {
        0 => Message::Register {
            user: UserId(get_uvarint(buf)?),
            host: get_str(buf)?,
            app_name: get_str(buf)?,
        },
        1 => Message::Deregister,
        2 => Message::QueryInstances,
        3 => Message::Welcome { instance: InstanceId(get_uvarint(buf)?) },
        4 => {
            let n = get_len(buf)?;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                entries.push(get_instance_info(buf)?);
            }
            Message::InstanceList { entries }
        }
        5 => Message::Couple { src: get_gid(buf)?, dst: get_gid(buf)? },
        6 => Message::Decouple { src: get_gid(buf)?, dst: get_gid(buf)? },
        7 => Message::RemoteCouple { a: get_gid(buf)?, b: get_gid(buf)? },
        8 => Message::RemoteDecouple { a: get_gid(buf)?, b: get_gid(buf)? },
        9 => {
            let n = get_len(buf)?;
            let mut group = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                group.push(get_gid(buf)?);
            }
            Message::CoupleUpdate { group }
        }
        10 => Message::ListCoupled { object: get_gid(buf)? },
        11 => {
            let object = get_gid(buf)?;
            let n = get_len(buf)?;
            let mut coupled = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                coupled.push(get_gid(buf)?);
            }
            Message::CoupledSet { object, coupled }
        }
        12 => {
            Message::Event { origin: get_gid(buf)?, event: get_event(buf)?, seq: get_uvarint(buf)? }
        }
        13 => Message::EventGranted { seq: get_uvarint(buf)?, exec_id: get_uvarint(buf)? },
        14 => Message::EventRejected { seq: get_uvarint(buf)? },
        15 => Message::ExecuteEvent {
            exec_id: get_uvarint(buf)?,
            target: get_path(buf)?,
            event: get_event(buf)?,
        },
        16 => Message::ExecuteDone { exec_id: get_uvarint(buf)? },
        17 => {
            let exec_id = get_uvarint(buf)?;
            let n = get_len(buf)?;
            let mut objects = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                objects.push(get_path(buf)?);
            }
            Message::GroupUnlocked { exec_id, objects }
        }
        18 => Message::CopyFrom {
            src: get_gid(buf)?,
            dst: get_gid(buf)?,
            mode: get_copy_mode(buf)?,
            req_id: get_uvarint(buf)?,
        },
        19 => Message::CopyTo {
            src: get_gid(buf)?,
            dst: get_gid(buf)?,
            snapshot: get_state(buf)?,
            mode: get_copy_mode(buf)?,
            req_id: get_uvarint(buf)?,
        },
        20 => Message::RemoteCopy {
            src: get_gid(buf)?,
            dst: get_gid(buf)?,
            mode: get_copy_mode(buf)?,
            req_id: get_uvarint(buf)?,
        },
        21 => Message::StateRequest { req_id: get_uvarint(buf)?, path: get_path(buf)? },
        22 => Message::StateReply { req_id: get_uvarint(buf)?, snapshot: get_opt_state(buf)? },
        23 => Message::ApplyState {
            req_id: get_uvarint(buf)?,
            path: get_path(buf)?,
            snapshot: get_state(buf)?,
            mode: get_copy_mode(buf)?,
        },
        24 => Message::StateApplied {
            req_id: get_uvarint(buf)?,
            overwritten: get_opt_state(buf)?,
            error: get_opt_str(buf)?,
        },
        25 => Message::UndoState { object: get_gid(buf)? },
        26 => Message::RedoState { object: get_gid(buf)? },
        27 => Message::SetPermission {
            user: UserId(get_uvarint(buf)?),
            object: get_gid(buf)?,
            right: get_right(buf)?,
        },
        28 => Message::PermissionDenied { what: get_str(buf)? },
        29 => Message::CoSendCommand {
            to: get_target(buf)?,
            command: get_str(buf)?,
            payload: get_blob(buf)?,
        },
        30 => Message::CommandDelivery {
            from: InstanceId(get_uvarint(buf)?),
            command: get_str(buf)?,
            payload: get_blob(buf)?,
        },
        31 => Message::ErrorReply { context: get_str(buf)?, reason: get_str(buf)? },
        32 => Message::ObjectDestroyed { object: get_gid(buf)? },
        33 => Message::Rejoin { resume_token: get_uvarint(buf)? },
        34 => Message::Ping { nonce: get_uvarint(buf)? },
        35 => Message::Pong { nonce: get_uvarint(buf)? },
        36 => Message::SessionToken { resume_token: get_uvarint(buf)? },
        37 => Message::Busy { retry_after_ms: get_uvarint(buf)? },
        38 => Message::ApplyDelta {
            req_id: get_uvarint(buf)?,
            path: get_path(buf)?,
            base_version: get_uvarint(buf)?,
            new_version: get_uvarint(buf)?,
            delta: get_delta(buf)?,
            mode: get_copy_mode(buf)?,
        },
        other => return Err(WireError::InvalidTag { kind: "Message", tag: other }),
    })
}

// --------------------------------------------------------------------------
// stream framing
// --------------------------------------------------------------------------

/// Frames a message for a stream transport: `u32-le length ‖ body`.
pub fn frame_message(m: &Message) -> Vec<u8> {
    let body = encode_message(m);
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

// --------------------------------------------------------------------------
// shared frames (encode once, deliver everywhere)
// --------------------------------------------------------------------------

/// Kind name of every message wire tag, indexed by tag byte — the
/// shared-frame encode table backing [`SharedFrame::kind_name`].
///
/// The order is *wire-tag order* (the tag bytes of [`put_message`] /
/// [`get_message`]), which differs from the declaration order of
/// [`Message::ALL_KINDS`]. The `cosoft-audit` shared-frame-table lint
/// checks this table entry-by-entry against the encoder's tag table and
/// the canonical kind list, so a new `Message` variant cannot land
/// without extending it.
pub const TAG_KIND_NAMES: &[&str] = &[
    "register",          // 0
    "deregister",        // 1
    "query-instances",   // 2
    "welcome",           // 3
    "instance-list",     // 4
    "couple",            // 5
    "decouple",          // 6
    "remote-couple",     // 7
    "remote-decouple",   // 8
    "couple-update",     // 9
    "list-coupled",      // 10
    "coupled-set",       // 11
    "event",             // 12
    "event-granted",     // 13
    "event-rejected",    // 14
    "execute-event",     // 15
    "execute-done",      // 16
    "group-unlocked",    // 17
    "copy-from",         // 18
    "copy-to",           // 19
    "remote-copy",       // 20
    "state-request",     // 21
    "state-reply",       // 22
    "apply-state",       // 23
    "state-applied",     // 24
    "undo-state",        // 25
    "redo-state",        // 26
    "set-permission",    // 27
    "permission-denied", // 28
    "co-send-command",   // 29
    "command-delivery",  // 30
    "error-reply",       // 31
    "object-destroyed",  // 32
    "rejoin",            // 33
    "ping",              // 34
    "pong",              // 35
    "session-token",     // 36
    "busy",              // 37
    "apply-delta",       // 38
];

/// A complete, already-framed wire message (`u32-le length ‖ body`)
/// behind a refcounted [`Bytes`] buffer.
///
/// Cloning a `SharedFrame` copies a pointer and bumps a refcount, so a
/// broadcast to N recipients encodes (and allocates) the frame exactly
/// once and fans the same bytes out N times — the encode-once delivery
/// path. The frame bytes are identical to [`frame_message`] output; the
/// golden-vector suite pins that equivalence for every message kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedFrame {
    bytes: Bytes,
}

impl SharedFrame {
    /// Encodes and frames a message once; clones of the result share the
    /// underlying buffer.
    pub fn from_message(m: &Message) -> SharedFrame {
        let mut buf = BytesMut::with_capacity(96);
        buf.put_u32_le(0);
        put_message(&mut buf, m);
        seal_frame(buf)
    }

    /// The complete frame (`u32-le length ‖ body`) as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// The complete frame as a shared [`Bytes`] handle.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Consumes the frame, returning the shared buffer.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// Total frame size in bytes, including the 4-byte length header.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the frame is empty (never true for a framed message; kept
    /// for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The message body (frame minus the length header). Frames built
    /// by [`SharedFrame::from_message`] always carry the 4-byte header;
    /// a shorter buffer yields an empty body rather than a panic.
    pub fn body(&self) -> &[u8] {
        self.bytes.get(4..).unwrap_or(&[])
    }

    /// The message tag byte, if the frame has a body.
    pub fn tag(&self) -> Option<u8> {
        self.body().first().copied()
    }

    /// The kind name of the framed message, looked up in
    /// [`TAG_KIND_NAMES`].
    pub fn kind_name(&self) -> Option<&'static str> {
        TAG_KIND_NAMES.get(usize::from(self.tag()?)).copied()
    }

    /// Decodes the framed message back into an owned [`Message`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the body is malformed (cannot happen
    /// for frames built by this module's constructors).
    pub fn decode(&self) -> Result<Message> {
        decode_message(self.body())
    }
}

/// Patches the length header of a frame built with a 4-byte placeholder
/// and freezes it into a [`SharedFrame`].
fn seal_frame(mut buf: BytesMut) -> SharedFrame {
    let len = (buf.len() - 4) as u32;
    // audit: infallible — callers seed the buffer with a 4-byte length placeholder
    buf[..4].copy_from_slice(&len.to_le_bytes());
    SharedFrame { bytes: buf.freeze() }
}

/// Frames a message into a cheaply-clonable [`SharedFrame`]; the bytes
/// are identical to [`frame_message`].
pub fn frame_message_shared(m: &Message) -> SharedFrame {
    SharedFrame::from_message(m)
}

/// Encodes a [`UiEvent`] once into a shared payload that
/// [`frame_execute_event`] can splice into many per-target frames.
pub fn encode_event_shared(e: &UiEvent) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_event(&mut buf, e);
    buf.freeze()
}

/// Builds an `ExecuteEvent` frame around an already-encoded event
/// payload ([`encode_event_shared`]). The event — the heavy part of a
/// multiple-execution fan-out — is encoded once per broadcast instead of
/// once per group member; the resulting bytes are identical to framing
/// `Message::ExecuteEvent` whole.
pub fn frame_execute_event(exec_id: u64, target: &ObjectPath, event: &Bytes) -> SharedFrame {
    let mut buf = BytesMut::with_capacity(event.len() + 32);
    buf.put_u32_le(0);
    buf.put_u8(15); // ExecuteEvent wire tag
    put_uvarint(&mut buf, exec_id);
    put_path(&mut buf, target);
    buf.extend_from_slice(event);
    seal_frame(buf)
}

/// Encodes a [`StateNode`] snapshot once into a shared payload that
/// [`frame_apply_state`] can splice into many per-leg frames.
pub fn encode_state_shared(s: &StateNode) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    put_state(&mut buf, s);
    buf.freeze()
}

/// Builds an `ApplyState` frame around an already-encoded snapshot
/// ([`encode_state_shared`]). A transfer fanning out to a coupling group
/// encodes the snapshot once instead of deep-cloning and re-encoding it
/// per leg; the resulting bytes are identical to framing
/// `Message::ApplyState` whole.
pub fn frame_apply_state(
    req_id: u64,
    path: &ObjectPath,
    snapshot: &Bytes,
    mode: CopyMode,
) -> SharedFrame {
    let mut buf = BytesMut::with_capacity(snapshot.len() + 32);
    buf.put_u32_le(0);
    buf.put_u8(23); // ApplyState wire tag
    put_uvarint(&mut buf, req_id);
    put_path(&mut buf, path);
    buf.extend_from_slice(snapshot);
    put_copy_mode(&mut buf, mode);
    seal_frame(buf)
}

/// Encodes a [`StateDelta`] once into a shared payload that
/// [`frame_apply_delta`] can splice into many per-leg frames.
pub fn encode_delta_shared(d: &StateDelta) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    put_delta(&mut buf, d);
    buf.freeze()
}

/// Builds an `ApplyDelta` frame around an already-encoded delta
/// ([`encode_delta_shared`]). A transfer fanning out to a coupling group
/// whose members share a sync base encodes the delta once instead of
/// re-encoding it per leg; the resulting bytes are identical to framing
/// `Message::ApplyDelta` whole.
pub fn frame_apply_delta(
    req_id: u64,
    path: &ObjectPath,
    base_version: u64,
    new_version: u64,
    delta: &Bytes,
    mode: CopyMode,
) -> SharedFrame {
    let mut buf = BytesMut::with_capacity(delta.len() + 48);
    buf.put_u32_le(0);
    buf.put_u8(38); // ApplyDelta wire tag
    put_uvarint(&mut buf, req_id);
    put_path(&mut buf, path);
    put_uvarint(&mut buf, base_version);
    put_uvarint(&mut buf, new_version);
    buf.extend_from_slice(delta);
    put_copy_mode(&mut buf, mode);
    seal_frame(buf)
}

/// Writes a framed message to a `Write` stream.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: std::io::Write>(w: &mut W, m: &Message) -> std::io::Result<()> {
    w.write_all(&frame_message(m))
}

/// Reads one framed message from a `Read` stream.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns an `io::Error` on transport failure, truncated frames, frames
/// larger than [`MAX_LEN`], or a malformed body (wrapped [`WireError`]).
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<Message>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as u64;
    if len > MAX_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::LengthOverflow { declared: len, max: MAX_LEN },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_message(&body)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::InstanceInfo;

    fn path(s: &str) -> ObjectPath {
        ObjectPath::parse(s).unwrap()
    }

    fn gid(i: u64, p: &str) -> GlobalObjectId {
        GlobalObjectId::new(InstanceId(i), path(p))
    }

    fn sample_state() -> StateNode {
        let mut root = StateNode::new(WidgetKind::Form, "root");
        root.attrs.insert(AttrName::Title, Value::Text("T".into()));
        root.semantic = vec![1, 2, 3];
        root.children.push(
            StateNode::new(WidgetKind::Slider, "s")
                .with_attr(AttrName::ValueNum, Value::Float(0.5))
                .with_attr(AttrName::Min, Value::Float(0.0)),
        );
        root
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Register {
                user: UserId(9),
                host: "liveboard".into(),
                app_name: "cosoft-teacher".into(),
            },
            Message::Deregister,
            Message::QueryInstances,
            Message::Welcome { instance: InstanceId(4) },
            Message::InstanceList {
                entries: vec![InstanceInfo {
                    instance: InstanceId(1),
                    user: UserId(2),
                    host: "ws1".into(),
                    app_name: "student".into(),
                }],
            },
            Message::Couple { src: gid(1, "a.b"), dst: gid(2, "c") },
            Message::Decouple { src: gid(1, "a.b"), dst: gid(2, "c") },
            Message::RemoteCouple { a: gid(3, "x"), b: gid(4, "y.z") },
            Message::RemoteDecouple { a: gid(3, "x"), b: gid(4, "y.z") },
            Message::CoupleUpdate { group: vec![gid(1, "a"), gid(2, "b")] },
            Message::ListCoupled { object: gid(1, "a") },
            Message::CoupledSet { object: gid(1, "a"), coupled: vec![gid(2, "b")] },
            Message::Event {
                origin: gid(1, "f.slider"),
                event: UiEvent::new(
                    path("f.slider"),
                    EventKind::ValueChanged,
                    vec![Value::Float(0.7)],
                ),
                seq: 42,
            },
            Message::EventGranted { seq: 42, exec_id: 7 },
            Message::EventRejected { seq: 42 },
            Message::ExecuteEvent {
                exec_id: 7,
                target: path("g.s2"),
                event: UiEvent::simple(path("f.slider"), EventKind::Activate),
            },
            Message::ExecuteDone { exec_id: 7 },
            Message::GroupUnlocked { exec_id: 7, objects: vec![path("g.s2"), path("f.slider")] },
            Message::CopyFrom {
                src: gid(1, "a"),
                dst: gid(2, "b"),
                mode: CopyMode::Strict,
                req_id: 1,
            },
            Message::CopyTo {
                src: gid(1, "a"),
                dst: gid(2, "b"),
                snapshot: sample_state(),
                mode: CopyMode::DestructiveMerge,
                req_id: 2,
            },
            Message::RemoteCopy {
                src: gid(1, "a"),
                dst: gid(2, "b"),
                mode: CopyMode::FlexibleMatch,
                req_id: 3,
            },
            Message::StateRequest { req_id: 3, path: path("a") },
            Message::StateReply { req_id: 3, snapshot: Some(sample_state()) },
            Message::StateReply { req_id: 4, snapshot: None },
            Message::ApplyState {
                req_id: 3,
                path: path("b"),
                snapshot: sample_state(),
                mode: CopyMode::Strict,
            },
            Message::StateApplied { req_id: 3, overwritten: Some(sample_state()), error: None },
            Message::StateApplied {
                req_id: 3,
                overwritten: None,
                error: Some("incompatible".into()),
            },
            Message::UndoState { object: gid(2, "b") },
            Message::RedoState { object: gid(2, "b") },
            Message::SetPermission {
                user: UserId(2),
                object: gid(1, "a"),
                right: AccessRight::Read,
            },
            Message::PermissionDenied { what: "copy-from <inst#1, a>".into() },
            Message::CoSendCommand {
                to: Target::Broadcast,
                command: "refresh".into(),
                payload: vec![9, 8],
            },
            Message::CoSendCommand {
                to: Target::Instance(InstanceId(5)),
                command: "x".into(),
                payload: vec![],
            },
            Message::CoSendCommand {
                to: Target::Group(gid(1, "a")),
                command: "y".into(),
                payload: vec![1],
            },
            Message::CommandDelivery {
                from: InstanceId(1),
                command: "refresh".into(),
                payload: vec![9, 8],
            },
            Message::ErrorReply { context: "couple".into(), reason: "unknown instance".into() },
            Message::Rejoin { resume_token: 0xdead_beef },
            Message::Ping { nonce: 17 },
            Message::Pong { nonce: 17 },
            Message::SessionToken { resume_token: u64::MAX },
            Message::Busy { retry_after_ms: 250 },
            Message::ApplyDelta {
                req_id: 6,
                path: path("b"),
                base_version: 11,
                new_version: 12,
                delta: sample_delta(),
                mode: CopyMode::FlexibleMatch,
            },
            Message::ApplyDelta {
                req_id: 7,
                path: path("b.c"),
                base_version: 0,
                new_version: u64::MAX,
                delta: crate::delta::StateDelta::default(),
                mode: CopyMode::Strict,
            },
        ]
    }

    fn sample_delta() -> crate::delta::StateDelta {
        let base = sample_state();
        let mut target = base.clone();
        target.attrs.insert(AttrName::Title, Value::Text("T2".into()));
        target.children.push(StateNode::new(WidgetKind::Button, "go"));
        target.semantic = vec![4, 5];
        crate::delta::diff(&base, &target)
    }

    #[test]
    fn every_message_round_trips() {
        for m in sample_messages() {
            let bytes = encode_message(&m);
            let back = decode_message(&bytes).unwrap_or_else(|e| panic!("{m:?}: {e}"));
            assert_eq!(m, back, "round trip failed for {}", m.kind_name());
        }
    }

    #[test]
    fn framing_round_trips_multiple_messages() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for m in &msgs {
            let got = read_frame(&mut cursor).unwrap().expect("frame expected");
            assert_eq!(&got, m);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF expected");
    }

    #[test]
    fn truncated_body_errors() {
        let m = Message::Welcome { instance: InstanceId(300) };
        let bytes = encode_message(&m);
        for cut in 0..bytes.len() {
            let r = decode_message(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_message(&Message::Deregister);
        bytes.push(0);
        assert!(matches!(decode_message(&bytes), Err(WireError::TrailingBytes { remaining: 1 })));
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            decode_message(&[250]),
            Err(WireError::InvalidTag { kind: "Message", .. })
        ));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut b = BytesMut::new();
            put_uvarint(&mut b, v);
            let mut r = b.freeze();
            assert_eq!(get_uvarint(&mut r).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut b = BytesMut::new();
            put_ivarint(&mut b, v);
            let mut r = b.freeze();
            assert_eq!(get_ivarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 continuation bytes with high bits set → more than 64 bits.
        let bytes = [0xffu8; 11];
        let mut b = Bytes::copy_from_slice(&bytes);
        assert!(matches!(get_uvarint(&mut b), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn nan_floats_round_trip_bitwise() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut b = BytesMut::new();
        put_value(&mut b, &Value::Float(weird));
        let mut r = b.freeze();
        match get_value(&mut r).unwrap() {
            Value::Float(x) => assert_eq!(x.to_bits(), weird.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_rejected() {
        // Value::Bytes with a declared length beyond MAX_LEN.
        let mut b = BytesMut::new();
        b.put_u8(8); // Bytes tag
        put_uvarint(&mut b, MAX_LEN + 1);
        let mut r = b.freeze();
        assert!(matches!(get_value(&mut r), Err(WireError::LengthOverflow { .. })));
    }

    #[test]
    fn deep_state_round_trips() {
        let mut node = StateNode::new(WidgetKind::Label, "leaf");
        for i in 0..50 {
            node = StateNode::new(WidgetKind::Panel, &format!("p{i}")).with_child(node);
        }
        let mut b = BytesMut::new();
        put_state(&mut b, &node);
        let mut r = b.freeze();
        assert_eq!(get_state(&mut r).unwrap(), node);
    }

    #[test]
    fn shared_frames_are_byte_identical_to_owned_frames() {
        for m in sample_messages() {
            let shared = frame_message_shared(&m);
            let owned = frame_message(&m);
            assert_eq!(shared.as_slice(), &owned[..], "frame mismatch for {}", m.kind_name());
            assert_eq!(shared.decode().unwrap(), m);
            assert_eq!(shared.kind_name(), Some(m.kind_name()));
            let clone = shared.clone();
            assert_eq!(clone.bytes().as_ptr(), shared.bytes().as_ptr(), "clone must share");
        }
    }

    #[test]
    fn spliced_execute_event_frame_matches_whole_message() {
        let event =
            UiEvent::new(path("f.slider"), EventKind::ValueChanged, vec![Value::Float(0.7)]);
        let payload = encode_event_shared(&event);
        for exec_id in [0u64, 7, u64::MAX] {
            let target = path("g.s2");
            let spliced = frame_execute_event(exec_id, &target, &payload);
            let whole = frame_message(&Message::ExecuteEvent {
                exec_id,
                target: target.clone(),
                event: event.clone(),
            });
            assert_eq!(spliced.as_slice(), &whole[..], "exec_id={exec_id}");
        }
    }

    #[test]
    fn spliced_apply_state_frame_matches_whole_message() {
        let snapshot = sample_state();
        let payload = encode_state_shared(&snapshot);
        for (req_id, mode) in [
            (0u64, CopyMode::Strict),
            (3, CopyMode::FlexibleMatch),
            (u64::MAX, CopyMode::DestructiveMerge),
        ] {
            let p = path("b.c");
            let spliced = frame_apply_state(req_id, &p, &payload, mode);
            let whole = frame_message(&Message::ApplyState {
                req_id,
                path: p.clone(),
                snapshot: snapshot.clone(),
                mode,
            });
            assert_eq!(spliced.as_slice(), &whole[..], "req_id={req_id} mode={mode:?}");
        }
    }

    #[test]
    fn spliced_apply_delta_frame_matches_whole_message() {
        let delta = sample_delta();
        let payload = encode_delta_shared(&delta);
        for (req_id, base_version, new_version, mode) in [
            (0u64, 0u64, 1u64, CopyMode::Strict),
            (3, 11, 12, CopyMode::FlexibleMatch),
            (u64::MAX, u64::MAX, 0, CopyMode::DestructiveMerge),
        ] {
            let p = path("b.c");
            let spliced = frame_apply_delta(req_id, &p, base_version, new_version, &payload, mode);
            let whole = frame_message(&Message::ApplyDelta {
                req_id,
                path: p.clone(),
                base_version,
                new_version,
                delta: delta.clone(),
                mode,
            });
            assert_eq!(spliced.as_slice(), &whole[..], "req_id={req_id} mode={mode:?}");
        }
    }

    #[test]
    fn delta_codec_round_trips() {
        let delta = sample_delta();
        let mut b = BytesMut::new();
        put_delta(&mut b, &delta);
        let mut r = b.freeze();
        assert_eq!(get_delta(&mut r).unwrap(), delta);
        assert!(!r.has_remaining());
    }

    #[test]
    fn tag_kind_names_agrees_with_encoder() {
        assert_eq!(TAG_KIND_NAMES.len(), Message::ALL_KINDS.len());
        let tag_set: std::collections::BTreeSet<&str> = TAG_KIND_NAMES.iter().copied().collect();
        let kind_set: std::collections::BTreeSet<&str> =
            Message::ALL_KINDS.iter().copied().collect();
        assert_eq!(tag_set, kind_set, "TAG_KIND_NAMES and ALL_KINDS must list the same names");
        for m in sample_messages() {
            let shared = frame_message_shared(&m);
            let tag = shared.tag().expect("tag byte");
            assert_eq!(
                TAG_KIND_NAMES[usize::from(tag)],
                m.kind_name(),
                "tag {tag} maps to the wrong kind name"
            );
        }
    }
}
