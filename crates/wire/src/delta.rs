//! Attribute-level deltas between UI-state snapshots (§3.1).
//!
//! The paper's per-type *relevant attributes* schema makes attribute-level
//! diffs well-posed: two snapshots of the same object expose the same
//! attribute vocabulary, so the difference between them is a small set of
//! attribute upserts/removals plus child add/remove/reorder operations.
//! [`diff`] computes such a [`StateDelta`]; [`apply`] replays it on the
//! base snapshot and reconstructs the target byte-identically (the codec
//! is deterministic because [`AttrMap`] is a `BTreeMap`).
//!
//! Deltas are keyed to a *base version* — a content fingerprint of the
//! snapshot they apply to ([`state_version`]). A receiver whose current
//! sync base carries a different version must refuse the delta, which
//! makes the server fall back to a full snapshot (`ApplyState`).

use crate::{AttrMap, AttrName, StateNode, WidgetKind};
use std::collections::HashSet;
use std::fmt;

/// A deterministic, attribute-level difference between two [`StateNode`]
/// trees. Applying the edits in order to the base tree yields the target
/// tree exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateDelta {
    /// Node edits in pre-order of the base tree.
    pub edits: Vec<NodeEdit>,
}

impl StateDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Rough in-memory size, mirroring [`StateNode::approx_size`]; used by
    /// admission control to price `ApplyDelta` messages.
    pub fn approx_size(&self) -> usize {
        self.edits
            .iter()
            .map(|e| {
                let path: usize = e.path.iter().map(|s| 8 + s.len()).sum();
                let op = match &e.op {
                    EditOp::Patch(p) => {
                        16 + 16 * p.upserts.len()
                            + 8 * p.removals.len()
                            + p.semantic.as_ref().map(Vec::len).unwrap_or(0)
                    }
                    EditOp::Replace(s) => s.approx_size(),
                    EditOp::Restructure { order, inserts } => {
                        order.iter().map(|s| 8 + s.len()).sum::<usize>()
                            + inserts.iter().map(StateNode::approx_size).sum::<usize>()
                    }
                };
                16 + path + op
            })
            .sum()
    }
}

/// One edit addressed at a single node of the base tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEdit {
    /// Path from the root to the edited node, as child-name segments
    /// (empty = the root itself). Kept children keep their names, so the
    /// same path resolves in both the base and the target tree.
    pub path: Vec<String>,
    /// The operation to perform at that node.
    pub op: EditOp,
}

/// The operation of a [`NodeEdit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// In-place update of the node's own fields (kind, attributes,
    /// semantic payload); children are untouched.
    Patch(NodePatch),
    /// Wholesale replacement of the node's subtree. Emitted when
    /// name-keyed child matching is ill-posed (duplicate child names) or
    /// when the root itself was renamed.
    Replace(StateNode),
    /// Rebuild the node's child list: `order` names the new child
    /// sequence; names already present among the current children keep
    /// their (recursively patched) subtrees, names that are not are taken
    /// from `inserts`. Children absent from `order` are dropped.
    Restructure {
        /// Final child order, by name.
        order: Vec<String>,
        /// Full subtrees for the names in `order` that are not existing
        /// children of the base node.
        inserts: Vec<StateNode>,
    },
}

/// Attribute/semantic/kind changes applied to a single node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodePatch {
    /// Replacement widget kind, when it changed.
    pub kind: Option<WidgetKind>,
    /// Attributes to insert or overwrite. A `BTreeMap` keeps the wire
    /// encoding deterministic.
    pub upserts: AttrMap,
    /// Attribute names to remove, in the base map's sorted order.
    pub removals: Vec<AttrName>,
    /// Replacement semantic payload, when it changed.
    pub semantic: Option<Vec<u8>>,
}

impl NodePatch {
    /// Whether the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.kind.is_none()
            && self.upserts.is_empty()
            && self.removals.is_empty()
            && self.semantic.is_none()
    }
}

/// Why a delta could not be applied to a base tree — the receiver's state
/// diverged from the version the delta was computed against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edit path did not resolve in the (partially rebuilt) base tree.
    MissingNode {
        /// The dotted path that failed to resolve.
        path: String,
    },
    /// A `Restructure` order named a child that is neither an existing
    /// child nor carried in `inserts`.
    MissingChild {
        /// The unresolved child name.
        name: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::MissingNode { path } => {
                write!(f, "delta path '{path}' does not resolve in the base tree")
            }
            DeltaError::MissingChild { name } => {
                write!(f, "delta restructure names unknown child '{name}'")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Computes the delta that turns `base` into `target`.
///
/// The result is deterministic: attribute maps iterate in `BTreeMap`
/// order and edits are emitted in pre-order of the tree. `diff` followed
/// by [`apply`] reconstructs `target` exactly (and therefore re-encodes
/// byte-identically); this round trip is pinned by property tests.
pub fn diff(base: &StateNode, target: &StateNode) -> StateDelta {
    let mut edits = Vec::new();
    if base.name != target.name {
        // The root was renamed; name-keyed addressing has no anchor.
        if base != target {
            edits.push(NodeEdit { path: Vec::new(), op: EditOp::Replace(target.clone()) });
        }
        return StateDelta { edits };
    }
    let mut path = Vec::new();
    diff_rec(base, target, &mut path, &mut edits);
    StateDelta { edits }
}

fn has_duplicate_names(children: &[StateNode]) -> bool {
    let mut seen = HashSet::with_capacity(children.len());
    children.iter().any(|c| !seen.insert(c.name.as_str()))
}

fn diff_rec(
    base: &StateNode,
    target: &StateNode,
    path: &mut Vec<String>,
    edits: &mut Vec<NodeEdit>,
) {
    if base == target {
        return;
    }
    if has_duplicate_names(&base.children) || has_duplicate_names(&target.children) {
        // Name-keyed child matching is ambiguous here; replace wholesale.
        edits.push(NodeEdit { path: path.clone(), op: EditOp::Replace(target.clone()) });
        return;
    }

    let mut patch = NodePatch::default();
    if base.kind != target.kind {
        patch.kind = Some(target.kind.clone());
    }
    for (k, v) in &target.attrs {
        if base.attrs.get(k) != Some(v) {
            patch.upserts.insert(k.clone(), v.clone());
        }
    }
    for k in base.attrs.keys() {
        if !target.attrs.contains_key(k) {
            patch.removals.push(k.clone());
        }
    }
    if base.semantic != target.semantic {
        patch.semantic = Some(target.semantic.clone());
    }
    if !patch.is_empty() {
        edits.push(NodeEdit { path: path.clone(), op: EditOp::Patch(patch) });
    }

    let base_names: Vec<&str> = base.children.iter().map(|c| c.name.as_str()).collect();
    let target_names: Vec<&str> = target.children.iter().map(|c| c.name.as_str()).collect();
    if base_names != target_names {
        let base_set: HashSet<&str> = base_names.iter().copied().collect();
        let inserts: Vec<StateNode> = target
            .children
            .iter()
            .filter(|c| !base_set.contains(c.name.as_str()))
            .cloned()
            .collect();
        edits.push(NodeEdit {
            path: path.clone(),
            op: EditOp::Restructure {
                order: target_names.iter().map(|s| (*s).to_owned()).collect(),
                inserts,
            },
        });
    }

    // Recurse into children kept (by name) on both sides. Freshly
    // inserted subtrees already arrived whole via `Restructure`.
    for tc in &target.children {
        if let Some(bc) = base.child(&tc.name) {
            path.push(tc.name.clone());
            diff_rec(bc, tc, path, edits);
            path.pop();
        }
    }
}

/// Applies `delta` to `base`, reconstructing the target tree.
///
/// # Errors
///
/// Returns a [`DeltaError`] when the delta does not fit the base tree —
/// i.e. the receiver's state diverged from the base version the sender
/// diffed against. Callers treat that as the signal to request a full
/// snapshot instead.
pub fn apply(base: &StateNode, delta: &StateDelta) -> Result<StateNode, DeltaError> {
    let mut out = base.clone();
    for edit in &delta.edits {
        apply_edit(&mut out, edit)?;
    }
    Ok(out)
}

fn apply_edit(root: &mut StateNode, edit: &NodeEdit) -> Result<(), DeltaError> {
    let mut node: &mut StateNode = root;
    for seg in &edit.path {
        node = node
            .children
            .iter_mut()
            .find(|c| &c.name == seg)
            .ok_or_else(|| DeltaError::MissingNode { path: edit.path.join(".") })?;
    }
    match &edit.op {
        EditOp::Patch(p) => {
            if let Some(kind) = &p.kind {
                node.kind = kind.clone();
            }
            for (k, v) in &p.upserts {
                node.attrs.insert(k.clone(), v.clone());
            }
            for k in &p.removals {
                node.attrs.remove(k);
            }
            if let Some(semantic) = &p.semantic {
                node.semantic = semantic.clone();
            }
        }
        EditOp::Replace(replacement) => {
            *node = replacement.clone();
        }
        EditOp::Restructure { order, inserts } => {
            let mut existing: Vec<StateNode> = std::mem::take(&mut node.children);
            let mut rebuilt = Vec::with_capacity(order.len());
            for name in order {
                if let Some(pos) = existing.iter().position(|c| &c.name == name) {
                    rebuilt.push(existing.remove(pos));
                } else if let Some(ins) = inserts.iter().find(|c| &c.name == name) {
                    rebuilt.push(ins.clone());
                } else {
                    return Err(DeltaError::MissingChild { name: name.clone() });
                }
            }
            node.children = rebuilt;
        }
    }
    Ok(())
}

/// Content-derived version of a snapshot: a 64-bit FNV-1a fingerprint of
/// its canonical wire encoding. Two snapshots carry the same version iff
/// they are structurally equal (modulo hash collisions), so version
/// agreement between sender and receiver means their sync bases match and
/// a delta against that base is safe to apply.
pub fn state_version(s: &StateNode) -> u64 {
    version_of_encoded(&crate::codec::encode_state_shared(s))
}

/// The same fingerprint as [`state_version`], computed over an
/// already-encoded snapshot (avoids re-encoding on the hot fan-out path).
pub fn version_of_encoded(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrName, Value, WidgetKind};

    fn sample() -> StateNode {
        StateNode::new(WidgetKind::Form, "root")
            .with_attr(AttrName::Title, Value::Text("Query".into()))
            .with_child(
                StateNode::new(WidgetKind::TextField, "author")
                    .with_attr(AttrName::Text, Value::Text("Hoppe".into())),
            )
            .with_child(
                StateNode::new(WidgetKind::Menu, "operator")
                    .with_attr(AttrName::Selected, Value::Int(1)),
            )
    }

    #[test]
    fn identical_trees_diff_to_empty() {
        let s = sample();
        let d = diff(&s, &s);
        assert!(d.is_empty());
        assert_eq!(apply(&s, &d).unwrap(), s);
    }

    #[test]
    fn single_attr_change_is_one_patch() {
        let a = sample();
        let mut b = a.clone();
        b.children[0].attrs.insert(AttrName::Text, Value::Text("Zhao".into()));
        let d = diff(&a, &b);
        assert_eq!(d.edits.len(), 1);
        assert_eq!(d.edits[0].path, vec!["author".to_owned()]);
        assert!(matches!(d.edits[0].op, EditOp::Patch(_)));
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn attr_removal_round_trips() {
        let a = sample();
        let mut b = a.clone();
        b.attrs.remove(&AttrName::Title);
        let d = diff(&a, &b);
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn semantic_change_round_trips() {
        let a = sample();
        let mut b = a.clone();
        b.children[1].semantic = vec![42, 43];
        let d = diff(&a, &b);
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn kind_change_round_trips() {
        let a = sample();
        let mut b = a.clone();
        b.children[1].kind = WidgetKind::List;
        let d = diff(&a, &b);
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn child_reorder_round_trips() {
        let a = sample();
        let mut b = a.clone();
        b.children.reverse();
        let d = diff(&a, &b);
        assert_eq!(d.edits.len(), 1);
        assert!(matches!(d.edits[0].op, EditOp::Restructure { .. }));
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn child_add_and_remove_round_trips() {
        let a = sample();
        let mut b = a.clone();
        b.children.remove(0);
        b.children.push(StateNode::new(WidgetKind::Button, "go"));
        let d = diff(&a, &b);
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn duplicate_child_names_fall_back_to_replace() {
        let mut a = sample();
        a.children.push(StateNode::new(WidgetKind::Label, "author"));
        let mut b = a.clone();
        b.attrs.insert(AttrName::Title, Value::Text("new".into()));
        let d = diff(&a, &b);
        assert!(d.edits.iter().any(|e| matches!(e.op, EditOp::Replace(_))));
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn root_rename_replaces_whole_tree() {
        let a = sample();
        let mut b = a.clone();
        b.name = "other".into();
        let d = diff(&a, &b);
        assert_eq!(d.edits.len(), 1);
        assert!(d.edits[0].path.is_empty());
        assert!(matches!(d.edits[0].op, EditOp::Replace(_)));
        assert_eq!(apply(&a, &d).unwrap(), b);
    }

    #[test]
    fn diverged_base_is_rejected() {
        let a = sample();
        let mut b = a.clone();
        b.children[0].attrs.insert(AttrName::Text, Value::Text("Zhao".into()));
        let d = diff(&a, &b);
        // A base missing the edited child cannot absorb the delta.
        let mut diverged = a.clone();
        diverged.children.remove(0);
        assert!(matches!(apply(&diverged, &d), Err(DeltaError::MissingNode { .. })));
    }

    #[test]
    fn versions_track_content() {
        let a = sample();
        let mut b = a.clone();
        b.children[0].attrs.insert(AttrName::Text, Value::Text("Zhao".into()));
        assert_eq!(state_version(&a), state_version(&a.clone()));
        assert_ne!(state_version(&a), state_version(&b));
        assert_eq!(state_version(&a), version_of_encoded(&crate::codec::encode_state_shared(&a)));
    }

    #[test]
    fn delta_error_display() {
        let missing = DeltaError::MissingNode { path: "a.b".into() };
        assert!(missing.to_string().contains("a.b"));
        let child = DeltaError::MissingChild { name: "x".into() };
        assert!(child.to_string().contains('x'));
    }
}
