use std::fmt;

use crate::WireError;

/// Identifier of a registered application instance.
///
/// Assigned by the COSOFT server at registration time (§2.2 "registration
/// records"). The tuple `<instance-id, pathname>` globally names a UI object
/// across all application instances (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// Identifier of a human participant.
///
/// Used in the server's three-valued access-permission tuples
/// `(user, ui-state id, access right)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// Hierarchical pathname of a UI object within one application instance.
///
/// UI objects are organized as a tree along the parent/child relationship;
/// the pathname is the dot-separated list of widget names from the root,
/// e.g. `root.query_form.author_field`.
///
/// Paths are cheap to clone (segments are reference-counted internally is
/// *not* done — they are plain `String`s; clone cost is linear, which the
/// coupling layer amortizes by cloning rarely).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectPath {
    segments: Vec<String>,
}

impl ObjectPath {
    /// Creates the root path (no segments).
    ///
    /// The root path names the top-level widget of an instance.
    pub fn root() -> Self {
        ObjectPath { segments: Vec::new() }
    }

    /// Creates a path from owned segments.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidPath`] if any segment is empty or
    /// contains the separator `.`.
    pub fn from_segments<I>(segments: I) -> Result<Self, WireError>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        for s in &segments {
            if s.is_empty() {
                return Err(WireError::InvalidPath { reason: "empty segment" });
            }
            if s.contains('.') {
                return Err(WireError::InvalidPath { reason: "segment contains separator" });
            }
        }
        Ok(ObjectPath { segments })
    }

    /// Parses a dot-separated pathname such as `root.panel.button1`.
    ///
    /// An empty string parses to the root path.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidPath`] on empty segments (`a..b`).
    pub fn parse(s: &str) -> Result<Self, WireError> {
        if s.is_empty() {
            return Ok(Self::root());
        }
        Self::from_segments(s.split('.').map(str::to_owned))
    }

    /// Returns a new path with `name` appended as the last segment.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidPath`] if `name` is empty or contains `.`.
    pub fn child(&self, name: &str) -> Result<Self, WireError> {
        if name.is_empty() {
            return Err(WireError::InvalidPath { reason: "empty segment" });
        }
        if name.contains('.') {
            return Err(WireError::InvalidPath { reason: "segment contains separator" });
        }
        let mut segments = self.segments.clone();
        segments.push(name.to_owned());
        Ok(ObjectPath { segments })
    }

    /// Returns the parent path, or `None` for the root path.
    pub fn parent(&self) -> Option<Self> {
        self.segments.split_last().map(|(_, parent)| ObjectPath { segments: parent.to_vec() })
    }

    /// Returns the final segment (the widget's own name), or `None` for root.
    pub fn leaf(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// Returns the path segments.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Returns the number of segments (0 for the root path).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if this is the root path.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Returns `true` if `self` is `other` or an ancestor of `other`.
    ///
    /// Used by the coupling layer: an event inside a coupled complex object
    /// must be routed through the couple link of the enclosing object.
    pub fn is_prefix_of(&self, other: &ObjectPath) -> bool {
        other.segments.get(..self.segments.len()) == Some(self.segments.as_slice())
    }

    /// Strips `prefix` from the front of `self`, returning the relative
    /// remainder, or `None` if `prefix` is not a prefix of `self`.
    pub fn strip_prefix(&self, prefix: &ObjectPath) -> Option<ObjectPath> {
        if !prefix.is_prefix_of(self) {
            return None;
        }
        self.segments
            .get(prefix.segments.len()..)
            .map(|rest| ObjectPath { segments: rest.to_vec() })
    }

    /// Joins a relative path onto `self`.
    pub fn join(&self, rel: &ObjectPath) -> ObjectPath {
        let mut segments = self.segments.clone();
        segments.extend(rel.segments.iter().cloned());
        ObjectPath { segments }
    }
}

impl fmt::Display for ObjectPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            write!(f, "<root>")
        } else {
            write!(f, "{}", self.segments.join("."))
        }
    }
}

/// Global name of a UI object: the pair `<instance-id, pathname>` of §3.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalObjectId {
    /// The owning application instance.
    pub instance: InstanceId,
    /// The object's pathname within that instance.
    pub path: ObjectPath,
}

impl GlobalObjectId {
    /// Creates a global object id from its two components.
    pub fn new(instance: InstanceId, path: ObjectPath) -> Self {
        GlobalObjectId { instance, path }
    }
}

impl fmt::Display for GlobalObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.instance, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p = ObjectPath::parse("root.panel.button1").unwrap();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.leaf(), Some("button1"));
        assert_eq!(p.to_string(), "root.panel.button1");
    }

    #[test]
    fn empty_string_is_root() {
        let p = ObjectPath::parse("").unwrap();
        assert!(p.is_root());
        assert_eq!(p.leaf(), None);
        assert_eq!(p.parent(), None);
        assert_eq!(p.to_string(), "<root>");
    }

    #[test]
    fn rejects_empty_segments() {
        assert!(ObjectPath::parse("a..b").is_err());
        assert!(ObjectPath::root().child("").is_err());
        assert!(ObjectPath::root().child("a.b").is_err());
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = ObjectPath::parse("root.form").unwrap();
        let c = p.child("field").unwrap();
        assert_eq!(c.parent().unwrap(), p);
        assert_eq!(c.leaf(), Some("field"));
    }

    #[test]
    fn prefix_relations() {
        let a = ObjectPath::parse("root.form").unwrap();
        let b = ObjectPath::parse("root.form.field").unwrap();
        let c = ObjectPath::parse("root.other").unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(!a.is_prefix_of(&c));
        assert_eq!(b.strip_prefix(&a).unwrap().to_string(), "field");
        assert!(c.strip_prefix(&a).is_none());
        assert_eq!(a.join(&ObjectPath::parse("field").unwrap()), b);
    }

    #[test]
    fn root_is_prefix_of_everything() {
        let r = ObjectPath::root();
        let b = ObjectPath::parse("x.y").unwrap();
        assert!(r.is_prefix_of(&b));
        assert_eq!(b.strip_prefix(&r).unwrap(), b);
    }

    #[test]
    fn global_id_display() {
        let g = GlobalObjectId::new(InstanceId(7), ObjectPath::parse("a.b").unwrap());
        assert_eq!(g.to_string(), "<inst#7, a.b>");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(InstanceId(1));
        set.insert(InstanceId(1));
        assert_eq!(set.len(), 1);
        assert!(InstanceId(1) < InstanceId(2));
        assert!(UserId(3) > UserId(2));
    }
}
