use std::fmt;

/// Typed value of a UI-object attribute.
///
/// Every attribute in the toolkit carries one of these variants; the wire
/// codec encodes them as a tagged union. `Float` values compare by IEEE-754
/// bit pattern so that `Value` can implement `Eq`/`Hash` (NaN payloads are
/// preserved end-to-end by the codec).
#[derive(Debug, Clone)]
pub enum Value {
    /// Boolean attribute (e.g. `enabled`, `checked`).
    Bool(bool),
    /// Integer attribute (e.g. geometry, selection index).
    Int(i64),
    /// Floating-point attribute (e.g. a slider position).
    Float(f64),
    /// Text attribute (e.g. a text field's content).
    Text(String),
    /// List of strings (e.g. menu items).
    TextList(Vec<String>),
    /// List of integers (e.g. multi-selection indices).
    IntList(Vec<i64>),
    /// A 2-D point, used by canvas strokes and geometry.
    Point(i32, i32),
    /// An RGB colour.
    Color(u8, u8, u8),
    /// Opaque bytes (semantic payloads travelling with UI state).
    Bytes(Vec<u8>),
    /// A polyline stroke on a canvas: flattened `(x, y)` pairs.
    Stroke(Vec<(i32, i32)>),
    /// The full stroke set of a canvas widget.
    StrokeList(Vec<Vec<(i32, i32)>>),
}

impl Value {
    /// Returns the contained boolean, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float, if this is `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the contained text, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained string list, if this is `TextList`.
    pub fn as_text_list(&self) -> Option<&[String]> {
        match self {
            Value::TextList(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained integer list, if this is `IntList`.
    pub fn as_int_list(&self) -> Option<&[i64]> {
        match self {
            Value::IntList(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained bytes, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// A short name for the variant, used in type-mismatch diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::TextList(_) => "text-list",
            Value::IntList(_) => "int-list",
            Value::Point(_, _) => "point",
            Value::Color(_, _, _) => "color",
            Value::Bytes(_) => "bytes",
            Value::Stroke(_) => "stroke",
            Value::StrokeList(_) => "stroke-list",
        }
    }

    /// Returns `true` if `self` and `other` are the same variant.
    pub fn same_type(&self, other: &Value) -> bool {
        self.type_name() == other.type_name()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            // Bit-pattern equality: keeps Eq lawful and NaN round-trippable.
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Text(a), Text(b)) => a == b,
            (TextList(a), TextList(b)) => a == b,
            (IntList(a), IntList(b)) => a == b,
            (Point(ax, ay), Point(bx, by)) => ax == bx && ay == by,
            (Color(ar, ag, ab), Color(br, bg, bb)) => ar == br && ag == bg && ab == bb,
            (Bytes(a), Bytes(b)) => a == b,
            (Stroke(a), Stroke(b)) => a == b,
            (StrokeList(a), StrokeList(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use Value::*;
        std::mem::discriminant(self).hash(state);
        match self {
            Bool(b) => b.hash(state),
            Int(i) => i.hash(state),
            Float(x) => x.to_bits().hash(state),
            Text(s) => s.hash(state),
            TextList(v) => v.hash(state),
            IntList(v) => v.hash(state),
            Point(x, y) => {
                x.hash(state);
                y.hash(state);
            }
            Color(r, g, b) => {
                r.hash(state);
                g.hash(state);
                b.hash(state);
            }
            Bytes(b) => b.hash(state),
            Stroke(v) => v.hash(state),
            StrokeList(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::TextList(v) => write!(f, "{v:?}"),
            Value::IntList(v) => write!(f, "{v:?}"),
            Value::Point(x, y) => write!(f, "({x}, {y})"),
            Value::Color(r, g, b) => write!(f, "#{r:02x}{g:02x}{b:02x}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Stroke(v) => write!(f, "<stroke of {} points>", v.len()),
            Value::StrokeList(v) => write!(f, "<{} strokes>", v.len()),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<Vec<String>> for Value {
    fn from(v: Vec<String>) -> Self {
        Value::TextList(v)
    }
}

/// Name of a UI-object attribute.
///
/// The common toolkit attributes are first-class variants (compact on the
/// wire and cheap to compare); application-specific attributes use
/// [`AttrName::Custom`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrName {
    /// Window/form title or widget caption.
    Title,
    /// Textual content (text fields, labels).
    Text,
    /// Generic numeric value (sliders, spinners).
    ValueNum,
    /// Items of a list or menu.
    Items,
    /// Index of the selected item (-1 for none).
    Selected,
    /// Whether the widget accepts input.
    Enabled,
    /// Whether the widget is drawn.
    Visible,
    /// X position within the parent.
    X,
    /// Y position within the parent.
    Y,
    /// Widget width.
    Width,
    /// Widget height.
    Height,
    /// Foreground colour.
    Foreground,
    /// Background colour.
    Background,
    /// Font name.
    Font,
    /// Toggle state of check/toggle buttons.
    Checked,
    /// Minimum of a ranged widget.
    Min,
    /// Maximum of a ranged widget.
    Max,
    /// Strokes of a canvas (count stored as Int; stroke data in per-stroke
    /// attributes is modelled as `Value::Stroke` entries of `Items`-like
    /// custom attributes by the toolkit).
    Strokes,
    /// Application-specific attribute.
    ///
    /// The wire form of an attribute name is its canonical string, so a
    /// `Custom` name equal to a builtin's canonical form (e.g. `"text"`)
    /// decodes as the builtin variant. Construct through
    /// [`AttrName::custom`] / [`AttrName::from_str_lossy`] to normalize.
    Custom(String),
}

impl AttrName {
    /// Creates an attribute name from an application-specific string,
    /// normalizing names that collide with builtin attributes.
    pub fn custom(name: &str) -> Self {
        AttrName::from_str_lossy(name)
    }

    /// Canonical textual form used by the UI-spec parser and `Display`.
    pub fn as_str(&self) -> &str {
        match self {
            AttrName::Title => "title",
            AttrName::Text => "text",
            AttrName::ValueNum => "value",
            AttrName::Items => "items",
            AttrName::Selected => "selected",
            AttrName::Enabled => "enabled",
            AttrName::Visible => "visible",
            AttrName::X => "x",
            AttrName::Y => "y",
            AttrName::Width => "width",
            AttrName::Height => "height",
            AttrName::Foreground => "foreground",
            AttrName::Background => "background",
            AttrName::Font => "font",
            AttrName::Checked => "checked",
            AttrName::Min => "min",
            AttrName::Max => "max",
            AttrName::Strokes => "strokes",
            AttrName::Custom(s) => s,
        }
    }

    /// Parses a canonical attribute name; unknown names become `Custom`.
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "title" => AttrName::Title,
            "text" => AttrName::Text,
            "value" => AttrName::ValueNum,
            "items" => AttrName::Items,
            "selected" => AttrName::Selected,
            "enabled" => AttrName::Enabled,
            "visible" => AttrName::Visible,
            "x" => AttrName::X,
            "y" => AttrName::Y,
            "width" => AttrName::Width,
            "height" => AttrName::Height,
            "foreground" => AttrName::Foreground,
            "background" => AttrName::Background,
            "font" => AttrName::Font,
            "checked" => AttrName::Checked,
            "min" => AttrName::Min,
            "max" => AttrName::Max,
            "strokes" => AttrName::Strokes,
            other => AttrName::Custom(other.to_owned()),
        }
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Type of a primitive UI object (§3: "form, button, menu, etc.").
///
/// The set mirrors the CENTER/Motif widget classes the paper names plus the
/// widgets its applications need (canvas for GroupDesign-style sketches,
/// table for TORI result forms). `Custom` covers application-defined
/// widget classes.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WidgetKind {
    /// Container form; the usual complex-object root.
    #[default]
    Form,
    /// Horizontal/vertical grouping container.
    Panel,
    /// Momentary push button.
    Button,
    /// Two-state toggle button.
    ToggleButton,
    /// Option menu (drop-down of items).
    Menu,
    /// Single-line text input field.
    TextField,
    /// Multi-line text area.
    TextArea,
    /// Static text label.
    Label,
    /// Scrollable list of items.
    List,
    /// Ranged slider / scale.
    Slider,
    /// Free-form drawing canvas.
    Canvas,
    /// Row/column table of textual cells.
    Table,
    /// Application-defined widget class.
    Custom(String),
}

impl WidgetKind {
    /// Canonical textual form used by the UI-spec parser and `Display`.
    pub fn as_str(&self) -> &str {
        match self {
            WidgetKind::Form => "form",
            WidgetKind::Panel => "panel",
            WidgetKind::Button => "button",
            WidgetKind::ToggleButton => "toggle",
            WidgetKind::Menu => "menu",
            WidgetKind::TextField => "textfield",
            WidgetKind::TextArea => "textarea",
            WidgetKind::Label => "label",
            WidgetKind::List => "list",
            WidgetKind::Slider => "slider",
            WidgetKind::Canvas => "canvas",
            WidgetKind::Table => "table",
            WidgetKind::Custom(s) => s,
        }
    }

    /// Parses a canonical kind name; unknown names become `Custom`.
    pub fn from_str_lossy(s: &str) -> Self {
        match s {
            "form" => WidgetKind::Form,
            "panel" => WidgetKind::Panel,
            "button" => WidgetKind::Button,
            "toggle" => WidgetKind::ToggleButton,
            "menu" => WidgetKind::Menu,
            "textfield" => WidgetKind::TextField,
            "textarea" => WidgetKind::TextArea,
            "label" => WidgetKind::Label,
            "list" => WidgetKind::List,
            "slider" => WidgetKind::Slider,
            "canvas" => WidgetKind::Canvas,
            "table" => WidgetKind::Table,
            other => WidgetKind::Custom(other.to_owned()),
        }
    }

    /// Returns `true` if widgets of this kind may have children.
    pub fn is_container(&self) -> bool {
        matches!(self, WidgetKind::Form | WidgetKind::Panel | WidgetKind::Custom(_))
    }
}

impl fmt::Display for WidgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_eq_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
    }

    #[test]
    fn accessors_return_none_on_mismatch() {
        let v = Value::Int(3);
        assert_eq!(v.as_int(), Some(3));
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_text(), None);
        assert!(Value::Text("x".into()).as_text().is_some());
        assert!(Value::Bytes(vec![1]).as_bytes().is_some());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(2.0).as_float(), Some(2.0));
    }

    #[test]
    fn same_type_discriminates() {
        assert!(Value::Int(1).same_type(&Value::Int(9)));
        assert!(!Value::Int(1).same_type(&Value::Float(1.0)));
    }

    #[test]
    fn attr_name_round_trips_via_str() {
        let names = [
            AttrName::Title,
            AttrName::Text,
            AttrName::ValueNum,
            AttrName::Items,
            AttrName::Selected,
            AttrName::Enabled,
            AttrName::Visible,
            AttrName::X,
            AttrName::Y,
            AttrName::Width,
            AttrName::Height,
            AttrName::Foreground,
            AttrName::Background,
            AttrName::Font,
            AttrName::Checked,
            AttrName::Min,
            AttrName::Max,
            AttrName::Strokes,
            AttrName::custom("sim_speed"),
        ];
        for n in names {
            assert_eq!(AttrName::from_str_lossy(n.as_str()), n);
        }
    }

    #[test]
    fn widget_kind_round_trips_via_str() {
        let kinds = [
            WidgetKind::Form,
            WidgetKind::Panel,
            WidgetKind::Button,
            WidgetKind::ToggleButton,
            WidgetKind::Menu,
            WidgetKind::TextField,
            WidgetKind::TextArea,
            WidgetKind::Label,
            WidgetKind::List,
            WidgetKind::Slider,
            WidgetKind::Canvas,
            WidgetKind::Table,
            WidgetKind::Custom("simview".into()),
        ];
        for k in kinds {
            assert_eq!(WidgetKind::from_str_lossy(k.as_str()), k);
        }
    }

    #[test]
    fn container_classification() {
        assert!(WidgetKind::Form.is_container());
        assert!(WidgetKind::Panel.is_container());
        assert!(!WidgetKind::Button.is_container());
        assert!(!WidgetKind::TextField.is_container());
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Color(255, 0, 16).to_string(), "#ff0010");
        assert_eq!(Value::Point(3, -4).to_string(), "(3, -4)");
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
    }
}
