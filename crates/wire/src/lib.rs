//! Wire protocol for the COSOFT flexible UI-coupling system.
//!
//! This crate defines the *vocabulary* shared by every component of the
//! reproduction of Zhao & Hoppe, "Supporting Flexible Communication in
//! Heterogeneous Multi-User Environments" (ICDCS 1994):
//!
//! * identifiers — [`InstanceId`], [`UserId`], [`ObjectPath`] and the
//!   globally unique [`GlobalObjectId`] `<instance-id, pathname>` of §3,
//! * typed attribute values ([`Value`]) and attribute names ([`AttrName`]),
//! * UI-state snapshots ([`StateNode`]) used by synchronization-by-state,
//! * high-level callback events ([`UiEvent`]) used by
//!   synchronization-by-action (multiple execution),
//! * the client↔server [`Message`] set, and
//! * a hand-rolled, deterministic binary codec ([`codec`]).
//!
//! The codec is written by hand (length-prefixed frames, varints, tagged
//! unions) rather than derived, mirroring the era of the paper and keeping
//! the protocol inspectable; `encode ∘ decode = id` is enforced by property
//! tests.
//!
//! # Example
//!
//! ```
//! use cosoft_wire::{Message, ObjectPath, GlobalObjectId, InstanceId, codec};
//!
//! # fn main() -> Result<(), cosoft_wire::WireError> {
//! let msg = Message::Couple {
//!     src: GlobalObjectId::new(InstanceId(1), ObjectPath::parse("root.panel.field")?),
//!     dst: GlobalObjectId::new(InstanceId(2), ObjectPath::parse("root.entry")?),
//! };
//! let bytes = codec::encode_message(&msg);
//! let back = codec::decode_message(&bytes)?;
//! assert_eq!(msg, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod delta;
mod error;
mod event;
mod id;
mod message;
mod state;
mod value;

pub use codec::SharedFrame;
pub use delta::{DeltaError, EditOp, NodeEdit, NodePatch, StateDelta};
pub use error::WireError;
pub use event::{EventKind, UiEvent};
pub use id::{GlobalObjectId, InstanceId, ObjectPath, UserId};
pub use message::{AccessRight, CopyMode, InstanceInfo, Message, Target};
pub use state::{AttrMap, StateNode};
pub use value::{AttrName, Value, WidgetKind};
