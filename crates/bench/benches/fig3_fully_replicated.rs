//! Figure 3 — the fully replicated architecture: private work stays
//! local; shared actions pay floor control and are re-executed by every
//! replica. Benches both the analytic model and the live protocol.

use cosoft_baselines::{
    mixed_workload, run_cosoft_live, run_fully_replicated, ActionKind, ArchConfig,
};
use cosoft_bench::report::fmt_us;
use cosoft_bench::report::print_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    // Cross-validate the analytic model against the live protocol.
    let mut rows = Vec::new();
    for &shared in &[0.0f64, 0.5, 1.0] {
        let w = mixed_workload(29, 4, 20, 25_000, 0.1, shared);
        let model = run_fully_replicated(&w, &ArchConfig::default());
        let live = run_cosoft_live(&w, 29, 2_000);
        rows.push(vec![
            format!("{:.0}%", shared * 100.0),
            fmt_us(model.mean_latency_us(Some(ActionKind::Ui))),
            fmt_us(live.mean_latency_us(Some(ActionKind::Ui))),
            model.bytes_sent.to_string(),
            live.bytes_sent.to_string(),
        ]);
    }
    print_table(
        "Figure 3: fully replicated — analytic model vs live protocol",
        &["shared actions", "model ui mean", "live ui mean", "model bytes", "live bytes"],
        &rows,
    );

    let mut group = c.benchmark_group("fig3_fully_replicated");
    for users in [4usize, 8] {
        let w = mixed_workload(29, users, 30, 25_000, 0.15, 0.3);
        group.bench_with_input(BenchmarkId::new("model", users), &w, |b, w| {
            b.iter(|| run_fully_replicated(std::hint::black_box(w), &ArchConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("live", users), &w, |b, w| {
            b.iter(|| run_cosoft_live(std::hint::black_box(w), 29, 2_000))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
