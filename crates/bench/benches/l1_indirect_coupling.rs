//! L1 — the §4 classroom lesson: "partial coupling can be very efficient
//! since it allows for indirect coupling ... for these dependent objects
//! direct coupling might be much more costly". Prints the
//! indirect-vs-direct byte series and benches the display regeneration.

use cosoft_apps::classroom::{regenerate_display, student_session};
use cosoft_bench::figures::{l1_rows, L1_HEADERS};
use cosoft_bench::report::print_table;
use cosoft_wire::UserId;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_table("L1: indirect vs direct coupling of dependent displays", &L1_HEADERS, &l1_rows());

    // The price of indirect coupling is local regeneration; show it is
    // cheap compared to shipping the curve.
    let mut session = student_session(UserId(1), "bench");
    c.bench_function("l1_display_regeneration", |b| {
        b.iter(|| regenerate_display(session.toolkit_mut().tree_mut(), "exercise"))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
