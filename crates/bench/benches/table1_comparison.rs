//! Table 1 — the comparison of application-independent synchronization
//! approaches: the same mixed workload over multiplex, UI-replicated,
//! fully replicated (model + live protocol) and timestamp ordering,
//! alongside the paper's qualitative flexibility dimensions.

use cosoft_baselines::{
    mixed_workload, run_fully_replicated, run_multiplex, run_timestamp, run_ui_replicated,
    ArchConfig,
};
use cosoft_bench::figures::{table1_rows, TABLE1_HEADERS};
use cosoft_bench::report::print_table;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_table(
        "Table 1: comparison of synchronization approaches",
        &TABLE1_HEADERS,
        &table1_rows(),
    );

    let w = mixed_workload(7, 8, 60, 25_000, 0.15, 0.3);
    let cfg = ArchConfig::default();
    let mut group = c.benchmark_group("table1_runners");
    group.bench_function("multiplex", |b| b.iter(|| run_multiplex(std::hint::black_box(&w), &cfg)));
    group.bench_function("ui_replicated", |b| {
        b.iter(|| run_ui_replicated(std::hint::black_box(&w), &cfg))
    });
    group.bench_function("fully_replicated", |b| {
        b.iter(|| run_fully_replicated(std::hint::black_box(&w), &cfg))
    });
    group.bench_function("timestamp", |b| {
        b.iter(|| run_timestamp(std::hint::black_box(&w), cfg.one_way_latency_us))
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
