//! Figure 4 — the COSOFT server-client architecture: coupling-layer costs
//! on the live protocol (couple/decouple, closure maintenance, event
//! broadcast, lock contention), plus micro-benchmarks of the server data
//! structures.

use cosoft_bench::figures::{fig4_rows, FIG4_HEADERS};
use cosoft_bench::report::print_table;
use cosoft_server::{CoupleDirectory, LockTable};
use cosoft_wire::{GlobalObjectId, InstanceId, ObjectPath};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn gid(i: u64, p: &str) -> GlobalObjectId {
    GlobalObjectId::new(InstanceId(i), ObjectPath::parse(p).expect("static"))
}

fn bench(c: &mut Criterion) {
    print_table("Figure 4: COSOFT coupling-layer costs (live)", &FIG4_HEADERS, &fig4_rows());

    // Transitive-closure maintenance on chains vs stars.
    let mut group = c.benchmark_group("fig4_closure");
    for n in [8u64, 64, 512] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let mut dir = CoupleDirectory::new();
            for i in 0..n - 1 {
                dir.couple(gid(i, "o"), gid(i + 1, "o"));
            }
            let probe = gid(0, "o");
            b.iter(|| dir.group_of(std::hint::black_box(&probe)))
        });
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
            let mut dir = CoupleDirectory::new();
            for i in 1..n {
                dir.couple(gid(0, "o"), gid(i, "o"));
            }
            let probe = gid(0, "o");
            b.iter(|| dir.group_of(std::hint::black_box(&probe)))
        });
    }
    group.finish();

    // Lock acquire/release over whole groups.
    let mut group = c.benchmark_group("fig4_locks");
    for n in [8u64, 64, 512] {
        let objects: Vec<GlobalObjectId> = (0..n).map(|i| gid(i, "o")).collect();
        group.bench_with_input(BenchmarkId::new("lock_unlock", n), &objects, |b, objs| {
            let mut locks = LockTable::new();
            b.iter(|| {
                locks.try_lock_group(std::hint::black_box(objs), 1).expect("free");
                locks.unlock_exec(1)
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
