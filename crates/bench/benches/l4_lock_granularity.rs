//! L4 — floor-control granularity (§3.2): "such a locking mechanism might
//! become costly if the events were fine-grained, such as cursor
//! movements or the typing of single characters. However, in our model,
//! most events are high-level callback events." Prints the
//! per-keystroke vs per-commit series and benches the lock table under
//! contention patterns.

use cosoft_bench::figures::{l4_rows, L4_HEADERS};
use cosoft_bench::report::print_table;
use cosoft_server::LockTable;
use cosoft_wire::{GlobalObjectId, InstanceId, ObjectPath};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    print_table("L4: per-commit vs per-keystroke floor control", &L4_HEADERS, &l4_rows());

    // Conflict-handling cost: every second attempt hits a held lock.
    let mut group = c.benchmark_group("l4_lock_contention");
    for n in [4u64, 32] {
        let group_objs: Vec<GlobalObjectId> = (0..n)
            .map(|i| GlobalObjectId::new(InstanceId(i), ObjectPath::parse("f.t").expect("ok")))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &group_objs, |b, objs| {
            let mut locks = LockTable::new();
            b.iter(|| {
                locks.try_lock_group(objs, 1).expect("free");
                // A competing round fails fast.
                let conflict = locks.try_lock_group(objs, 2);
                assert!(conflict.is_err());
                locks.unlock_exec(1)
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
