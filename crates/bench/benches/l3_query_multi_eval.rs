//! L3 — the §4 TORI lesson: multiple evaluation of coupled queries versus
//! evaluate-once-and-share. Prints the wire-byte crossover series and
//! benches the query engine (the CPU side of "the potentially costly
//! re-execution").

use std::sync::Arc;

use cosoft_bench::figures::{l3_rows, L3_HEADERS};
use cosoft_bench::report::print_table;
use cosoft_retrieval::{sample_literature_db, Predicate, Query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    print_table("L3: multiple evaluation vs evaluate-once-and-share", &L3_HEADERS, &l3_rows());

    let mut group = c.benchmark_group("l3_query_eval");
    for rows in [1_000usize, 10_000, 100_000] {
        let table = Arc::new(sample_literature_db(7, rows));
        let query = Query::new()
            .filter(Predicate::And(vec![
                Predicate::substring("author", "o"),
                Predicate::Range("year".into(), 1988, 1992),
            ]))
            .select(["author", "title"]);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &table, |b, table| {
            b.iter(|| query.run(std::hint::black_box(table)).expect("query runs"))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
