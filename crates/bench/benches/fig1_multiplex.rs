//! Figure 1 — the multiplex architecture: sequential dispatch through a
//! single application instance. Prints the paper-style scaling series,
//! then criterion-benches the runner itself.

use cosoft_baselines::{editing_workload, run_multiplex, ArchConfig};
use cosoft_bench::figures::{fig1_rows, FIG1_HEADERS};
use cosoft_bench::report::print_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    print_table("Figure 1: multiplex architecture vs population", &FIG1_HEADERS, &fig1_rows());

    let mut group = c.benchmark_group("fig1_multiplex_run");
    for users in [4usize, 16, 32] {
        let w = editing_workload(17, users, 50, 30_000, 0.1);
        let cfg = ArchConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(users), &w, |b, w| {
            b.iter(|| run_multiplex(std::hint::black_box(w), &cfg))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
