//! L2 — synchronization by state vs by action after a decoupled period
//! (§3.1: replaying recorded actions "is expensive, especially for long
//! periods of decoupling"). Prints the crossover series and benches the
//! snapshot machinery.

use cosoft_bench::figures::{l2_rows, synthetic_form, L2_HEADERS};
use cosoft_bench::report::print_table;
use cosoft_uikit::WidgetTree;
use cosoft_wire::WidgetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn tree_of(n: usize) -> (WidgetTree, cosoft_uikit::WidgetId) {
    let snap = synthetic_form(n, 1.0, 1);
    let mut tree = WidgetTree::new();
    let root = tree.create_root(WidgetKind::Form, "root").expect("fresh tree");
    cosoft_core::apply_destructive(
        &mut tree,
        root,
        &snap,
        &cosoft_core::CorrespondenceTable::new(),
    )
    .expect("merge into empty form");
    (tree, root)
}

fn bench(c: &mut Criterion) {
    print_table("L2: state copy vs action replay after decoupling", &L2_HEADERS, &l2_rows());

    let mut group = c.benchmark_group("l2_snapshot");
    for n in [10usize, 100, 1_000] {
        let (tree, root) = tree_of(n);
        group.bench_with_input(BenchmarkId::new("snapshot_relevant", n), &tree, |b, tree| {
            b.iter(|| tree.snapshot(std::hint::black_box(root), true).expect("snapshot"))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
