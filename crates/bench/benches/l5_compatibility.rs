//! L5 — the compatibility machinery of §3.3: s-compatibility checking,
//! destructive merging and flexible matching over nested complex objects.
//! The paper warns that "calculating [the mapping] over several levels of
//! nesting may be costly in practice"; the (kind, name) heuristics keep
//! it near-linear.

use cosoft_bench::figures::synthetic_form;
use cosoft_core::{apply_destructive, apply_flexible, check_s_compatible, CorrespondenceTable};
use cosoft_uikit::WidgetTree;
use cosoft_wire::WidgetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let corr = CorrespondenceTable::new();

    let mut group = c.benchmark_group("l5_s_compatibility");
    for n in [10usize, 100, 1_000] {
        let a = synthetic_form(n, 1.0, 1);
        let b_ = synthetic_form(n, 1.0, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_), |bench, (a, b_)| {
            bench.iter(|| {
                check_s_compatible(std::hint::black_box(a), b_, &corr).expect("compatible")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("l5_destructive_merge");
    for (n, frac) in [(100usize, 0.3f64), (100, 0.7), (1_000, 0.7)] {
        let snap = synthetic_form(n, frac, 1);
        let base = synthetic_form(n, frac, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}nodes_{frac}match")),
            &(snap, base),
            |bench, (snap, base)| {
                bench.iter_batched(
                    || {
                        let mut tree = WidgetTree::new();
                        let root = tree.create_root(WidgetKind::Form, "root").expect("fresh");
                        apply_destructive(&mut tree, root, base, &corr).expect("seed");
                        (tree, root)
                    },
                    |(mut tree, root)| {
                        apply_destructive(&mut tree, root, std::hint::black_box(snap), &corr)
                            .expect("merge")
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("l5_flexible_match");
    for frac in [0.3f64, 0.7, 1.0] {
        let snap = synthetic_form(200, frac, 1);
        let base = synthetic_form(200, frac, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{frac}match")),
            &(snap, base),
            |bench, (snap, base)| {
                bench.iter_batched(
                    || {
                        let mut tree = WidgetTree::new();
                        let root = tree.create_root(WidgetKind::Form, "root").expect("fresh");
                        apply_destructive(&mut tree, root, base, &corr).expect("seed");
                        (tree, root)
                    },
                    |(mut tree, root)| {
                        apply_flexible(&mut tree, root, std::hint::black_box(snap), &corr)
                            .expect("match")
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
