//! Figure 2 — the UI-replicated architecture: the central semantic
//! component serializes all semantic actions; a time-consuming one blocks
//! everyone. Prints the blocking sweep, then benches the runner.

use cosoft_baselines::{mixed_workload, run_ui_replicated, ArchConfig};
use cosoft_bench::figures::{fig23_rows, FIG23_HEADERS};
use cosoft_bench::report::print_table;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    print_table(
        "Figure 2/3: semantic-action blocking (UI-replicated vs fully replicated)",
        &FIG23_HEADERS,
        &fig23_rows(),
    );

    let mut group = c.benchmark_group("fig2_ui_replicated_run");
    for semantic_ms in [1u64, 20, 100] {
        let cfg = ArchConfig { semantic_service_us: semantic_ms * 1_000, ..ArchConfig::default() };
        let w = mixed_workload(23, 8, 50, 25_000, 0.2, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(semantic_ms), &w, |b, w| {
            b.iter(|| run_ui_replicated(std::hint::black_box(w), &cfg))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
