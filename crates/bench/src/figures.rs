//! Series computations regenerating every figure and table of the paper
//! (see DESIGN.md §3 for the experiment index). Each function returns the
//! printable rows; the bench targets and the `table1`/`figures` binaries
//! share these.

use std::sync::Arc;

use cosoft_apps::classroom;
use cosoft_baselines::{
    editing_workload, mixed_workload, run_cosoft_live, run_fully_replicated, run_multiplex,
    run_timestamp, run_ui_replicated, ActionKind, ArchConfig, RunStats,
};
use cosoft_core::harness::SimHarness;
use cosoft_core::session::Session;
use cosoft_retrieval::{sample_literature_db, Predicate, Query};
use cosoft_uikit::{spec, Toolkit};
use cosoft_wire::{AttrName, CopyMode, EventKind, ObjectPath, UiEvent, UserId, Value};

use crate::report::fmt_us;

fn cfg() -> ArchConfig {
    ArchConfig::default()
}

// ---------------------------------------------------------------------------
// Figure 1 — multiplex architecture scaling
// ---------------------------------------------------------------------------

/// Figure 1 series: multiplex architecture under growing population.
/// Claim: sequential dispatch through the single instance makes latency
/// grow with user count; every interaction pays a round trip.
pub fn fig1_rows() -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for users in [2usize, 4, 8, 16, 32] {
        let w = editing_workload(17, users, 50, 30_000, 0.1);
        let stats = run_multiplex(&w, &cfg());
        rows.push(vec![
            users.to_string(),
            fmt_us(stats.mean_latency_us(Some(ActionKind::Ui))),
            fmt_us(stats.percentile_latency_us(Some(ActionKind::Ui), 0.99) as f64),
            format!("{:.0}", stats.bytes_per_action()),
        ]);
    }
    rows
}

/// Column headers for [`fig1_rows`].
pub const FIG1_HEADERS: [&str; 4] = ["users", "ui mean", "ui p99", "bytes/action"];

// ---------------------------------------------------------------------------
// Figures 2 & 3 — semantic-action blocking across architectures
// ---------------------------------------------------------------------------

/// Figure 2/3 series: sweep the semantic-action service time and report
/// how each architecture's latencies respond. Claim: the UI-replicated
/// centre serializes all semantic actions (they queue); full replication
/// keeps private work local and unblocked.
pub fn fig23_rows() -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for semantic_ms in [0u64, 1, 5, 20, 100] {
        let mut config = cfg();
        config.semantic_service_us = semantic_ms * 1_000;
        // 8 users, mostly private work, 20 % semantic actions.
        let w = mixed_workload(23, 8, 50, 25_000, 0.2, 0.2);
        let ui_rep = run_ui_replicated(&w, &config);
        let full = run_fully_replicated(&w, &config);
        rows.push(vec![
            format!("{semantic_ms} ms"),
            fmt_us(ui_rep.mean_latency_us(Some(ActionKind::Semantic))),
            fmt_us(ui_rep.percentile_latency_us(Some(ActionKind::Semantic), 0.99) as f64),
            fmt_us(full.mean_latency_us(Some(ActionKind::Semantic))),
            fmt_us(full.percentile_latency_us(Some(ActionKind::Semantic), 0.99) as f64),
        ]);
    }
    rows
}

/// Column headers for [`fig23_rows`].
pub const FIG23_HEADERS: [&str; 5] =
    ["semantic svc", "ui-repl mean", "ui-repl p99", "full-repl mean", "full-repl p99"];

// ---------------------------------------------------------------------------
// Figure 4 — COSOFT coupling mechanics (live protocol)
// ---------------------------------------------------------------------------

/// One Figure-4 measurement for a coupling group of `n` instances.
#[derive(Debug, Clone)]
pub struct CouplingCosts {
    /// Group size.
    pub group: usize,
    /// Virtual time to create the full couple chain (µs).
    pub couple_us: u64,
    /// Virtual time for one event round (grant → execute → unlock) (µs).
    pub event_round_us: u64,
    /// Protocol bytes for that round.
    pub event_bytes: u64,
    /// Rejections when every member fires simultaneously.
    pub simultaneous_rejects: u64,
}

/// Measures coupling-layer costs on the live protocol.
pub fn fig4_measure(n: usize, latency_us: u64) -> CouplingCosts {
    let spec_src = r#"form f { textfield t text="" }"#;
    let path = ObjectPath::parse("f.t").expect("static");
    let mut h = SimHarness::with_latency(31, latency_us);
    let nodes: Vec<_> = (0..n)
        .map(|u| {
            h.add_session(Session::new(
                Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
                UserId(u as u64 + 1),
                "h",
                "bench",
            ))
        })
        .collect();
    h.settle();

    let t0 = h.net.now_us();
    for w in nodes.windows(2) {
        let dst = h.session(w[1]).gid(&path).expect("registered");
        h.session_mut(w[0]).couple(&path, dst).expect("registered");
        h.settle();
    }
    let couple_us = h.net.now_us() - t0;

    h.net.reset_stats();
    let t0 = h.net.now_us();
    h.session_mut(nodes[0])
        .user_event(UiEvent::new(
            path.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("x".into())],
        ))
        .expect("valid");
    h.settle();
    let event_round_us = h.net.now_us() - t0;
    let event_bytes = h.net.stats().bytes_sent;

    // Contention probe: everyone fires in the same instant.
    let before = h.server.rejected_events();
    for (i, &node) in nodes.iter().enumerate() {
        let _ = h.session_mut(node).user_event(UiEvent::new(
            path.clone(),
            EventKind::TextCommitted,
            vec![Value::Text(format!("c{i}"))],
        ));
    }
    h.settle();
    let simultaneous_rejects = h.server.rejected_events() - before;

    CouplingCosts { group: n, couple_us, event_round_us, event_bytes, simultaneous_rejects }
}

/// Figure 4 series over group sizes.
pub fn fig4_rows() -> Vec<Vec<String>> {
    [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&n| {
            let c = fig4_measure(n, 2_000);
            vec![
                n.to_string(),
                fmt_us(c.couple_us as f64),
                fmt_us(c.event_round_us as f64),
                c.event_bytes.to_string(),
                c.simultaneous_rejects.to_string(),
            ]
        })
        .collect()
}

/// Column headers for [`fig4_rows`].
pub const FIG4_HEADERS: [&str; 5] =
    ["group", "couple chain", "event round", "bytes/round", "rejects (all fire)"];

// ---------------------------------------------------------------------------
// Table 1 — comparison of synchronization approaches
// ---------------------------------------------------------------------------

/// Table 1 rows: the same mixed workload over every architecture, plus the
/// paper's qualitative flexibility dimensions.
pub fn table1_rows() -> Vec<Vec<String>> {
    let w = mixed_workload(7, 8, 60, 25_000, 0.15, 0.3);
    let config = cfg();
    let m = run_multiplex(&w, &config);
    let u = run_ui_replicated(&w, &config);
    let f = run_fully_replicated(&w, &config);
    let live = run_cosoft_live(&mixed_workload(7, 4, 20, 25_000, 0.15, 0.3), 7, 2_000);
    let ts = run_timestamp(&w, config.one_way_latency_us);

    let quant = |name: &str, s: &RunStats, partial, hetero, dynamic| -> Vec<String> {
        vec![
            name.to_owned(),
            fmt_us(s.mean_latency_us(Some(ActionKind::Ui))),
            fmt_us(s.percentile_latency_us(Some(ActionKind::Ui), 0.99) as f64),
            fmt_us(s.mean_latency_us(Some(ActionKind::Semantic))),
            format!("{:.0}", s.bytes_per_action()),
            partial,
            hetero,
            dynamic,
        ]
        .into_iter()
        .map(|c: String| c)
        .collect()
    };
    vec![
        quant("multiplex (Fig 1)", &m, "no".into(), "no".into(), "no".into()),
        quant("UI-replicated (Fig 2)", &u, "partly".into(), "no".into(), "static".into()),
        quant(
            "fully replicated / COSOFT (Fig 3/4)",
            &f,
            "yes".into(),
            "yes".into(),
            "dynamic".into(),
        ),
        quant(
            "COSOFT live protocol (4 users)",
            &live,
            "yes".into(),
            "yes".into(),
            "dynamic".into(),
        ),
        {
            let mut row = quant(
                "timestamp ordering (GROVE-like)",
                &ts.run,
                "yes".into(),
                "no".into(),
                "static".into(),
            );
            row[0] = format!("timestamp ordering ({} rollbacks)", ts.rollbacks);
            row
        },
    ]
}

/// Column headers for [`table1_rows`].
pub const TABLE1_HEADERS: [&str; 8] = [
    "approach",
    "ui mean",
    "ui p99",
    "sem mean",
    "bytes/action",
    "partial?",
    "heterogeneous?",
    "population",
];

// ---------------------------------------------------------------------------
// L1 — indirect coupling (classroom lesson)
// ---------------------------------------------------------------------------

/// One L1 measurement: bytes to synchronize a parameter change when only
/// the parameters are coupled (display regenerates locally) versus when
/// the dependent display's content is shipped.
pub fn l1_measure(display_points: usize) -> (u64, u64) {
    // Indirect: the real classroom — parameters coupled, curve local.
    let mut h = SimHarness::with_latency(41, 2_000);
    let t = h.add_session(classroom::teacher_session(UserId(1)));
    let s = h.add_session(classroom::student_session(UserId(2), "x"));
    h.settle();
    let ti = h.instance_of(t).expect("registered");
    let si = h.instance_of(s).expect("registered");
    classroom::join_student(h.session_mut(t), ti, si);
    h.settle();
    h.net.reset_stats();
    h.session_mut(s)
        .user_event(classroom::set_param_event("exercise", "amplitude", 2.5))
        .expect("valid");
    h.settle();
    let indirect = h.net.stats().bytes_sent;

    // Direct: couple a display-like widget and ship the regenerated curve
    // as an event payload of `display_points` integers.
    let spec_src = r#"form f { textfield t text="" }"#;
    let path = ObjectPath::parse("f.t").expect("static");
    let mut h = SimHarness::with_latency(41, 2_000);
    let a = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
        UserId(1),
        "h",
        "bench",
    ));
    let b = h.add_session(Session::new(
        Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
        UserId(2),
        "h",
        "bench",
    ));
    h.settle();
    let dst = h.session(b).gid(&path).expect("registered");
    h.session_mut(a).couple(&path, dst).expect("registered");
    h.settle();
    h.net.reset_stats();
    let curve: Vec<i64> = (0..display_points as i64).collect();
    h.session_mut(a)
        .user_event(UiEvent::new(
            path,
            EventKind::Custom("display-update".into()),
            vec![Value::IntList(curve)],
        ))
        .expect("valid");
    h.settle();
    let direct = h.net.stats().bytes_sent;
    (indirect, direct)
}

/// L1 series over display sizes.
pub fn l1_rows() -> Vec<Vec<String>> {
    [64usize, 256, 1_024, 4_096, 16_384]
        .iter()
        .map(|&d| {
            let (indirect, direct) = l1_measure(d);
            vec![
                d.to_string(),
                indirect.to_string(),
                direct.to_string(),
                format!("{:.1}x", direct as f64 / indirect as f64),
            ]
        })
        .collect()
}

/// Column headers for [`l1_rows`].
pub const L1_HEADERS: [&str; 4] =
    ["display points", "indirect bytes", "direct bytes", "direct/indirect"];

// ---------------------------------------------------------------------------
// L2 — synchronization by state vs by action
// ---------------------------------------------------------------------------

/// One L2 measurement: after `actions` edits in a decoupled period, bytes
/// and virtual time to re-synchronize by replaying the actions versus one
/// state copy.
pub fn l2_measure(actions: usize, text_len: usize) -> (u64, u64, u64, u64) {
    let spec_src = r#"form f { textfield t text="" }"#;
    let path = ObjectPath::parse("f.t").expect("static");
    let make = |u| {
        Session::new(
            Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
            UserId(u),
            "h",
            "bench",
        )
    };
    let run = |by_state: bool| -> (u64, u64) {
        let mut h = SimHarness::with_latency(43, 2_000);
        let a = h.add_session(make(1));
        let b = h.add_session(make(2));
        h.settle();
        // a works decoupled.
        let edits: Vec<UiEvent> = (0..actions)
            .map(|k| {
                UiEvent::new(
                    path.clone(),
                    EventKind::TextCommitted,
                    vec![Value::Text(format!("{k}-{}", "x".repeat(text_len)))],
                )
            })
            .collect();
        for e in &edits {
            h.session_mut(a).user_event(e.clone()).expect("valid");
        }
        h.settle();
        h.net.reset_stats();
        let t0 = h.net.now_us();
        let dst = h.session(b).gid(&path).expect("registered");
        if by_state {
            // One snapshot transfer.
            h.session_mut(a).copy_to(&path, dst, CopyMode::Strict).expect("registered");
            h.settle();
        } else {
            // Replay every recorded action through a couple link.
            h.session_mut(a).couple(&path, dst).expect("registered");
            h.settle();
            for e in &edits {
                h.session_mut(a).user_event(e.clone()).expect("valid");
                h.settle();
            }
        }
        (h.net.stats().bytes_sent, h.net.now_us() - t0)
    };
    let (state_bytes, state_us) = run(true);
    let (action_bytes, action_us) = run(false);
    (state_bytes, state_us, action_bytes, action_us)
}

/// L2 series over decoupled-period lengths.
pub fn l2_rows() -> Vec<Vec<String>> {
    [1usize, 10, 100, 1_000]
        .iter()
        .map(|&a| {
            let (sb, st, ab, at) = l2_measure(a, 16);
            vec![
                a.to_string(),
                sb.to_string(),
                fmt_us(st as f64),
                ab.to_string(),
                fmt_us(at as f64),
                format!("{:.1}x", ab as f64 / sb as f64),
            ]
        })
        .collect()
}

/// Column headers for [`l2_rows`].
pub const L2_HEADERS: [&str; 6] = [
    "actions while decoupled",
    "state bytes",
    "state time",
    "replay bytes",
    "replay time",
    "replay/state bytes",
];

// ---------------------------------------------------------------------------
// L3 — multiple evaluation of queries vs evaluate-once-and-share
// ---------------------------------------------------------------------------

/// One L3 measurement: bytes on the wire to synchronize a query's results
/// among `k` instances via multiple evaluation (broadcast the invocation,
/// everyone evaluates locally) versus evaluate-once-and-share (ship the
/// result rows).
pub fn l3_measure(k: usize, rows: usize) -> (u64, u64, usize) {
    let table = Arc::new(sample_literature_db(7, rows * 3));
    let result = Query::new()
        .filter(Predicate::Range("year".into(), 1985, 1994))
        .limit(rows)
        .run(&table)
        .expect("query runs");
    let result_lines = result.to_lines();
    let result_bytes: usize = result_lines.iter().map(|l| l.len() + 8).sum();

    // Multiple evaluation: the Activate event broadcast through the
    // coupled forms; every instance evaluates locally.
    let mut h = SimHarness::with_latency(47, 2_000);
    let nodes: Vec<_> = (0..k)
        .map(|u| {
            h.add_session(cosoft_apps::tori::tori_session(UserId(u as u64 + 1), table.clone()))
        })
        .collect();
    h.settle();
    let root = ObjectPath::parse("tori").expect("static");
    for w in nodes.windows(2) {
        let dst = h.session(w[1]).gid(&root).expect("registered");
        h.session_mut(w[0]).couple(&root, dst).expect("registered");
        h.settle();
    }
    h.net.reset_stats();
    h.session_mut(nodes[0]).user_event(cosoft_apps::tori::events::invoke()).expect("valid");
    h.settle();
    let multi_bytes = h.net.stats().bytes_sent;

    // Evaluate-once-and-share: one evaluation, results shipped to k-1
    // peers (modelled as the encoded result payload per peer plus the
    // same floor-control overhead the invocation itself costs).
    let share_bytes = multi_bytes + (result_bytes * (k - 1)) as u64;
    (multi_bytes, share_bytes, result_lines.len())
}

/// L3 series over instance counts and result sizes.
pub fn l3_rows() -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for &k in &[2usize, 4, 8, 16] {
        for &rows in &[10usize, 100, 1_000] {
            let (multi, share, actual) = l3_measure(k, rows);
            out.push(vec![
                k.to_string(),
                actual.to_string(),
                multi.to_string(),
                share.to_string(),
                if multi < share { "multi-eval".into() } else { "share".into() },
            ]);
        }
    }
    out
}

/// Column headers for [`l3_rows`].
pub const L3_HEADERS: [&str; 5] =
    ["instances", "result rows", "multi-eval bytes", "share bytes", "cheaper"];

// ---------------------------------------------------------------------------
// L4 — floor-control granularity
// ---------------------------------------------------------------------------

/// One L4 measurement: typing an `n`-character word into a coupled field
/// with per-keystroke events versus one commit event.
pub fn l4_measure(n: usize) -> (u64, u64, u64, u64) {
    let spec_src = r#"form f { textfield t text="" }"#;
    let path = ObjectPath::parse("f.t").expect("static");
    let make = |u| {
        Session::new(
            Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
            UserId(u),
            "h",
            "bench",
        )
    };
    let run = |fine: bool| -> (u64, u64) {
        let mut h = SimHarness::with_latency(53, 2_000);
        let a = h.add_session(make(1));
        let b = h.add_session(make(2));
        h.settle();
        let dst = h.session(b).gid(&path).expect("registered");
        h.session_mut(a).couple(&path, dst).expect("registered");
        h.settle();
        h.net.reset_stats();
        let t0 = h.net.now_us();
        if fine {
            for i in 0..n {
                h.session_mut(a)
                    .user_event(UiEvent::new(
                        path.clone(),
                        EventKind::TextEdited,
                        vec![Value::Int(i as i64), Value::Text("x".into())],
                    ))
                    .expect("valid");
                h.settle();
            }
        } else {
            h.session_mut(a)
                .user_event(UiEvent::new(
                    path.clone(),
                    EventKind::TextCommitted,
                    vec![Value::Text("x".repeat(n))],
                ))
                .expect("valid");
            h.settle();
        }
        (h.net.stats().bytes_sent, h.net.now_us() - t0)
    };
    let (commit_bytes, commit_us) = run(false);
    let (keystroke_bytes, keystroke_us) = run(true);
    (commit_bytes, commit_us, keystroke_bytes, keystroke_us)
}

/// L4 series over word lengths.
pub fn l4_rows() -> Vec<Vec<String>> {
    [8usize, 32, 128]
        .iter()
        .map(|&n| {
            let (cb, ct, kb, kt) = l4_measure(n);
            vec![
                n.to_string(),
                cb.to_string(),
                fmt_us(ct as f64),
                kb.to_string(),
                fmt_us(kt as f64),
                format!("{:.0}x", kt as f64 / ct.max(1) as f64),
            ]
        })
        .collect()
}

/// Column headers for [`l4_rows`].
pub const L4_HEADERS: [&str; 6] =
    ["chars", "commit bytes", "commit time", "keystroke bytes", "keystroke time", "time ratio"];

// ---------------------------------------------------------------------------
// Observability — server-core and transport counters
// ---------------------------------------------------------------------------

/// Column headers for [`server_stats_rows`] and [`transport_stats_rows`].
pub const STATS_HEADERS: [&str; 2] = ["counter", "value"];

/// Runs a mixed coupling workload (couple chain, contended events, one
/// state copy) on the simulated network and reports the server core's
/// observability counters.
pub fn server_stats_rows() -> Vec<Vec<String>> {
    let spec_src = r#"form f { textfield t text="" }"#;
    let path = ObjectPath::parse("f.t").expect("static");
    let mut h = SimHarness::with_latency(61, 2_000);
    // Grace configured up front so registrations mint resume tokens; the
    // liveness episode at the end exercises quarantine + resume.
    h.server.set_liveness(cosoft_server::LivenessConfig {
        grace_us: 1_000_000,
        idle_timeout_us: 0,
        max_quarantined: 0,
    });
    let nodes: Vec<_> = (0..8)
        .map(|u| {
            h.add_session(Session::new(
                Toolkit::from_tree(spec::build_tree(spec_src).expect("static")),
                UserId(u as u64 + 1),
                "h",
                "bench",
            ))
        })
        .collect();
    h.settle();
    for w in nodes.windows(2) {
        let dst = h.session(w[1]).gid(&path).expect("registered");
        h.session_mut(w[0]).couple(&path, dst).expect("registered");
        h.settle();
    }
    // One clean event round, then a contended round where every member
    // of the group fires simultaneously.
    h.session_mut(nodes[0])
        .user_event(UiEvent::new(
            path.clone(),
            EventKind::TextCommitted,
            vec![Value::Text("x".into())],
        ))
        .expect("valid");
    h.settle();
    for (i, &node) in nodes.iter().enumerate() {
        let _ = h.session_mut(node).user_event(UiEvent::new(
            path.clone(),
            EventKind::TextCommitted,
            vec![Value::Text(format!("c{i}"))],
        ));
    }
    h.settle();
    // One state transfer so the transfer counters move.
    let dst = h.session(nodes[1]).gid(&path).expect("registered");
    h.session_mut(nodes[0]).copy_to(&path, dst, CopyMode::Strict).expect("registered");
    h.settle();
    // A liveness episode so the probe/quarantine/resume counters move:
    // one ping, one silent drop, one rejoin within the grace period.
    h.session_mut(nodes[0]).ping();
    h.settle();
    h.disconnect(nodes[7]);
    h.settle();
    h.reconnect(nodes[7]);
    h.settle();

    let s = h.server.stats();
    vec![
        vec!["events granted".into(), s.events_granted.to_string()],
        vec!["events rejected".into(), s.events_rejected.to_string()],
        vec!["lock conflicts".into(), s.lock_conflicts.to_string()],
        vec!["permission denials".into(), s.permission_denials.to_string()],
        vec!["messages out".into(), s.messages_out.to_string()],
        vec!["max fan-out".into(), s.max_fanout.to_string()],
        vec!["transfers started".into(), s.transfers_started.to_string()],
        vec!["transfers completed".into(), s.transfers_completed.to_string()],
        vec!["transfers failed".into(), s.transfers_failed.to_string()],
        vec!["registered instances".into(), s.registered_instances.to_string()],
        vec!["live transfer groups".into(), s.live_transfer_groups.to_string()],
        vec!["held locks".into(), s.held_locks.to_string()],
        vec!["pings answered".into(), s.pings.to_string()],
        vec!["quarantines".into(), s.quarantines.to_string()],
        vec!["resumes".into(), s.resumes.to_string()],
        vec!["rejoins rejected".into(), s.rejoins_rejected.to_string()],
        vec!["quarantine expiries".into(), s.quarantine_expiries.to_string()],
        vec!["quarantined instances".into(), s.quarantined_instances.to_string()],
    ]
}

/// Runs a short live round over real loopback TCP (register four
/// clients, broadcast a batch of commands) and reports the transport's
/// counters — per-connection writer queues, coalesced writes, and the
/// slow-consumer policy are all visible here.
pub fn transport_stats_rows() -> Vec<Vec<String>> {
    use cosoft_net::{ConnId, NetEvent, TcpClient, TcpHost};
    use cosoft_server::ServerCore;
    use cosoft_wire::{Message, Target};
    use std::time::Duration;

    let host = TcpHost::bind("127.0.0.1:0").expect("bind");
    let stats = host.stats_handle();
    let mut core: ServerCore<ConnId> = ServerCore::new();
    let clients: Vec<TcpClient> =
        (0..4).map(|_| TcpClient::connect(host.local_addr()).expect("connect")).collect();
    for (i, c) in clients.iter().enumerate() {
        c.send(&Message::Register {
            user: UserId(i as u64 + 1),
            host: "bench".into(),
            app_name: "fig".into(),
        })
        .expect("register");
    }
    // Each connection has its own reader thread, so registrations race
    // frames sent later on other connections; handle all four before
    // broadcasting, or early broadcasts fan out to a partial roster.
    while core.stats().registered_instances < clients.len() {
        let event = host.events().recv_timeout(Duration::from_secs(5)).expect("registration");
        let outgoing = match event {
            NetEvent::Connected(_) => cosoft_server::Outgoing::new(),
            NetEvent::Message(conn, msg) => core.handle(conn, msg),
            NetEvent::Disconnected(conn) => core.disconnect(conn),
        };
        let _ = host.send_batch(&outgoing.into_frames());
    }
    for round in 0..32u32 {
        clients[0]
            .send(&Message::CoSendCommand {
                to: Target::Broadcast,
                command: format!("round-{round}"),
                payload: vec![0u8; 4 * 1024],
            })
            .expect("broadcast");
    }
    // Drain the dispatch loop until the wire goes quiet.
    while let Ok(event) = host.events().recv_timeout(Duration::from_millis(200)) {
        let outgoing = match event {
            NetEvent::Connected(_) => cosoft_server::Outgoing::new(),
            NetEvent::Message(conn, msg) => core.handle(conn, msg),
            NetEvent::Disconnected(conn) => core.disconnect(conn),
        };
        let _ = host.send_batch(&outgoing.into_frames());
    }

    let t = stats.snapshot();
    vec![
        vec!["frames out".into(), t.frames_out.to_string()],
        vec!["bytes out".into(), t.bytes_out.to_string()],
        vec!["frames in".into(), t.frames_in.to_string()],
        vec!["bytes in".into(), t.bytes_in.to_string()],
        vec!["coalesced writes".into(), t.coalesced_writes.to_string()],
        vec!["enqueue-full waits".into(), t.enqueue_full_waits.to_string()],
        vec!["slow-consumer evictions".into(), t.slow_consumer_evictions.to_string()],
        vec!["frames dropped".into(), t.frames_dropped.to_string()],
        vec!["active connections".into(), t.active_connections.to_string()],
        vec!["max queue depth".into(), t.max_queue_depth.to_string()],
    ]
}

// ---------------------------------------------------------------------------
// shared helpers for L5 / micro benches
// ---------------------------------------------------------------------------

/// Builds a synthetic complex-object snapshot of roughly `n` nodes for the
/// compatibility benchmarks, with a fraction of names shared between
/// repeated generations (`variant` changes the differing part).
pub fn synthetic_form(n: usize, match_fraction: f64, variant: u64) -> cosoft_wire::StateNode {
    use cosoft_wire::{StateNode, WidgetKind};
    let mut root = StateNode::new(WidgetKind::Form, "root");
    let shared = (n as f64 * match_fraction) as usize;
    let kinds = [
        WidgetKind::TextField,
        WidgetKind::Menu,
        WidgetKind::Slider,
        WidgetKind::Label,
        WidgetKind::ToggleButton,
    ];
    let mut current_panel = StateNode::new(WidgetKind::Panel, "panel0");
    for i in 0..n {
        let kind = kinds[i % kinds.len()].clone();
        let name = if i < shared { format!("shared{i}") } else { format!("v{variant}_{i}") };
        let child =
            StateNode::new(kind, &name).with_attr(AttrName::custom("idx"), Value::Int(i as i64));
        current_panel.children.push(child);
        if current_panel.children.len() == 8 {
            root.children.push(current_panel);
            current_panel = StateNode::new(WidgetKind::Panel, &format!("panel{}", i / 8 + 1));
        }
    }
    if !current_panel.children.is_empty() {
        root.children.push(current_panel);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_latency_grows_with_users() {
        let rows = fig1_rows();
        assert_eq!(rows.len(), 5);
        // The mean latency column is monotone non-decreasing in spirit:
        // compare first and last numerically via the raw runner instead.
        let small = run_multiplex(&editing_workload(17, 2, 50, 30_000, 0.1), &cfg());
        let big = run_multiplex(&editing_workload(17, 32, 50, 30_000, 0.1), &cfg());
        assert!(
            big.mean_latency_us(Some(ActionKind::Ui)) > small.mean_latency_us(Some(ActionKind::Ui))
        );
    }

    #[test]
    fn fig23_blocking_grows_only_for_ui_replicated() {
        let sweep = |semantic_us: u64| {
            let mut config = cfg();
            config.semantic_service_us = semantic_us;
            let w = mixed_workload(23, 8, 50, 25_000, 0.2, 0.2);
            (
                run_ui_replicated(&w, &config).mean_latency_us(Some(ActionKind::Semantic)),
                run_fully_replicated(&w, &config).mean_latency_us(Some(ActionKind::Semantic)),
            )
        };
        let (u_small, f_small) = sweep(1_000);
        let (u_big, f_big) = sweep(100_000);
        // Both grow with service time, but the central queue amplifies it.
        let u_growth = u_big / u_small.max(1.0);
        let f_growth = f_big / f_small.max(1.0);
        assert!(u_growth > f_growth, "central queue amplifies blocking: {u_growth} vs {f_growth}");
    }

    #[test]
    fn fig4_costs_scale_with_group() {
        let small = fig4_measure(2, 2_000);
        let large = fig4_measure(16, 2_000);
        assert!(large.event_bytes > small.event_bytes);
        assert!(large.couple_us > small.couple_us);
        // Exactly one contender wins the simultaneous round.
        assert_eq!(small.simultaneous_rejects, 1);
        assert_eq!(large.simultaneous_rejects, 15);
    }

    #[test]
    fn l1_direct_coupling_costs_grow_with_display() {
        let (i_small, d_small) = l1_measure(64);
        let (i_big, d_big) = l1_measure(16_384);
        assert_eq!(i_small, i_big, "indirect cost independent of display size");
        assert!(d_big > d_small, "direct cost grows with display size");
        assert!(d_big > 10 * i_big, "indirect coupling wins big at 16k points");
    }

    #[test]
    fn l2_state_copy_wins_for_long_periods() {
        let (sb, _, ab, _) = l2_measure(100, 16);
        assert!(ab > sb, "replaying 100 actions outweighs one state copy");
        let (sb1, _, ab1, _) = l2_measure(1, 16);
        assert!(sb1 > 0 && ab1 > 0);
        // For a single action the replay is competitive (within ~4x),
        // matching the paper's "expensive, especially for long periods".
        assert!((ab1 as f64) < 4.0 * sb1 as f64);
    }

    #[test]
    fn l3_share_wins_for_large_results_many_instances() {
        let (multi, share, _) = l3_measure(16, 1_000);
        assert!(multi < share, "multi-eval avoids shipping big results");
        // The crossover claim is about *wire bytes*: multiple evaluation's
        // traffic is independent of result size.
        let (multi_small, _, _) = l3_measure(16, 10);
        let diff = multi.abs_diff(multi_small);
        assert!(diff < multi_small / 2, "multi-eval bytes ~independent of result size");
    }

    #[test]
    fn l4_keystroke_granularity_is_costly() {
        let (cb, ct, kb, kt) = l4_measure(32);
        assert!(kb > 10 * cb, "per-keystroke bytes explode");
        assert!(kt > 10 * ct, "per-keystroke rounds serialize");
    }

    #[test]
    fn synthetic_forms_are_compatible_when_fully_matched() {
        use cosoft_core::compat::{check_s_compatible, CorrespondenceTable};
        let a = synthetic_form(50, 1.0, 1);
        let b = synthetic_form(50, 1.0, 2);
        check_s_compatible(&a, &b, &CorrespondenceTable::new()).expect("same shape");
        let c = synthetic_form(53, 1.0, 3);
        assert!(check_s_compatible(&a, &c, &CorrespondenceTable::new()).is_err());
    }

    #[test]
    fn server_stats_rows_report_real_activity() {
        let rows = server_stats_rows();
        let get = |name: &str| -> u64 {
            rows.iter().find(|r| r[0] == name).expect("counter row")[1].parse().unwrap()
        };
        assert!(get("events granted") >= 2, "clean round + contention winner");
        assert_eq!(get("events rejected"), 7, "seven losers in the contended round");
        assert_eq!(get("transfers completed"), 2, "explicit CopyTo + rejoin resync CopyFrom");
        assert_eq!(get("registered instances"), 8);
        assert_eq!(get("live transfer groups"), 0);
        assert_eq!(get("held locks"), 0, "every round released its locks");
        assert!(get("max fan-out") >= 7, "a granted event fans out to the whole chain");
        assert_eq!(get("pings answered"), 1);
        assert_eq!(get("quarantines"), 1, "the dropped instance was quarantined");
        assert_eq!(get("resumes"), 1, "and resumed within the grace period");
        assert_eq!(get("quarantined instances"), 0, "nobody left in quarantine");
    }

    #[test]
    fn transport_stats_rows_report_real_traffic() {
        let rows = transport_stats_rows();
        let get = |name: &str| -> u64 {
            rows.iter().find(|r| r[0] == name).expect("counter row")[1].parse().unwrap()
        };
        // 4 registrations + 32 broadcasts in; Welcomes + deliveries out.
        assert_eq!(get("frames in"), 36);
        assert!(get("frames out") >= 4 + 32 * 3, "welcomes plus broadcast fan-out");
        assert!(get("bytes out") > 32 * 3 * 4096, "payload bytes actually left");
        assert_eq!(get("slow-consumer evictions"), 0, "all consumers were healthy");
        assert_eq!(get("active connections"), 4);
    }

    #[test]
    fn table1_has_expected_shape() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.len(), TABLE1_HEADERS.len());
        }
    }
}
