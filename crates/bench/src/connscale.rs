//! Connection-scaling benchmark: delivery throughput and client-observed
//! latency of the readiness-driven TCP host as the connection count grows.
//!
//! The whole point of the poll-pool transport is that connections add
//! *state*, not *threads*: a fixed 2-thread I/O pool must carry 100,
//! 1 000, and 5 000 concurrent sockets. Each series connects `conns` raw
//! `std::net::TcpStream` clients (no `TcpClient` — that would add two OS
//! threads per client and measure the clients, not the host), registers
//! them, chain-couples them into groups of [`GROUP_SIZE`], then drives
//! `rounds` of group fan-out: the leader CoSends a payload whose first 8
//! bytes are a send-time microsecond stamp, and every follower records
//! `receive_time − send_time` when the delivery arrives.
//!
//! The latency column is therefore *enqueue-to-wire as observed at the
//! receiving socket*: it includes server dispatch and the follower's
//! read, so it upper-bounds the pure outbox-to-syscall interval. What
//! the series demonstrate is the shape: the p99 must stay bounded as the
//! connection count grows 50×, while the I/O thread count stays fixed.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cosoft::net::TcpHostConfig;
use cosoft::runtime::TcpServer;
use cosoft::wire::{codec, GlobalObjectId, InstanceId, Message, ObjectPath, Target, UserId};

/// Connection counts every run reports, smallest to largest.
pub const CONN_COUNTS: [usize; 3] = [100, 1000, 5000];

/// Members per couple group (one leader + three followers).
pub const GROUP_SIZE: usize = 4;

/// Poll threads the host runs in every series — fixed on purpose; the
/// series vary only the connection count.
pub const IO_THREADS: usize = 2;

/// Client driver threads (shared across all groups of a series).
const WORKERS: usize = 4;

/// CoSend payload bytes (first 8 carry the send-time stamp).
const PAYLOAD_LEN: usize = 64;

/// Per-socket read timeout — a wedged series fails instead of hanging.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One measured series: `rounds` of group fan-out over `conns`
/// concurrent connections.
#[derive(Debug, Clone, Copy)]
pub struct ConnscaleSample {
    /// Concurrent client connections in this series.
    pub conns: usize,
    /// Disjoint couple groups ( = `conns` / [`GROUP_SIZE`]).
    pub groups: usize,
    /// Members per group.
    pub group_size: usize,
    /// Host poll threads (fixed across the series).
    pub io_threads: usize,
    /// Fan-out rounds driven per group.
    pub rounds: u64,
    /// Wall-clock time of the measured phase, in microseconds.
    pub elapsed_us: u128,
    /// Follower deliveries observed across all groups and rounds.
    pub deliveries: u64,
    /// Deliveries per wall-clock second.
    pub deliveries_per_sec: f64,
    /// Median send-to-delivery latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile send-to-delivery latency, microseconds.
    pub p99_us: u64,
}

/// One group's client endpoints: the leader's stream first, then the
/// followers, plus the group object the leader targets.
struct Group {
    streams: Vec<BufReader<TcpStream>>,
    target: GlobalObjectId,
}

/// Soft `RLIMIT_NOFILE` from /proc — the bench holds ~2 fds per
/// connection (client end + host end, same process).
pub fn max_open_files() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// File descriptors a series of `conns` connections needs, with headroom.
pub fn fd_budget(conns: usize) -> usize {
    conns * 2 + 512
}

fn connect_retrying(addr: std::net::SocketAddr) -> TcpStream {
    let mut last_err = None;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    panic!("could not connect to bench host: {last_err:?}");
}

fn read_until<T>(
    reader: &mut BufReader<TcpStream>,
    what: &str,
    pick: impl Fn(Message) -> Option<T>,
) -> T {
    loop {
        match codec::read_frame(reader) {
            Ok(Some(msg)) => {
                if let Some(v) = pick(msg) {
                    return v;
                }
            }
            Ok(None) => panic!("connection closed while waiting for {what}"),
            Err(e) => panic!("read failed while waiting for {what}: {e}"),
        }
    }
}

/// Runs the fan-out workload at each connection count and returns one
/// sample per count.
///
/// # Panics
///
/// Panics if a connect, registration, or delivery fails — setup or
/// transport bugs, not load-dependent outcomes.
pub fn run(conn_counts: &[usize], rounds: u64) -> Vec<ConnscaleSample> {
    conn_counts.iter().map(|&n| run_one(n, rounds)).collect()
}

fn run_one(conns: usize, rounds: u64) -> ConnscaleSample {
    assert!(conns.is_multiple_of(GROUP_SIZE), "conns must divide into whole groups");
    let config = TcpHostConfig {
        queue_capacity: 4096,
        queue_max_bytes: 64 * 1024 * 1024,
        enqueue_timeout: Duration::from_secs(10),
        io_threads: IO_THREADS,
        ..TcpHostConfig::default()
    };
    let server = TcpServer::spawn_with_config("127.0.0.1:0", config).expect("bind bench host");
    let addr = server.addr();

    // Population (unmeasured): connect, register, collect Welcomes.
    let mut clients: Vec<BufReader<TcpStream>> = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = connect_retrying(addr);
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        stream.set_nodelay(true).ok();
        let frame = codec::frame_message(&Message::Register {
            user: UserId(i as u64 + 1),
            host: format!("connscale-{i}"),
            app_name: "connscale".into(),
        });
        (&stream).write_all(&frame).expect("write Register");
        clients.push(BufReader::new(stream));
    }
    let mut instances: Vec<InstanceId> = Vec::with_capacity(conns);
    for reader in &mut clients {
        instances.push(read_until(reader, "Welcome", |m| match m {
            Message::Welcome { instance } => Some(instance),
            _ => None,
        }));
    }

    // Chain-couple each group, every frame written from the leader's
    // connection so the later fan-out (same connection) is ordered
    // behind the coupling.
    let path = ObjectPath::parse("obj").expect("static path parses");
    let gid = |inst: InstanceId| GlobalObjectId::new(inst, path.clone());
    let mut groups: Vec<Group> = Vec::with_capacity(conns / GROUP_SIZE);
    let mut iter = clients.into_iter();
    for group_start in (0..conns).step_by(GROUP_SIZE) {
        let streams: Vec<_> = (&mut iter).take(GROUP_SIZE).collect();
        for m in group_start..group_start + GROUP_SIZE - 1 {
            let frame = codec::frame_message(&Message::Couple {
                src: gid(instances[m]),
                dst: gid(instances[m + 1]),
            });
            streams[0].get_ref().write_all(&frame).expect("write Couple");
        }
        groups.push(Group { streams, target: gid(instances[group_start]) });
    }

    // Measured phase: WORKERS threads share the groups; each round
    // writes every owned leader's CoSend first, then collects every
    // follower's delivery, stamping latencies off a common epoch.
    let epoch = Instant::now();
    let per_worker = groups.len().div_ceil(WORKERS);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .chunks_mut(per_worker)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(chunk.len() * rounds as usize * 3);
                    for _round in 0..rounds {
                        for group in chunk.iter_mut() {
                            let mut payload = vec![0u8; PAYLOAD_LEN];
                            let sent_us = epoch.elapsed().as_micros() as u64;
                            payload[..8].copy_from_slice(&sent_us.to_le_bytes());
                            let frame = codec::frame_message(&Message::CoSendCommand {
                                to: Target::Group(group.target.clone()),
                                command: "cs".into(),
                                payload,
                            });
                            group.streams[0].get_ref().write_all(&frame).expect("write CoSend");
                        }
                        for group in chunk.iter_mut() {
                            for follower in &mut group.streams[1..] {
                                let payload =
                                    read_until(follower, "CommandDelivery", |m| match m {
                                        Message::CommandDelivery { payload, .. } => Some(payload),
                                        _ => None,
                                    });
                                let sent_us =
                                    u64::from_le_bytes(payload[..8].try_into().expect("stamp"));
                                let now_us = epoch.elapsed().as_micros() as u64;
                                lats.push(now_us.saturating_sub(sent_us));
                            }
                        }
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("bench worker panicked")).collect()
    });
    let elapsed = t0.elapsed();
    drop(groups);
    drop(server);

    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    let deliveries = latencies.len() as u64;
    let secs = elapsed.as_secs_f64().max(1e-9);
    ConnscaleSample {
        conns,
        groups: conns / GROUP_SIZE,
        group_size: GROUP_SIZE,
        io_threads: IO_THREADS,
        rounds,
        elapsed_us: elapsed.as_micros(),
        deliveries,
        deliveries_per_sec: deliveries as f64 / secs,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// Renders the samples as the `BENCH_connscale.json` document.
pub fn to_json(samples: &[ConnscaleSample], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"connscale\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"io_threads\": {IO_THREADS},\n"));
    out.push_str(&format!("  \"payload_bytes\": {PAYLOAD_LEN},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    ));
    out.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"groups\": {}, \"group_size\": {}, \"io_threads\": {}, \
             \"rounds\": {}, \"elapsed_us\": {}, \"deliveries\": {}, \
             \"deliveries_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            s.conns,
            s.groups,
            s.group_size,
            s.io_threads,
            s.rounds,
            s.elapsed_us,
            s.deliveries,
            s.deliveries_per_sec,
            s.p50_us,
            s.p99_us,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_series_delivers_every_follower_frame() {
        let samples = run(&[8], 2);
        assert_eq!(samples.len(), 1);
        let s = &samples[0];
        // 2 groups × 3 followers × 2 rounds.
        assert_eq!(s.deliveries, 12);
        assert!(s.p99_us >= s.p50_us);
        assert!(s.deliveries_per_sec > 0.0);
    }

    #[test]
    fn json_lists_every_series() {
        let samples = run(&[8], 1);
        let json = to_json(&samples, true);
        assert!(json.contains("\"conns\": 8"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"io_threads\": 2"));
        assert!(json.contains("p99_us"));
    }
}
