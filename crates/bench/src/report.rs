//! Plain-text table rendering for the paper-style reports.

/// Formats microseconds compactly (µs below 1 ms, ms above).
pub fn fmt_us(us: f64) -> String {
    if us >= 1_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{us:.0} µs")
    }
}

/// Renders an aligned plain-text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let header_line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Prints a rendered table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_us_switches_units() {
        assert_eq!(fmt_us(250.0), "250 µs");
        assert_eq!(fmt_us(2_500.0), "2.50 ms");
    }

    #[test]
    fn table_alignment() {
        let s = render_table(
            "T",
            &["arch", "lat"],
            &[vec!["multiplex".into(), "9 ms".into()], vec!["cosoft".into(), "0".into()]],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("multiplex"));
        let lines: Vec<&str> = s.lines().filter(|l| l.contains("ms") || l.ends_with('0')).collect();
        assert_eq!(lines.len(), 2);
    }
}
