//! `cosoft-bench` — the benchmark harness regenerating every figure and
//! table of the paper (DESIGN.md §3 maps experiment ids to modules).
//!
//! * [`figures`] computes the paper-style series (virtual-time latencies,
//!   wire bytes, rejection counts) shared by the criterion benches and
//!   the printer binaries;
//! * [`fanout`] measures the encode-once shared-frame broadcast path
//!   (`--bin fanout` writes `BENCH_fanout.json`);
//! * [`shard`] measures aggregate delivery throughput of the
//!   couple-component-sharded server, one thread per shard core
//!   (`--bin shard` writes `BENCH_shard.json`);
//! * [`deltasync`] measures bytes-on-wire and latency of attribute-level
//!   delta transfers against full snapshots at growing tree depths
//!   (`--bin deltasync` writes `BENCH_deltasync.json`);
//! * [`connscale`] measures delivery throughput and latency of the
//!   readiness-driven TCP host at 100/1k/5k concurrent connections on a
//!   fixed poll pool (`--bin connscale` writes `BENCH_connscale.json`);
//! * [`overload`] measures goodput isolation under admission control —
//!   well-behaved senders against a 1×/4×/16× flooder on the virtual
//!   clock (`--bin overload` writes `BENCH_overload.json`);
//! * [`report`] renders plain-text tables.
//!
//! Run `cargo bench --workspace` for everything, or
//! `cargo run -p cosoft-bench --bin table1` / `--bin figures` for just
//! the paper-style reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod connscale;
pub mod deltasync;
pub mod fanout;
pub mod figures;
pub mod overload;
pub mod report;
pub mod shard;
