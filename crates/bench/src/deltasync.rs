//! Delta state-sync benchmark: bytes-on-wire and transfer latency of
//! attribute-level [`cosoft_wire::StateDelta`] legs against full
//! [`Message::ApplyState`] snapshots, for widget trees of growing depth.
//!
//! Each series drives the sans-I/O [`ServerCore`] with repeated
//! `CopyTo` transfers that change a single leaf attribute of a deep
//! tree. The *delta* destination has an acknowledged sync base, so
//! every transfer after the first rides an `ApplyDelta` frame; the
//! *snapshot* destination is a fresh object every round, so the same
//! state always travels as a full snapshot. Comparing the two gives the
//! wire savings and the end-to-end (handle + acknowledge) latency of
//! the delta path.

use std::time::Instant;

use cosoft_server::{Delivery, ServerCore};
use cosoft_wire::{
    AttrName, CopyMode, GlobalObjectId, InstanceId, Message, ObjectPath, StateNode, UserId, Value,
    WidgetKind,
};

/// Tree depths every run reports, shallowest to deepest.
pub const DEPTHS: [usize; 4] = [2, 4, 6, 8];

/// One measured series: a fixed tree depth driven for `rounds`
/// single-attribute transfers along both paths.
#[derive(Debug, Clone, Copy)]
pub struct DeltaSample {
    /// Nesting depth of the transferred widget tree.
    pub depth: usize,
    /// Nodes in the transferred tree.
    pub tree_nodes: usize,
    /// Transfers measured per path.
    pub rounds: u64,
    /// Average bytes of one full-snapshot `ApplyState` frame.
    pub snapshot_bytes: u64,
    /// Average bytes of one `ApplyDelta` frame for the same change.
    pub delta_bytes: u64,
    /// `delta_bytes / snapshot_bytes` — wire size of the delta leg
    /// relative to the snapshot it replaces.
    pub delta_ratio: f64,
    /// Average microseconds for one snapshot transfer (request handling
    /// plus acknowledgement) through the core.
    pub snapshot_us: f64,
    /// Average microseconds for one delta transfer through the core.
    pub delta_us: f64,
}

/// A depth-deep chain of forms, each level carrying a couple of sibling
/// leaves so the snapshot has realistic width, ending in one text leaf
/// whose content is the only thing the benchmark mutates.
pub fn deep_tree(depth: usize, text: &str) -> StateNode {
    let mut node = StateNode::new(WidgetKind::TextField, "leaf")
        .with_attr(AttrName::Text, Value::Text(text.into()));
    for level in (0..depth).rev() {
        node = StateNode::new(WidgetKind::Form, &format!("lvl{level}"))
            .with_attr(AttrName::Title, Value::Text(format!("panel {level}")))
            .with_child(
                StateNode::new(WidgetKind::Label, "caption")
                    .with_attr(AttrName::Text, Value::Text(format!("caption {level}"))),
            )
            .with_child(
                StateNode::new(WidgetKind::Button, "ok")
                    .with_attr(AttrName::Text, Value::Text("ok".into())),
            )
            .with_child(node);
    }
    node
}

fn count_nodes(node: &StateNode) -> usize {
    1 + node.children.iter().map(count_nodes).sum::<usize>()
}

/// Finds the one transfer frame of `kind` addressed to `endpoint` and
/// returns its encoded length plus its request id.
fn transfer_leg(
    out: &cosoft_server::Outgoing<u64>,
    endpoint: u64,
    kind: &str,
) -> Option<(usize, u64)> {
    for item in out.items() {
        if let Delivery::Shared(endpoints, frame) = item {
            if endpoints.contains(&endpoint) && frame.kind_name() == Some(kind) {
                let req_id = match frame.decode() {
                    Ok(Message::ApplyState { req_id, .. })
                    | Ok(Message::ApplyDelta { req_id, .. }) => req_id,
                    _ => return None,
                };
                return Some((frame.len(), req_id));
            }
        }
    }
    None
}

/// Drives `rounds` single-attribute transfers at each depth in `depths`
/// and returns one sample per depth.
///
/// # Panics
///
/// Panics if the server rejects a registration or drops a transfer leg
/// — both would be benchmark-setup bugs, not load-dependent failures.
pub fn run(depths: &[usize], rounds: u64) -> Vec<DeltaSample> {
    depths.iter().map(|&depth| run_one(depth, rounds)).collect()
}

fn run_one(depth: usize, rounds: u64) -> DeltaSample {
    let mut core: ServerCore<u64> = ServerCore::new();
    let mut instances = Vec::new();
    for endpoint in 0..2u64 {
        let out = core.handle(
            endpoint,
            Message::Register {
                user: UserId(endpoint + 1),
                host: format!("bench-{endpoint}"),
                app_name: "deltasync".into(),
            },
        );
        let instance = out
            .items()
            .iter()
            .find_map(|d| match d {
                Delivery::Unicast(_, Message::Welcome { instance }) => Some(*instance),
                _ => None,
            })
            .expect("registration must be answered");
        instances.push(instance);
    }
    let (sender, receiver) = (instances[0], instances[1]);
    let obj = |instance: InstanceId, p: &str| {
        GlobalObjectId::new(instance, ObjectPath::parse(p).expect("static path"))
    };

    // Prime the delta destination: first contact is always a snapshot.
    let mut req_id = 1u64;
    let out = core.handle(
        0,
        Message::CopyTo {
            src: obj(sender, "src"),
            dst: obj(receiver, "d"),
            snapshot: deep_tree(depth, "prime"),
            mode: CopyMode::Strict,
            req_id,
        },
    );
    let (_, leg) = transfer_leg(&out, 1, "apply-state").expect("prime leg");
    core.handle(1, Message::StateApplied { req_id: leg, overwritten: None, error: None });

    let tree_nodes = count_nodes(&deep_tree(depth, "prime"));
    let mut delta_bytes = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut delta_elapsed = 0u128;
    let mut snapshot_elapsed = 0u128;

    for round in 0..rounds {
        let state = deep_tree(depth, &format!("round {round}"));

        // Delta path: same destination object, acknowledged base.
        req_id += 1;
        let t0 = Instant::now();
        let out = core.handle(
            0,
            Message::CopyTo {
                src: obj(sender, "src"),
                dst: obj(receiver, "d"),
                snapshot: state.clone(),
                mode: CopyMode::Strict,
                req_id,
            },
        );
        let (len, leg) = transfer_leg(&out, 1, "apply-delta").expect("delta leg");
        core.handle(1, Message::StateApplied { req_id: leg, overwritten: None, error: None });
        delta_elapsed += t0.elapsed().as_micros();
        delta_bytes += len as u64;

        // Snapshot path: a fresh destination object every round, so the
        // identical state always travels in full.
        req_id += 1;
        let t0 = Instant::now();
        let out = core.handle(
            0,
            Message::CopyTo {
                src: obj(sender, "src"),
                dst: obj(receiver, &format!("s{round}")),
                snapshot: state,
                mode: CopyMode::Strict,
                req_id,
            },
        );
        let (len, leg) = transfer_leg(&out, 1, "apply-state").expect("snapshot leg");
        core.handle(1, Message::StateApplied { req_id: leg, overwritten: None, error: None });
        snapshot_elapsed += t0.elapsed().as_micros();
        snapshot_bytes += len as u64;
    }

    let rounds_f = rounds as f64;
    let snapshot_avg = snapshot_bytes / rounds.max(1);
    let delta_avg = delta_bytes / rounds.max(1);
    DeltaSample {
        depth,
        tree_nodes,
        rounds,
        snapshot_bytes: snapshot_avg,
        delta_bytes: delta_avg,
        delta_ratio: delta_avg as f64 / (snapshot_avg as f64).max(1.0),
        snapshot_us: snapshot_elapsed as f64 / rounds_f.max(1.0),
        delta_us: delta_elapsed as f64 / rounds_f.max(1.0),
    }
}

/// Renders the samples as the `BENCH_deltasync.json` document.
pub fn to_json(samples: &[DeltaSample], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"deltasync\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"depth\": {}, \"tree_nodes\": {}, \"rounds\": {}, \"snapshot_bytes\": {}, \
             \"delta_bytes\": {}, \"delta_ratio\": {:.4}, \"snapshot_us\": {:.2}, \
             \"delta_us\": {:.2}}}{}\n",
            s.depth,
            s.tree_nodes,
            s.rounds,
            s.snapshot_bytes,
            s.delta_bytes,
            s.delta_ratio,
            s.snapshot_us,
            s.delta_us,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance gate: a single-attribute change in a depth-6 tree must
    /// travel in no more than a quarter of the full-snapshot bytes.
    #[test]
    fn delta_leg_is_at_most_a_quarter_of_the_snapshot() {
        let samples = run(&[6], 4);
        let s = &samples[0];
        assert!(s.delta_bytes > 0, "delta legs must be measured");
        assert!(
            (s.delta_bytes as f64) <= 0.25 * s.snapshot_bytes as f64,
            "depth-6 single-attr delta must be ≤ 25% of the snapshot: \
             {} vs {} bytes",
            s.delta_bytes,
            s.snapshot_bytes
        );
    }

    #[test]
    fn deeper_trees_widen_the_gap() {
        let samples = run(&[2, 6], 2);
        assert!(samples[1].delta_ratio < samples[0].delta_ratio);
    }

    #[test]
    fn json_lists_every_series() {
        let samples = run(&[2], 2);
        let json = to_json(&samples, true);
        assert!(json.contains("\"depth\": 2"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("\"delta_ratio\""));
    }
}
