//! Shard-scaling benchmark: aggregate delivery throughput of the
//! couple-component-sharded server.
//!
//! A fixed population of disjoint couple groups is spread over 1, 2, 4,
//! and 8 [`ServerCore`] shards (the same interleaved-id cores the
//! [`cosoft_server::ShardRouter`] and the threaded TCP runtime deploy),
//! with **one OS thread per shard** driving group-targeted commands
//! through its own core — the deployment shape sharding exists for.
//! Because the groups are disjoint components, no cross-shard handoff
//! ever runs; the series isolate pure brain-parallelism: the same total
//! command load, divided across independently locked cores.
//!
//! On a multi-core box the aggregate messages/sec should scale with the
//! shard count until cores run out; on a single core the series stay
//! flat (the threads serialize) — `EXPERIMENTS.md` states the ≥4-core
//! requirement for the headline 4-shard ratio.

use std::hint::black_box;
use std::time::Instant;

use cosoft_server::ServerCore;
use cosoft_wire::{GlobalObjectId, InstanceId, Message, ObjectPath, Target, UserId};

/// Shard counts every run reports, smallest to largest.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Disjoint couple groups driven per run (divisible by every entry of
/// [`SHARD_COUNTS`], so each shard hosts a whole number of groups).
pub const TOTAL_GROUPS: usize = 8;

/// Members per couple group.
pub const GROUP_SIZE: usize = 4;

/// One measured series: the fixed workload on `shards` shard threads.
#[derive(Debug, Clone, Copy)]
pub struct ShardSample {
    /// Shard cores (= driver threads) in this series.
    pub shards: usize,
    /// Disjoint couple groups, total across all shards.
    pub groups: usize,
    /// Members per group.
    pub group_size: usize,
    /// Command rounds driven per group.
    pub rounds: u64,
    /// Wall-clock time of the parallel phase, in microseconds.
    pub elapsed_us: u128,
    /// Per-endpoint deliveries produced across all shards.
    pub deliveries: u64,
    /// Aggregate delivered messages per wall-clock second.
    pub messages_per_sec: f64,
}

/// Builds one shard's population: `groups_here` disjoint couple groups
/// of `group_size` members each, registered and coupled on `core`.
/// Returns one (sender endpoint, group object) pair per group.
fn populate(
    core: &mut ServerCore<u64>,
    groups_here: usize,
    group_size: usize,
) -> Vec<(u64, GlobalObjectId)> {
    let mut senders = Vec::new();
    let mut endpoint = 0u64;
    for g in 0..groups_here {
        let mut members: Vec<(u64, InstanceId)> = Vec::new();
        for m in 0..group_size {
            let out = core.handle(
                endpoint,
                Message::Register {
                    user: UserId(endpoint + 1),
                    host: format!("bench-{endpoint}"),
                    app_name: "shard".into(),
                },
            );
            let instance = out
                .into_messages()
                .into_iter()
                .find_map(|(_, msg)| match msg {
                    Message::Welcome { instance } => Some(instance),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("registration of member {m} in group {g} failed"));
            members.push((endpoint, instance));
            endpoint += 1;
        }
        // Chain-couple the members; the transitive closure makes them
        // one component, disjoint from every other group.
        let path = ObjectPath::parse("obj").expect("static path parses");
        for pair in members.windows(2) {
            let (src_ep, src_inst) = pair[0];
            let (_, dst_inst) = pair[1];
            core.handle(
                src_ep,
                Message::Couple {
                    src: GlobalObjectId::new(src_inst, path.clone()),
                    dst: GlobalObjectId::new(dst_inst, path.clone()),
                },
            );
        }
        senders.push((members[0].0, GlobalObjectId::new(members[0].1, path)));
    }
    senders
}

/// Runs the fixed workload at each shard count in `shard_counts` and
/// returns one sample per count.
///
/// # Panics
///
/// Panics if a registration fails or a shard thread dies — setup bugs,
/// not load-dependent failures.
pub fn run(shard_counts: &[usize], rounds: u64, payload_len: usize) -> Vec<ShardSample> {
    shard_counts.iter().map(|&n| run_one(n, rounds, payload_len)).collect()
}

fn run_one(shards: usize, rounds: u64, payload_len: usize) -> ShardSample {
    assert!(TOTAL_GROUPS.is_multiple_of(shards), "groups must divide evenly over shards");
    let groups_here = TOTAL_GROUPS / shards;

    // Build every shard's population before starting the clock: the
    // measured phase is pure command delivery.
    type ShardState = (ServerCore<u64>, Vec<(u64, GlobalObjectId)>);
    let mut cores: Vec<ShardState> = (0..shards)
        .map(|i| {
            let mut core = ServerCore::with_shard_ids(i as u64, shards as u64);
            let senders = populate(&mut core, groups_here, GROUP_SIZE);
            (core, senders)
        })
        .collect();
    let payload = vec![0x5Au8; payload_len];

    let t0 = Instant::now();
    let deliveries: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = cores
            .iter_mut()
            .map(|(core, senders)| {
                let payload = payload.clone();
                scope.spawn(move || {
                    let mut delivered = 0u64;
                    for round in 0..rounds {
                        for (sender, object) in senders.iter() {
                            let out = core.handle(
                                *sender,
                                Message::CoSendCommand {
                                    to: Target::Group(object.clone()),
                                    command: format!("r{round}"),
                                    payload: payload.clone(),
                                },
                            );
                            delivered += out.message_count() as u64;
                            // Hand the batch to a pretend transport,
                            // like the fanout bench does.
                            for (endpoint, frame) in out.into_frames() {
                                black_box(endpoint);
                                black_box(frame.len());
                            }
                        }
                    }
                    delivered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).sum()
    });
    let elapsed = t0.elapsed();

    let secs = elapsed.as_secs_f64().max(1e-9);
    ShardSample {
        shards,
        groups: TOTAL_GROUPS,
        group_size: GROUP_SIZE,
        rounds,
        elapsed_us: elapsed.as_micros(),
        deliveries,
        messages_per_sec: deliveries as f64 / secs,
    }
}

/// Renders the samples as the `BENCH_shard.json` document.
pub fn to_json(samples: &[ShardSample], smoke: bool, payload_len: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"shard\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"payload_bytes\": {payload_len},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    ));
    out.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"groups\": {}, \"group_size\": {}, \"rounds\": {}, \
             \"elapsed_us\": {}, \"deliveries\": {}, \"messages_per_sec\": {:.1}}}{}\n",
            s.shards,
            s.groups,
            s.group_size,
            s.rounds,
            s.elapsed_us,
            s.deliveries,
            s.messages_per_sec,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_series_delivers_the_same_total() {
        let samples = run(&[1, 2], 2, 64);
        assert_eq!(samples.len(), 2);
        // Same workload regardless of shard count: rounds × groups
        // commands, each delivered to the group's other members.
        let expected = 2 * (TOTAL_GROUPS as u64) * (GROUP_SIZE as u64 - 1);
        for s in &samples {
            assert_eq!(s.deliveries, expected, "sharding must not change delivery semantics");
        }
    }

    #[test]
    fn json_lists_every_series() {
        let samples = run(&[1], 1, 32);
        let json = to_json(&samples, true, 32);
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("available_parallelism"));
    }
}
