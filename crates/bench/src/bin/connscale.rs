//! Connection-scaling benchmark runner: drives the group fan-out
//! workload over 100/1 000/5 000 concurrent TCP connections on a fixed
//! 2-thread host poll pool and writes `BENCH_connscale.json` into the
//! working directory.
//!
//! `cargo run --release -p cosoft-bench --bin connscale` for the full
//! measurement; pass `--smoke` (as CI does) for a seconds-scale run
//! that still produces every series. Needs ~2 fds per connection — the
//! 5 000-conn series wants `ulimit -n` ≥ 10 512 and is skipped (loudly)
//! when the limit is lower.

use cosoft_bench::connscale::{self, CONN_COUNTS};
use cosoft_bench::report::print_table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds: u64 = if smoke { 2 } else { 16 };

    let fd_limit = connscale::max_open_files();
    let counts: Vec<usize> = CONN_COUNTS
        .iter()
        .copied()
        .filter(|&conns| match fd_limit {
            Some(limit) if connscale::fd_budget(conns) > limit => {
                eprintln!(
                    "skipping {conns}-connection series: needs ~{} fds, `ulimit -n` is {limit}",
                    connscale::fd_budget(conns)
                );
                false
            }
            _ => true,
        })
        .collect();

    let samples = connscale::run(&counts, rounds);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.conns.to_string(),
                s.groups.to_string(),
                s.io_threads.to_string(),
                s.rounds.to_string(),
                s.deliveries.to_string(),
                format!("{:.0}", s.deliveries_per_sec),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
            ]
        })
        .collect();
    print_table(
        "Connection scaling: group fan-out on a fixed 2-thread poll pool",
        &["conns", "groups", "io thr", "rounds", "deliveries", "del/sec", "p50 µs", "p99 µs"],
        &rows,
    );

    let json = connscale::to_json(&samples, smoke);
    let path = "BENCH_connscale.json";
    std::fs::write(path, &json).expect("write BENCH_connscale.json");
    println!(
        "\nwrote {path} ({} series{})",
        samples.len(),
        if smoke { ", smoke mode" } else { "" }
    );
}
