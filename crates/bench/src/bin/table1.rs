//! Prints the paper's Table-1-style comparison of synchronization
//! approaches. `cargo run -p cosoft-bench --bin table1`.

use cosoft_bench::figures::{table1_rows, TABLE1_HEADERS};
use cosoft_bench::report::print_table;

fn main() {
    print_table(
        "Table 1: comparison of application-independent synchronization approaches",
        &TABLE1_HEADERS,
        &table1_rows(),
    );
    println!(
        "\nWorkload: 8 users, 60 actions each, 15% semantic, 30% shared, 2 ms one-way latency."
    );
    println!("Quantitative columns from the architecture runners; flexibility columns per §2.2.");
}
