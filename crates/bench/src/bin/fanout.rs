//! Fan-out throughput benchmark runner: drives the encode-once
//! broadcast path at group sizes 2/8/32/128 and writes
//! `BENCH_fanout.json` next to the working directory.
//!
//! `cargo run --release -p cosoft-bench --bin fanout` for the full
//! measurement; pass `--smoke` (as CI does) for a seconds-scale run
//! that still produces every series.

use cosoft_bench::fanout::{self, GROUP_SIZES};
use cosoft_bench::report::print_table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds: u64 = if smoke { 64 } else { 4096 };
    let payload_len = 4 * 1024;

    let samples = fanout::run(&GROUP_SIZES, rounds, payload_len);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.group.to_string(),
                s.rounds.to_string(),
                format!("{:.0}", s.messages_per_sec),
                s.bytes_encoded.to_string(),
                s.bytes_delivered.to_string(),
                s.allocations_saved.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fan-out throughput: encode-once shared-frame broadcast",
        &["group", "rounds", "msgs/sec", "bytes encoded", "bytes delivered", "allocs saved"],
        &rows,
    );

    let json = fanout::to_json(&samples, smoke, payload_len);
    let path = "BENCH_fanout.json";
    std::fs::write(path, &json).expect("write BENCH_fanout.json");
    println!(
        "\nwrote {path} ({} series{})",
        samples.len(),
        if smoke { ", smoke mode" } else { "" }
    );
}
