//! Overload-control benchmark runner: fixed well-behaved workload
//! against a 1×/4×/16× flooder under `OverloadConfig` admission, on the
//! virtual clock. Writes `BENCH_overload.json` into the working
//! directory.
//!
//! `cargo run --release -p cosoft-bench --bin overload` for the full
//! measurement; pass `--smoke` (as CI does) for a shorter run that
//! still produces every series. The workload is deterministic — no
//! sockets, no threads — so smoke and full runs differ only in window
//! count.

use cosoft_bench::overload::{self, MULTIPLIERS};
use cosoft_bench::report::print_table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let windows: u64 = if smoke { 20 } else { 200 };

    let samples = overload::run(&MULTIPLIERS, windows);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("{}x", s.multiplier),
                s.windows.to_string(),
                s.offered_flood.to_string(),
                s.deliveries.to_string(),
                format!("{:.0}", s.deliveries_per_vsec),
                format!("{:.2}", s.shed_rate),
                s.busy_replies.to_string(),
                s.evictions.to_string(),
                s.busy_before_evict().to_string(),
            ]
        })
        .collect();
    print_table(
        "Overload control: well-behaved goodput vs flooder offered load",
        &[
            "flood",
            "windows",
            "offered",
            "deliveries",
            "del/vsec",
            "shed rate",
            "busy",
            "evict",
            "busy<evict",
        ],
        &rows,
    );

    let json = overload::to_json(&samples, smoke);
    let path = "BENCH_overload.json";
    std::fs::write(path, &json).expect("write BENCH_overload.json");
    println!(
        "\nwrote {path} ({} series{})",
        samples.len(),
        if smoke { ", smoke mode" } else { "" }
    );
}
