//! Prints every figure-style series of the reproduction in one go.
//! `cargo run -p cosoft-bench --bin figures`.

use cosoft_bench::figures::*;
use cosoft_bench::report::print_table;

fn main() {
    print_table("Figure 1: multiplex architecture vs population", &FIG1_HEADERS, &fig1_rows());
    print_table(
        "Figure 2/3: semantic-action blocking (UI-replicated vs fully replicated)",
        &FIG23_HEADERS,
        &fig23_rows(),
    );
    print_table(
        "Figure 4: COSOFT coupling-layer costs (live protocol)",
        &FIG4_HEADERS,
        &fig4_rows(),
    );
    print_table("L1: indirect vs direct coupling of dependent displays", &L1_HEADERS, &l1_rows());
    print_table("L2: state copy vs action replay after decoupling", &L2_HEADERS, &l2_rows());
    print_table("L3: multiple evaluation vs evaluate-once-and-share", &L3_HEADERS, &l3_rows());
    print_table("L4: per-commit vs per-keystroke floor control", &L4_HEADERS, &l4_rows());
    print_table(
        "Observability: server-core counters (coupling workload, 8 instances)",
        &STATS_HEADERS,
        &server_stats_rows(),
    );
    print_table(
        "Observability: TCP transport counters (live loopback round)",
        &STATS_HEADERS,
        &transport_stats_rows(),
    );
}
