//! Shard-scaling benchmark runner: drives the fixed disjoint-group
//! command workload over 1/2/4/8 shard cores (one thread per shard)
//! and writes `BENCH_shard.json` into the working directory.
//!
//! `cargo run --release -p cosoft-bench --bin shard` for the full
//! measurement; pass `--smoke` (as CI does) for a seconds-scale run
//! that still produces every series.

use cosoft_bench::report::print_table;
use cosoft_bench::shard::{self, SHARD_COUNTS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds: u64 = if smoke { 32 } else { 2048 };
    let payload_len = 1024;

    let samples = shard::run(&SHARD_COUNTS, rounds, payload_len);

    let base = samples[0].messages_per_sec.max(1e-9);
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.shards.to_string(),
                s.groups.to_string(),
                s.rounds.to_string(),
                s.deliveries.to_string(),
                format!("{:.0}", s.messages_per_sec),
                format!("{:.2}x", s.messages_per_sec / base),
            ]
        })
        .collect();
    print_table(
        "Shard scaling: aggregate delivery throughput, disjoint groups",
        &["shards", "groups", "rounds", "deliveries", "msgs/sec", "vs 1 shard"],
        &rows,
    );

    let json = shard::to_json(&samples, smoke, payload_len);
    let path = "BENCH_shard.json";
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!(
        "\nwrote {path} ({} series{})",
        samples.len(),
        if smoke { ", smoke mode" } else { "" }
    );
}
