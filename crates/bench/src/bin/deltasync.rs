//! Delta state-sync benchmark runner: measures bytes-on-wire and
//! transfer latency of attribute-level deltas against full snapshots at
//! tree depths 2/4/6/8 and writes `BENCH_deltasync.json` next to the
//! working directory.
//!
//! `cargo run --release -p cosoft-bench --bin deltasync` for the full
//! measurement; pass `--smoke` (as CI does) for a seconds-scale run
//! that still produces every series.

use cosoft_bench::deltasync::{self, DEPTHS};
use cosoft_bench::report::print_table;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds: u64 = if smoke { 32 } else { 1024 };

    let samples = deltasync::run(&DEPTHS, rounds);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.depth.to_string(),
                s.tree_nodes.to_string(),
                s.snapshot_bytes.to_string(),
                s.delta_bytes.to_string(),
                format!("{:.1}%", 100.0 * s.delta_ratio),
                format!("{:.1}", s.snapshot_us),
                format!("{:.1}", s.delta_us),
            ]
        })
        .collect();
    print_table(
        "Delta state sync: bytes-on-wire and latency vs full snapshots",
        &["depth", "nodes", "snap bytes", "delta bytes", "ratio", "snap us", "delta us"],
        &rows,
    );

    let json = deltasync::to_json(&samples, smoke);
    let path = "BENCH_deltasync.json";
    std::fs::write(path, &json).expect("write BENCH_deltasync.json");
    println!(
        "\nwrote {path} ({} series{})",
        samples.len(),
        if smoke { ", smoke mode" } else { "" }
    );
}
