//! Overload-control benchmark: goodput isolation under admission
//! control (`cosoft_server::OverloadConfig`).
//!
//! One couple group of well-behaved senders shares a sharded server
//! with a single flooder. The well-behaved side offers a fixed,
//! in-budget command rate every window; the flooder offers `1×`, `4×`
//! and `16×` the well-behaved rate. Everything runs on the virtual
//! clock (`ShardRouter::tick`), so the series are deterministic: the
//! numbers measure the admission layer, not the host machine.
//!
//! The claim under test (DESIGN.md §10): per-endpoint budgets isolate
//! the well-behaved group — their goodput at `16×` stays within 90% of
//! the `1×` baseline — while the flooder is first answered with
//! `Busy { retry_after_ms }` and only escalated to the §3.2
//! auto-decoupling eviction on sustained abuse, in that order.

use cosoft_server::{LivenessConfig, OverloadConfig, ShardRouter};
use cosoft_wire::{GlobalObjectId, InstanceId, Message, ObjectPath, Target, UserId};

/// Flooder offered-load multipliers every run reports.
pub const MULTIPLIERS: [u32; 3] = [1, 4, 16];

/// Members of the well-behaved couple group.
pub const GROUP_SIZE: usize = 4;

/// Virtual length of one admission window, in microseconds.
pub const WINDOW_US: u64 = 10_000;

/// Well-behaved commands offered per window (the `1×` rate). Half the
/// control budget: a polite client never brushes the limit.
pub const GOOD_PER_WINDOW: u32 = 32;

/// Per-endpoint control-class budget per window.
pub const CONTROL_BUDGET: u32 = 64;

/// Shed windows tolerated before the flooder is escalated to eviction.
pub const STRIKES_BEFORE_EVICT: u32 = 3;

/// One measured series: the fixed well-behaved workload against a
/// flooder at `multiplier` times the polite rate.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSample {
    /// Flooder offered load as a multiple of [`GOOD_PER_WINDOW`].
    pub multiplier: u32,
    /// Admission windows simulated.
    pub windows: u64,
    /// Commands offered by the well-behaved group sender, total.
    pub offered_good: u64,
    /// Messages offered by the flooder, total.
    pub offered_flood: u64,
    /// `CommandDelivery` fan-outs reaching well-behaved group members.
    pub deliveries: u64,
    /// Deliveries per *virtual* second (windows × [`WINDOW_US`]).
    pub deliveries_per_vsec: f64,
    /// Messages shed by admission control (all classes).
    pub sheds: u64,
    /// Shed fraction of the flooder's offered load.
    pub shed_rate: f64,
    /// `Busy { retry_after_ms }` replies sent.
    pub busy_replies: u64,
    /// Overload escalations to the §3.2 auto-decoupling eviction.
    pub evictions: u64,
    /// First window in which the flooder saw a `Busy` reply, if any.
    pub first_busy_window: Option<u64>,
    /// First window in which an overload eviction ran, if any.
    pub first_evict_window: Option<u64>,
}

impl OverloadSample {
    /// Whether the escalation order held: the flooder was told `Busy`
    /// no later than it was evicted (vacuously true with no eviction).
    pub fn busy_before_evict(&self) -> bool {
        match (self.first_busy_window, self.first_evict_window) {
            (Some(busy), Some(evict)) => busy <= evict,
            (_, None) => true,
            (None, Some(_)) => false,
        }
    }
}

fn overload_config() -> OverloadConfig {
    OverloadConfig {
        window_us: WINDOW_US,
        control_budget: CONTROL_BUDGET,
        bulk_budget: 8,
        max_window_bytes: 0,
        retry_after_ms: 50,
        strikes_before_evict: STRIKES_BEFORE_EVICT,
    }
}

/// Registers and chain-couples the well-behaved group, returning the
/// group sender's endpoint and group object, plus registers the flooder
/// and returns its endpoint.
fn populate(router: &mut ShardRouter<u64>) -> ((u64, GlobalObjectId), u64) {
    let mut members: Vec<(u64, InstanceId)> = Vec::new();
    for endpoint in 0..GROUP_SIZE as u64 {
        let out = router.handle(
            endpoint,
            Message::Register {
                user: UserId(endpoint + 1),
                host: format!("bench-{endpoint}"),
                app_name: "overload".into(),
            },
        );
        let instance = out
            .into_messages()
            .into_iter()
            .find_map(|(_, msg)| match msg {
                Message::Welcome { instance } => Some(instance),
                _ => None,
            })
            .unwrap_or_else(|| panic!("registration of member {endpoint} failed"));
        members.push((endpoint, instance));
    }
    let path = ObjectPath::parse("obj").expect("static path parses");
    for pair in members.windows(2) {
        let (src_ep, src_inst) = pair[0];
        let (_, dst_inst) = pair[1];
        router.handle(
            src_ep,
            Message::Couple {
                src: GlobalObjectId::new(src_inst, path.clone()),
                dst: GlobalObjectId::new(dst_inst, path.clone()),
            },
        );
    }
    let flooder = GROUP_SIZE as u64;
    router.handle(
        flooder,
        Message::Register {
            user: UserId(flooder + 1),
            host: "bench-flooder".into(),
            app_name: "overload".into(),
        },
    );
    ((members[0].0, GlobalObjectId::new(members[0].1, path)), flooder)
}

/// Runs the fixed workload at each multiplier and returns one sample
/// per entry.
///
/// # Panics
///
/// Panics if group registration fails — a setup bug, not load.
pub fn run(multipliers: &[u32], windows: u64) -> Vec<OverloadSample> {
    multipliers.iter().map(|&m| run_one(m, windows)).collect()
}

fn run_one(multiplier: u32, windows: u64) -> OverloadSample {
    // Two shards so the admission path runs behind the router exactly
    // as the TCP runtime deploys it.
    let mut router: ShardRouter<u64> = ShardRouter::with_liveness(2, LivenessConfig::default());
    // Populate with admission open, then arm the budgets: setup traffic
    // (registrations, couples) is not part of the offered load.
    let ((sender, group), flooder) = populate(&mut router);
    router.set_overload(overload_config());

    let flood_per_window = u64::from(GOOD_PER_WINDOW) * u64::from(multiplier);
    let mut deliveries = 0u64;
    let mut first_busy_window = None;
    let mut first_evict_window = None;

    for window in 0..windows {
        let now_us = window * WINDOW_US;
        router.tick(now_us);
        for i in 0..GOOD_PER_WINDOW {
            let out = router.handle(
                sender,
                Message::CoSendCommand {
                    to: Target::Group(group.clone()),
                    command: format!("w{window}c{i}"),
                    payload: vec![0x5A; 64],
                },
            );
            deliveries += out
                .into_messages()
                .iter()
                .filter(|(_, msg)| matches!(msg, Message::CommandDelivery { .. }))
                .count() as u64;
        }
        for _ in 0..flood_per_window {
            let out = router.handle(flooder, Message::QueryInstances);
            if first_busy_window.is_none()
                && out
                    .into_messages()
                    .iter()
                    .any(|(ep, msg)| *ep == flooder && matches!(msg, Message::Busy { .. }))
            {
                first_busy_window = Some(window);
            }
        }
        if first_evict_window.is_none() && router.stats().overload_evictions > 0 {
            first_evict_window = Some(window);
        }
    }

    let stats = router.stats();
    let offered_good = windows * u64::from(GOOD_PER_WINDOW);
    let offered_flood = windows * flood_per_window;
    let sheds = stats.overload_sheds_control + stats.overload_sheds_bulk;
    let virtual_secs = (windows * WINDOW_US) as f64 / 1e6;
    OverloadSample {
        multiplier,
        windows,
        offered_good,
        offered_flood,
        deliveries,
        deliveries_per_vsec: deliveries as f64 / virtual_secs.max(1e-9),
        sheds,
        shed_rate: if offered_flood == 0 { 0.0 } else { sheds as f64 / offered_flood as f64 },
        busy_replies: stats.busy_replies,
        evictions: stats.overload_evictions,
        first_busy_window,
        first_evict_window,
    }
}

/// Renders the samples as the `BENCH_overload.json` document.
pub fn to_json(samples: &[OverloadSample], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"overload\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"window_us\": {WINDOW_US},\n"));
    out.push_str(&format!("  \"control_budget\": {CONTROL_BUDGET},\n"));
    out.push_str(&format!("  \"good_per_window\": {GOOD_PER_WINDOW},\n"));
    out.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"multiplier\": {}, \"windows\": {}, \"offered_good\": {}, \
             \"offered_flood\": {}, \"deliveries\": {}, \"deliveries_per_vsec\": {:.1}, \
             \"sheds\": {}, \"shed_rate\": {:.4}, \"busy_replies\": {}, \"evictions\": {}, \
             \"busy_before_evict\": {}}}{}\n",
            s.multiplier,
            s.windows,
            s.offered_good,
            s.offered_flood,
            s.deliveries,
            s.deliveries_per_vsec,
            s.sheds,
            s.shed_rate,
            s.busy_replies,
            s.evictions,
            s.busy_before_evict(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polite_flooder_is_never_shed() {
        let s = &run(&[1], 20)[0];
        assert_eq!(s.sheds, 0, "an in-budget flooder must not be shed");
        assert_eq!(s.evictions, 0);
        assert_eq!(s.busy_replies, 0);
    }

    #[test]
    fn goodput_is_isolated_from_the_flooder() {
        let samples = run(&MULTIPLIERS, 30);
        let baseline = samples[0].deliveries_per_vsec;
        assert!(baseline > 0.0);
        for s in &samples {
            assert!(
                s.deliveries_per_vsec >= 0.9 * baseline,
                "well-behaved goodput at {}x fell to {:.0}/s against baseline {:.0}/s",
                s.multiplier,
                s.deliveries_per_vsec,
                baseline
            );
        }
    }

    #[test]
    fn heavy_flooder_is_shed_and_told_busy_before_eviction() {
        let s = &run(&[16], 30)[0];
        assert!(s.sheds > 0, "a 16x flooder must be shed");
        assert!(s.shed_rate > 0.5, "most of a 16x flood must be shed, got {}", s.shed_rate);
        assert!(s.busy_replies > 0, "shed traffic must be answered with Busy");
        assert!(s.evictions > 0, "sustained 16x abuse must escalate to eviction");
        assert!(s.busy_before_evict(), "Busy must precede the eviction");
        assert!(s.first_evict_window.expect("evicted") >= u64::from(STRIKES_BEFORE_EVICT));
    }

    #[test]
    fn json_lists_every_series() {
        let samples = run(&[1, 4], 5);
        let json = to_json(&samples, true);
        assert!(json.contains("\"multiplier\": 1"));
        assert!(json.contains("\"multiplier\": 4"));
        assert!(json.contains("\"smoke\": true"));
        assert!(json.contains("busy_before_evict"));
    }
}
