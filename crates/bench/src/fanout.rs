//! Fan-out throughput benchmark for the encode-once delivery path.
//!
//! A sender broadcasts commands to groups of 2/8/32/128 peers through
//! the sans-I/O [`ServerCore`]; every broadcast is encoded into exactly
//! one [`cosoft_wire::SharedFrame`] and fanned out by reference. The
//! series report messages/sec, bytes encoded vs. bytes delivered (the
//! gap is what encode-once saves on the wire-encoding side), and the
//! per-delivery clone+encode allocations the shared frame avoided.

use std::hint::black_box;
use std::time::Instant;

use cosoft_server::ServerCore;
use cosoft_wire::{Message, Target, UserId};

/// Group sizes every run reports, smallest to largest.
pub const GROUP_SIZES: [usize; 4] = [2, 8, 32, 128];

/// One measured series: a fixed fan-out width driven for `rounds`
/// broadcasts.
#[derive(Debug, Clone, Copy)]
pub struct FanoutSample {
    /// Receivers per broadcast.
    pub group: usize,
    /// Broadcasts driven through the core.
    pub rounds: u64,
    /// Wall-clock time for the measured loop, in microseconds.
    pub elapsed_us: u128,
    /// Per-endpoint deliveries produced (rounds × group).
    pub deliveries: u64,
    /// Delivered messages per wall-clock second.
    pub messages_per_sec: f64,
    /// Bytes serialized into shared frames (once per broadcast).
    pub bytes_encoded: u64,
    /// Bytes handed to the transport across all endpoints.
    pub bytes_delivered: u64,
    /// Clone-and-re-encode operations the shared frame made
    /// unnecessary: every delivery beyond a frame's first previously
    /// cost an owned `Message` clone plus a fresh encode buffer.
    pub allocations_saved: u64,
}

/// Drives `rounds` broadcasts at each group size in `groups` and
/// returns one sample per size.
///
/// # Panics
///
/// Panics if the server rejects a registration or a broadcast — both
/// would be bugs in the benchmark setup, not load-dependent failures.
pub fn run(groups: &[usize], rounds: u64, payload_len: usize) -> Vec<FanoutSample> {
    groups.iter().map(|&group| run_one(group, rounds, payload_len)).collect()
}

fn run_one(group: usize, rounds: u64, payload_len: usize) -> FanoutSample {
    let mut core: ServerCore<u64> = ServerCore::new();
    // Endpoint 0 broadcasts to `group` peers.
    for endpoint in 0..=(group as u64) {
        let out = core.handle(
            endpoint,
            Message::Register {
                user: UserId(endpoint + 1),
                host: format!("bench-{endpoint}"),
                app_name: "fanout".into(),
            },
        );
        assert!(!out.is_empty(), "registration must be answered");
    }
    let payload = vec![0x5Au8; payload_len];
    let before = core.stats();
    let t0 = Instant::now();
    for round in 0..rounds {
        let out = core.handle(
            0,
            Message::CoSendCommand {
                to: Target::Broadcast,
                command: format!("r{round}"),
                payload: payload.clone(),
            },
        );
        // Hand the batch to a pretend transport: walk every
        // per-endpoint frame exactly like `TcpHost::send_batch` would,
        // without the sockets dominating the measurement.
        let mut handed = 0usize;
        for (endpoint, frame) in out.into_frames() {
            handed += frame.len();
            black_box(endpoint);
        }
        black_box(handed);
    }
    let elapsed = t0.elapsed();
    let after = core.stats();

    let deliveries = after.shared_deliveries - before.shared_deliveries;
    let frames = after.shared_frames_encoded - before.shared_frames_encoded;
    let secs = elapsed.as_secs_f64().max(1e-9);
    FanoutSample {
        group,
        rounds,
        elapsed_us: elapsed.as_micros(),
        deliveries,
        messages_per_sec: deliveries as f64 / secs,
        bytes_encoded: after.shared_bytes_encoded - before.shared_bytes_encoded,
        bytes_delivered: after.shared_bytes_delivered - before.shared_bytes_delivered,
        allocations_saved: deliveries - frames,
    }
}

/// Renders the samples as the `BENCH_fanout.json` document.
pub fn to_json(samples: &[FanoutSample], smoke: bool, payload_len: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"fanout\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"payload_bytes\": {payload_len},\n"));
    out.push_str("  \"series\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": {}, \"rounds\": {}, \"elapsed_us\": {}, \"deliveries\": {}, \
             \"messages_per_sec\": {:.1}, \"bytes_encoded\": {}, \"bytes_delivered\": {}, \
             \"allocations_saved\": {}}}{}\n",
            s.group,
            s.rounds,
            s.elapsed_us,
            s.deliveries,
            s.messages_per_sec,
            s.bytes_encoded,
            s.bytes_delivered,
            s.allocations_saved,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_accounts_encode_once() {
        let samples = run(&[2, 8], 4, 256);
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert_eq!(s.deliveries, s.rounds * s.group as u64);
            // One encode per broadcast, `group` deliveries out of it.
            assert_eq!(s.bytes_delivered, s.bytes_encoded * s.group as u64);
            assert_eq!(s.allocations_saved, s.rounds * (s.group as u64 - 1));
        }
    }

    #[test]
    fn json_lists_every_series() {
        let samples = run(&[2], 2, 64);
        let json = to_json(&samples, true, 64);
        assert!(json.contains("\"group\": 2"));
        assert!(json.contains("\"smoke\": true"));
    }
}
