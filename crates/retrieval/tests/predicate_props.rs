//! Property-based tests of the relation engine: predicate evaluation
//! against a naive reference implementation, and query-combinator laws.

use proptest::prelude::*;

use cosoft_retrieval::{ColumnType, Predicate, Query, Table, Value};

fn table_from_rows(rows: &[(String, i64)]) -> Table {
    let mut t = Table::new("t", vec![("name", ColumnType::Text), ("num", ColumnType::Int)])
        .expect("static schema");
    for (name, num) in rows {
        t.insert(vec![Value::text(name), Value::Int(*num)]).expect("typed row");
    }
    t
}

fn arb_rows() -> impl Strategy<Value = Vec<(String, i64)>> {
    prop::collection::vec(("[a-c]{0,4}", -50i64..50), 0..30)
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        "[a-c]{0,3}".prop_map(|s| Predicate::substring("name", &s)),
        "[a-c]{0,3}".prop_map(|s| Predicate::Prefix("name".into(), s)),
        (-50i64..50).prop_map(|n| Predicate::eq("num", Value::Int(n))),
        (-50i64..50, 0i64..30).prop_map(|(lo, d)| Predicate::Range("num".into(), lo, lo + d)),
        prop::collection::vec("[a-c]{0,4}", 0..3)
            .prop_map(|alts| Predicate::like_one_of("name", alts)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Predicate::And),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

/// Reference evaluation, written independently of the engine.
fn reference_matches(p: &Predicate, name: &str, num: i64) -> bool {
    match p {
        Predicate::True => true,
        Predicate::Eq(col, v) => match (col.as_str(), v) {
            ("name", Value::Text(s)) => name == s,
            ("num", Value::Int(i)) => num == *i,
            _ => false,
        },
        Predicate::Substring(_, needle) => name.to_lowercase().contains(&needle.to_lowercase()),
        Predicate::Prefix(_, prefix) => name.to_lowercase().starts_with(&prefix.to_lowercase()),
        Predicate::LikeOneOf(col, alts) => {
            let cell = if col == "name" { name.to_lowercase() } else { num.to_string() };
            alts.iter().any(|a| a.to_lowercase() == cell)
        }
        Predicate::Range(_, lo, hi) => num >= *lo && num <= *hi,
        Predicate::And(ps) => ps.iter().all(|p| reference_matches(p, name, num)),
        Predicate::Or(ps) => ps.iter().any(|p| reference_matches(p, name, num)),
        Predicate::Not(p) => !reference_matches(p, name, num),
    }
}

// The generator keeps text operators on `name` and numeric operators on
// `num`, so every generated predicate is type-correct by construction.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_matches_reference(rows in arb_rows(), p in arb_predicate()) {
        let table = table_from_rows(&rows);
        let result = Query::new().filter(p.clone()).run(&table).expect("valid predicate");
        let expected: Vec<&(String, i64)> =
            rows.iter().filter(|(n, i)| reference_matches(&p, n, *i)).collect();
        prop_assert_eq!(result.len(), expected.len());
        for (row, (name, num)) in result.rows.iter().zip(expected) {
            prop_assert_eq!(&row[0], &Value::text(name));
            prop_assert_eq!(&row[1], &Value::Int(*num));
        }
    }

    #[test]
    fn double_negation_is_identity(rows in arb_rows(), p in arb_predicate()) {
        let table = table_from_rows(&rows);
        let direct = Query::new().filter(p.clone()).run(&table).expect("valid");
        let double_neg = Query::new()
            .filter(Predicate::Not(Box::new(Predicate::Not(Box::new(p)))))
            .run(&table)
            .expect("valid");
        prop_assert_eq!(direct, double_neg);
    }

    #[test]
    fn limit_is_prefix_of_unlimited(rows in arb_rows(), p in arb_predicate(), k in 0usize..10) {
        let table = table_from_rows(&rows);
        let full = Query::new().filter(p.clone()).run(&table).expect("valid");
        let limited = Query::new().filter(p).limit(k).run(&table).expect("valid");
        prop_assert_eq!(limited.len(), full.len().min(k));
        prop_assert_eq!(&limited.rows[..], &full.rows[..limited.len()]);
    }

    #[test]
    fn projection_preserves_row_count(rows in arb_rows(), p in arb_predicate()) {
        let table = table_from_rows(&rows);
        let full = Query::new().filter(p.clone()).run(&table).expect("valid");
        let projected = Query::new().filter(p).select(["num"]).run(&table).expect("valid");
        prop_assert_eq!(projected.len(), full.len());
        prop_assert!(projected.rows.iter().all(|r| r.len() == 1));
    }
}
