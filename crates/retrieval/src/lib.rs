//! `cosoft-retrieval` — a small in-memory relation engine, the database
//! substrate behind the cooperative TORI interface of §4.
//!
//! TORI ("Task-Oriented database Retrieval Interface") generates query and
//! result forms from high-level descriptions; its query forms combine
//! comparison-operator menus (`substring`, `like-one-of`, ...) with text
//! input fields per attribute and view menus selecting a set of query
//! attributes. This crate provides exactly the machinery those forms
//! need: typed tables, the paper's comparison operators as predicates,
//! attribute projections (views) and deterministic result sets.
//!
//! # Example
//!
//! ```
//! use cosoft_retrieval::{ColumnType, Predicate, Query, Table, Value};
//!
//! # fn main() -> Result<(), cosoft_retrieval::DbError> {
//! let mut table = Table::new(
//!     "papers",
//!     vec![("author", ColumnType::Text), ("year", ColumnType::Int)],
//! )?;
//! table.insert(vec![Value::text("Hoppe"), Value::Int(1994)])?;
//! table.insert(vec![Value::text("Zhao"), Value::Int(1994)])?;
//! table.insert(vec![Value::text("Stefik"), Value::Int(1987)])?;
//!
//! let result = Query::new()
//!     .filter(Predicate::substring("author", "o"))
//!     .select(["author"])
//!     .run(&table)?;
//! assert_eq!(result.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;

/// Column type of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// UTF-8 text.
    Text,
    /// 64-bit signed integer.
    Int,
}

/// A field value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Text field.
    Text(String),
    /// Integer field.
    Int(i64),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: &str) -> Value {
        Value::Text(s.to_owned())
    }

    /// The value's column type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Text(_) => ColumnType::Text,
            Value::Int(_) => ColumnType::Int,
        }
    }

    /// The text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// The integer content, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Text(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Error produced by the relation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A column name appears twice in a schema.
    DuplicateColumn {
        /// The duplicated name.
        name: String,
    },
    /// A referenced column does not exist.
    UnknownColumn {
        /// The unresolved name.
        name: String,
    },
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided field count.
        actual: usize,
    },
    /// A field's type does not match its column.
    TypeMismatch {
        /// The column name.
        column: String,
        /// Expected type.
        expected: ColumnType,
    },
    /// A predicate compares a column against an incompatible operand.
    PredicateType {
        /// The column name.
        column: String,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateColumn { name } => write!(f, "duplicate column {name:?}"),
            DbError::UnknownColumn { name } => write!(f, "unknown column {name:?}"),
            DbError::ArityMismatch { expected, actual } => {
                write!(f, "row has {actual} fields, schema has {expected} columns")
            }
            DbError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} expects {expected:?}")
            }
            DbError::PredicateType { column, reason } => {
                write!(f, "predicate on column {column:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// A typed in-memory relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<(String, ColumnType)>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateColumn`] on repeated column names.
    pub fn new<N: Into<String>>(
        name: &str,
        columns: Vec<(N, ColumnType)>,
    ) -> Result<Table, DbError> {
        let columns: Vec<(String, ColumnType)> =
            columns.into_iter().map(|(n, t)| (n.into(), t)).collect();
        let mut seen = BTreeSet::new();
        for (n, _) in &columns {
            if !seen.insert(n.clone()) {
                return Err(DbError::DuplicateColumn { name: n.clone() });
            }
        }
        Ok(Table { name: name.to_owned(), columns, rows: Vec::new() })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Index and type of a column.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`].
    pub fn column(&self, name: &str) -> Result<(usize, ColumnType), DbError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i, self.columns[i].1))
            .ok_or_else(|| DbError::UnknownColumn { name: name.to_owned() })
    }

    /// Inserts a row after validating arity and field types.
    ///
    /// # Errors
    ///
    /// [`DbError::ArityMismatch`] or [`DbError::TypeMismatch`].
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch { expected: self.columns.len(), actual: row.len() });
        }
        for ((name, ty), field) in self.columns.iter().zip(&row) {
            if field.column_type() != *ty {
                return Err(DbError::TypeMismatch { column: name.clone(), expected: *ty });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(Vec::as_slice)
    }
}

/// A comparison predicate — TORI's "menus for selecting comparison
/// operators (e.g. substring, like-one-of, etc.)".
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (an empty query form field).
    True,
    /// Exact equality.
    Eq(String, Value),
    /// Case-insensitive substring containment (text columns).
    Substring(String, String),
    /// Case-insensitive prefix match (text columns).
    Prefix(String, String),
    /// Membership in a set of alternatives ("like-one-of").
    LikeOneOf(String, Vec<String>),
    /// Inclusive integer range.
    Range(String, i64, i64),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for [`Predicate::Substring`].
    pub fn substring(column: &str, needle: &str) -> Predicate {
        Predicate::Substring(column.to_owned(), needle.to_owned())
    }

    /// Convenience constructor for [`Predicate::Eq`].
    pub fn eq(column: &str, value: Value) -> Predicate {
        Predicate::Eq(column.to_owned(), value)
    }

    /// Convenience constructor for [`Predicate::LikeOneOf`].
    pub fn like_one_of<I, S>(column: &str, alternatives: I) -> Predicate
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Predicate::LikeOneOf(column.to_owned(), alternatives.into_iter().map(Into::into).collect())
    }

    /// Parses an operator name as shown in a TORI operator menu plus its
    /// textual operand into a predicate.
    ///
    /// Supported operators: `equals`, `substring`, `prefix`,
    /// `like-one-of` (comma-separated alternatives), `range` (`lo..hi`).
    /// An empty operand yields [`Predicate::True`] (field left blank).
    ///
    /// # Errors
    ///
    /// [`DbError::PredicateType`] for unknown operators or malformed
    /// range syntax.
    pub fn from_operator(
        column: &str,
        operator: &str,
        operand: &str,
    ) -> Result<Predicate, DbError> {
        if operand.is_empty() {
            return Ok(Predicate::True);
        }
        match operator {
            "equals" => Ok(match operand.parse::<i64>() {
                Ok(i) => Predicate::Eq(column.to_owned(), Value::Int(i)),
                Err(_) => Predicate::Eq(column.to_owned(), Value::text(operand)),
            }),
            "substring" => Ok(Predicate::substring(column, operand)),
            "prefix" => Ok(Predicate::Prefix(column.to_owned(), operand.to_owned())),
            "like-one-of" => Ok(Predicate::like_one_of(
                column,
                operand.split(',').map(str::trim).filter(|s| !s.is_empty()),
            )),
            "range" => {
                let parts: Vec<&str> = operand.splitn(2, "..").collect();
                let (lo, hi) = match parts.as_slice() {
                    [lo, hi] => (lo.trim().parse::<i64>(), hi.trim().parse::<i64>()),
                    _ => {
                        return Err(DbError::PredicateType {
                            column: column.to_owned(),
                            reason: "range operand must be lo..hi",
                        })
                    }
                };
                match (lo, hi) {
                    (Ok(lo), Ok(hi)) => Ok(Predicate::Range(column.to_owned(), lo, hi)),
                    _ => Err(DbError::PredicateType {
                        column: column.to_owned(),
                        reason: "range bounds must be integers",
                    }),
                }
            }
            _ => Err(DbError::PredicateType {
                column: column.to_owned(),
                reason: "unknown comparison operator",
            }),
        }
    }

    /// Evaluates the predicate against a row of `table`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`] or [`DbError::PredicateType`] on schema
    /// mismatches.
    pub fn matches(&self, table: &Table, row: &[Value]) -> Result<bool, DbError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Eq(col, v) => {
                let (i, _) = table.column(col)?;
                Ok(&row[i] == v)
            }
            Predicate::Substring(col, needle) => {
                let (i, ty) = table.column(col)?;
                if ty != ColumnType::Text {
                    return Err(DbError::PredicateType {
                        column: col.clone(),
                        reason: "substring requires a text column",
                    });
                }
                Ok(row[i]
                    .as_text()
                    .map(|s| s.to_lowercase().contains(&needle.to_lowercase()))
                    .unwrap_or(false))
            }
            Predicate::Prefix(col, prefix) => {
                let (i, ty) = table.column(col)?;
                if ty != ColumnType::Text {
                    return Err(DbError::PredicateType {
                        column: col.clone(),
                        reason: "prefix requires a text column",
                    });
                }
                Ok(row[i]
                    .as_text()
                    .map(|s| s.to_lowercase().starts_with(&prefix.to_lowercase()))
                    .unwrap_or(false))
            }
            Predicate::LikeOneOf(col, alternatives) => {
                let (i, _) = table.column(col)?;
                let cell = row[i].to_string().to_lowercase();
                Ok(alternatives.iter().any(|a| a.to_lowercase() == cell))
            }
            Predicate::Range(col, lo, hi) => {
                let (i, ty) = table.column(col)?;
                if ty != ColumnType::Int {
                    return Err(DbError::PredicateType {
                        column: col.clone(),
                        reason: "range requires an integer column",
                    });
                }
                Ok(row[i].as_int().map(|v| v >= *lo && v <= *hi).unwrap_or(false))
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.matches(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.matches(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(p) => Ok(!p.matches(table, row)?),
        }
    }
}

/// A query: predicate + projection (TORI's "view", i.e. a set of query
/// attributes) + optional limit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    predicate: Option<Predicate>,
    projection: Option<Vec<String>>,
    limit: Option<usize>,
}

impl Query {
    /// Creates a query matching everything with all columns.
    pub fn new() -> Query {
        Query::default()
    }

    /// Sets the filter predicate (replacing any previous one).
    pub fn filter(mut self, predicate: Predicate) -> Query {
        self.predicate = Some(predicate);
        self
    }

    /// Sets the projected columns — the selected "view".
    pub fn select<I, S>(mut self, columns: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.projection = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Caps the number of result rows.
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Executes the query.
    ///
    /// # Errors
    ///
    /// Schema errors from the predicate or projection.
    pub fn run(&self, table: &Table) -> Result<ResultSet, DbError> {
        let projection: Vec<(String, usize)> = match &self.projection {
            Some(cols) => {
                let mut v = Vec::with_capacity(cols.len());
                for c in cols {
                    let (i, _) = table.column(c)?;
                    v.push((c.clone(), i));
                }
                v
            }
            None => {
                table.column_names().iter().enumerate().map(|(i, n)| ((*n).to_owned(), i)).collect()
            }
        };
        let predicate = self.predicate.clone().unwrap_or(Predicate::True);
        let mut rows = Vec::new();
        for row in table.rows() {
            if self.limit.map(|k| rows.len() >= k).unwrap_or(false) {
                break;
            }
            if predicate.matches(table, row)? {
                rows.push(projection.iter().map(|(_, i)| row[*i].clone()).collect());
            }
        }
        Ok(ResultSet { columns: projection.into_iter().map(|(n, _)| n).collect(), rows })
    }
}

/// The rows produced by a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Projected column names.
    pub columns: Vec<String>,
    /// Result rows in table order.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders each row as a tab-separated line (the form the TORI result
    /// table widget displays).
    pub fn to_lines(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("\t"))
            .collect()
    }
}

/// Builds the sample literature database used by the TORI example and
/// benchmarks: `papers(author, title, venue, year)` with `n` rows derived
/// deterministically from `seed`.
pub fn sample_literature_db(seed: u64, n: usize) -> Table {
    let authors = [
        "Zhao",
        "Hoppe",
        "Stefik",
        "Ellis",
        "Gibbs",
        "Rein",
        "Patterson",
        "Dewan",
        "Greenberg",
        "Lauwers",
    ];
    let topics = [
        "group editors",
        "shared windows",
        "hypertext",
        "floor control",
        "awareness",
        "coupling",
        "undo",
        "toolkits",
        "classrooms",
        "retrieval",
    ];
    let venues = ["CSCW", "CHI", "UIST", "ICDCS", "ECSCW"];
    let mut table = Table::new(
        "papers",
        vec![
            ("author", ColumnType::Text),
            ("title", ColumnType::Text),
            ("venue", ColumnType::Text),
            ("year", ColumnType::Int),
        ],
    )
    .expect("static schema is valid");
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        state
    };
    for i in 0..n {
        let a = authors[(next() % authors.len() as u64) as usize];
        let t = topics[(next() % topics.len() as u64) as usize];
        let v = venues[(next() % venues.len() as u64) as usize];
        let y = 1985 + (next() % 10) as i64;
        table
            .insert(vec![
                Value::text(a),
                Value::Text(format!("On {t} ({i})")),
                Value::text(v),
                Value::Int(y),
            ])
            .expect("generated row matches schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Table {
        let mut t = Table::new(
            "papers",
            vec![
                ("author", ColumnType::Text),
                ("title", ColumnType::Text),
                ("year", ColumnType::Int),
            ],
        )
        .unwrap();
        t.insert(vec![
            Value::text("Zhao"),
            Value::text("Flexible Communication"),
            Value::Int(1994),
        ])
        .unwrap();
        t.insert(vec![Value::text("Hoppe"), Value::text("Classroom Support"), Value::Int(1993)])
            .unwrap();
        t.insert(vec![Value::text("Stefik"), Value::text("WYSIWIS Revised"), Value::Int(1987)])
            .unwrap();
        t.insert(vec![Value::text("Ellis"), Value::text("Groupware Issues"), Value::Int(1990)])
            .unwrap();
        t
    }

    #[test]
    fn schema_validation() {
        assert!(matches!(
            Table::new("t", vec![("a", ColumnType::Text), ("a", ColumnType::Int)]),
            Err(DbError::DuplicateColumn { .. })
        ));
        let mut t = db();
        assert!(matches!(
            t.insert(vec![Value::text("x")]),
            Err(DbError::ArityMismatch { expected: 3, actual: 1 })
        ));
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::text("t"), Value::Int(2)]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn substring_is_case_insensitive() {
        let t = db();
        let r = Query::new().filter(Predicate::substring("author", "ZH")).run(&t).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::text("Zhao"));
    }

    #[test]
    fn prefix_and_eq() {
        let t = db();
        let r =
            Query::new().filter(Predicate::Prefix("title".into(), "class".into())).run(&t).unwrap();
        assert_eq!(r.len(), 1);
        let r = Query::new().filter(Predicate::eq("year", Value::Int(1990))).run(&t).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::text("Ellis"));
    }

    #[test]
    fn like_one_of_matches_alternatives() {
        let t = db();
        let r = Query::new()
            .filter(Predicate::like_one_of("author", ["zhao", "HOPPE", "missing"]))
            .run(&t)
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn range_on_int_column() {
        let t = db();
        let r = Query::new().filter(Predicate::Range("year".into(), 1990, 1993)).run(&t).unwrap();
        assert_eq!(r.len(), 2);
        let err = Query::new().filter(Predicate::Range("author".into(), 0, 1)).run(&t).unwrap_err();
        assert!(matches!(err, DbError::PredicateType { .. }));
    }

    #[test]
    fn boolean_combinators() {
        let t = db();
        let p = Predicate::And(vec![
            Predicate::Range("year".into(), 1990, 1999),
            Predicate::Not(Box::new(Predicate::substring("author", "zhao"))),
        ]);
        let r = Query::new().filter(p).run(&t).unwrap();
        assert_eq!(r.len(), 2); // Hoppe 1993, Ellis 1990
        let p = Predicate::Or(vec![
            Predicate::eq("year", Value::Int(1987)),
            Predicate::eq("year", Value::Int(1994)),
        ]);
        assert_eq!(Query::new().filter(p).run(&t).unwrap().len(), 2);
    }

    #[test]
    fn projection_selects_view() {
        let t = db();
        let r = Query::new().select(["year", "author"]).run(&t).unwrap();
        assert_eq!(r.columns, vec!["year", "author"]);
        assert_eq!(r.rows[0], vec![Value::Int(1994), Value::text("Zhao")]);
        assert!(matches!(
            Query::new().select(["bogus"]).run(&t),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn limit_caps_rows() {
        let t = db();
        let r = Query::new().limit(2).run(&t).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_operand_is_true() {
        let p = Predicate::from_operator("author", "substring", "").unwrap();
        assert_eq!(p, Predicate::True);
    }

    #[test]
    fn operator_parsing() {
        assert_eq!(
            Predicate::from_operator("author", "equals", "Zhao").unwrap(),
            Predicate::eq("author", Value::text("Zhao"))
        );
        assert_eq!(
            Predicate::from_operator("year", "equals", "1994").unwrap(),
            Predicate::eq("year", Value::Int(1994))
        );
        assert_eq!(
            Predicate::from_operator("author", "like-one-of", "a, b,").unwrap(),
            Predicate::like_one_of("author", ["a", "b"])
        );
        assert_eq!(
            Predicate::from_operator("year", "range", "1990..1994").unwrap(),
            Predicate::Range("year".into(), 1990, 1994)
        );
        assert!(Predicate::from_operator("year", "range", "x..y").is_err());
        assert!(Predicate::from_operator("year", "fuzzy", "x").is_err());
    }

    #[test]
    fn result_lines_are_tab_separated() {
        let t = db();
        let r = Query::new()
            .select(["author", "year"])
            .filter(Predicate::eq("author", Value::text("Zhao")))
            .run(&t)
            .unwrap();
        assert_eq!(r.to_lines(), vec!["Zhao\t1994"]);
    }

    #[test]
    fn sample_db_is_deterministic() {
        let a = sample_literature_db(42, 100);
        let b = sample_literature_db(42, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = sample_literature_db(43, 100);
        assert_ne!(a, c);
    }
}
