//! Headless text rendering of widget trees.
//!
//! The coupling model never touches pixels, so the reproduction renders
//! widget trees to indented text — enough for golden tests, demos and the
//! classroom "stylized representation of the student's environment" (§4).

use std::fmt::Write as _;

use cosoft_wire::AttrName;

use crate::tree::{WidgetId, WidgetTree};

/// Renders the whole tree to indented text, showing non-default
/// state-carrying attributes.
///
/// Returns an empty string when the tree has no root.
pub fn render(tree: &WidgetTree) -> String {
    match tree.root() {
        Some(root) => render_from(tree, root),
        None => String::new(),
    }
}

/// Renders the subtree under `id`.
pub fn render_from(tree: &WidgetTree, id: WidgetId) -> String {
    let mut out = String::new();
    render_rec(tree, id, 0, &mut out);
    out
}

fn render_rec(tree: &WidgetTree, id: WidgetId, depth: usize, out: &mut String) {
    let Ok(w) = tree.widget(id) else { return };
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{} \"{}\"", w.kind(), w.name());
    let interesting = [
        AttrName::Title,
        AttrName::Text,
        AttrName::ValueNum,
        AttrName::Items,
        AttrName::Selected,
        AttrName::Checked,
        AttrName::Strokes,
    ];
    let defaults = tree.schema_of(w.kind());
    for name in &interesting {
        if let Some(v) = w.attrs().get(name) {
            let is_default = defaults
                .as_ref()
                .and_then(|s| s.attr(name))
                .map(|spec| &spec.default == v)
                .unwrap_or(false);
            if !is_default {
                let _ = write!(out, " {name}={v}");
            }
        }
    }
    if !w.is_interactable() {
        out.push_str(" [disabled]");
    }
    out.push('\n');
    for &c in w.children() {
        render_rec(tree, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_tree;
    use cosoft_wire::{ObjectPath, WidgetKind};

    #[test]
    fn renders_nested_tree_with_state() {
        let mut tree = build_tree(
            r#"form f title="Demo" {
                 textfield name text="Zhao"
                 slider v value=0.25
                 panel p {
                   toggle t checked=true
                 }
               }"#,
        )
        .unwrap();
        let id = tree.resolve(&ObjectPath::parse("f.name").unwrap()).unwrap();
        tree.set_lock_disabled(id, true).unwrap();
        let text = render(&tree);
        let expected = "form \"f\" title=\"Demo\"\n  textfield \"name\" text=\"Zhao\" [disabled]\n  slider \"v\" value=0.25\n  panel \"p\"\n    toggle \"t\" checked=true\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn default_values_are_hidden() {
        let tree = build_tree(r#"textfield f text="""#).unwrap();
        assert_eq!(render(&tree), "textfield \"f\"\n");
    }

    #[test]
    fn empty_tree_renders_empty() {
        let tree = WidgetTree::new();
        assert_eq!(render(&tree), "");
        let mut tree = WidgetTree::new();
        tree.create_root(WidgetKind::Form, "r").unwrap();
        assert_eq!(render(&tree), "form \"r\"\n");
    }
}
