//! The toolkit facade: widget tree + callback registry + event delivery.
//!
//! Event processing is deliberately split into phases so the coupling
//! runtime can interleave floor control (§3.2):
//!
//! 1. [`Toolkit::input`] — validate the event and apply its *syntactic
//!    feedback* (the immediate local echo), returning an undo record;
//! 2. the coupling layer asks the server for the floor;
//! 3. on grant, [`Toolkit::run_callbacks`] executes the application
//!    callbacks; on rejection, [`FeedbackUndo::rollback`] undoes the echo.
//!
//! [`Toolkit::deliver`] combines the phases for plain single-user use, and
//! [`Toolkit::execute_remote`] implements the receiver side of multiple
//! execution ("simulate the feedback of e; execute callbacks of the event
//! e on object O′").

use std::collections::HashMap;
use std::fmt;

use cosoft_wire::{EventKind, ObjectPath, UiEvent};

use crate::feedback::{apply_feedback, FeedbackUndo};
use crate::tree::{WidgetId, WidgetTree};
use crate::UiError;

/// An application callback attached to a widget's event.
pub type Callback = Box<dyn FnMut(&mut WidgetTree, &UiEvent) + Send>;

/// Widget tree plus callback registry.
#[derive(Default)]
pub struct Toolkit {
    tree: WidgetTree,
    callbacks: HashMap<(ObjectPath, EventKind), Vec<Callback>>,
    /// Count of callback executions, for tests and benchmarks.
    executed: u64,
}

impl fmt::Debug for Toolkit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Toolkit")
            .field("widgets", &self.tree.len())
            .field("callback_slots", &self.callbacks.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Toolkit {
    /// Creates an empty toolkit.
    pub fn new() -> Self {
        Toolkit::default()
    }

    /// Creates a toolkit around an existing tree.
    pub fn from_tree(tree: WidgetTree) -> Self {
        Toolkit { tree, callbacks: HashMap::new(), executed: 0 }
    }

    /// The widget tree.
    pub fn tree(&self) -> &WidgetTree {
        &self.tree
    }

    /// Mutable access to the widget tree.
    pub fn tree_mut(&mut self) -> &mut WidgetTree {
        &mut self.tree
    }

    /// Number of callback executions so far.
    pub fn executed_callbacks(&self) -> u64 {
        self.executed
    }

    /// Attaches a callback to `(path, kind)`.
    pub fn on<F>(&mut self, path: ObjectPath, kind: EventKind, callback: F)
    where
        F: FnMut(&mut WidgetTree, &UiEvent) + Send + 'static,
    {
        self.callbacks.entry((path, kind)).or_default().push(Box::new(callback));
    }

    /// Removes all callbacks attached to `(path, kind)`, returning how many
    /// were removed.
    pub fn off(&mut self, path: &ObjectPath, kind: &EventKind) -> usize {
        self.callbacks.remove(&(path.clone(), kind.clone())).map(|v| v.len()).unwrap_or(0)
    }

    fn validate(&self, event: &UiEvent) -> Result<WidgetId, UiError> {
        let id = self.tree.resolve_required(&event.path)?;
        let w = self.tree.widget(id)?;
        if let Some(schema) = self.tree.schema_of(w.kind()) {
            if !schema.emits(&event.kind) {
                return Err(UiError::InvalidEvent {
                    kind: w.kind().clone(),
                    event: event.kind.clone(),
                });
            }
        }
        Ok(id)
    }

    /// Phase 1 of user-event processing: validates the event against the
    /// widget's schema and interactability, then applies the syntactic
    /// feedback.
    ///
    /// # Errors
    ///
    /// [`UiError::Disabled`] if the widget is locked or disabled;
    /// [`UiError::InvalidEvent`] / [`UiError::BadEventParams`] /
    /// [`UiError::UnknownPath`] on malformed input.
    pub fn input(&mut self, event: &UiEvent) -> Result<FeedbackUndo, UiError> {
        let id = self.validate(event)?;
        if !self.tree.widget(id)?.is_interactable() {
            return Err(UiError::Disabled { path: event.path.clone() });
        }
        apply_feedback(&mut self.tree, id, event)
    }

    /// Phase 2: runs the application callbacks attached to the event.
    ///
    /// Callbacks registered for the exact `(path, kind)` run in
    /// registration order with mutable access to the tree.
    pub fn run_callbacks(&mut self, event: &UiEvent) {
        let key = (event.path.clone(), event.kind.clone());
        if let Some(mut cbs) = self.callbacks.remove(&key) {
            for cb in cbs.iter_mut() {
                cb(&mut self.tree, event);
                self.executed += 1;
            }
            // Merge back, preserving callbacks added *during* execution.
            self.callbacks.entry(key).or_default().splice(0..0, cbs);
        }
    }

    /// Full local delivery: `input` + `run_callbacks` (single-user path,
    /// or events on objects that are not coupled).
    ///
    /// # Errors
    ///
    /// Propagates [`Toolkit::input`] errors; callbacks do not run if the
    /// feedback phase fails.
    pub fn deliver(&mut self, event: &UiEvent) -> Result<FeedbackUndo, UiError> {
        let undo = self.input(event)?;
        self.run_callbacks(event);
        Ok(undo)
    }

    /// Receiver side of multiple execution (§3.2): simulates the feedback
    /// of the (re-targeted) event and executes its callbacks, bypassing
    /// both the interactability check — the object is *expected* to be
    /// disabled by floor control while remote execution happens — and the
    /// schema's event-kind check, because the event may originate from a
    /// *different but compatible* widget kind (§3.3 heterogeneous
    /// coupling).
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] or [`UiError::BadEventParams`].
    pub fn execute_remote(&mut self, event: &UiEvent) -> Result<(), UiError> {
        let id = self.tree.resolve_required(&event.path)?;
        apply_feedback(&mut self.tree, id, event)?;
        self.run_callbacks(event);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{AttrName, Value, WidgetKind};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn setup() -> Toolkit {
        let mut tk = Toolkit::new();
        let root = tk.tree_mut().create_root(WidgetKind::Form, "root").unwrap();
        tk.tree_mut().create(root, WidgetKind::Button, "btn").unwrap();
        tk.tree_mut().create(root, WidgetKind::TextField, "field").unwrap();
        tk
    }

    fn path(s: &str) -> ObjectPath {
        ObjectPath::parse(s).unwrap()
    }

    #[test]
    fn deliver_runs_feedback_then_callbacks() {
        let mut tk = setup();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        tk.on(path("root.field"), EventKind::TextCommitted, move |tree, ev| {
            // Feedback already applied when the callback runs.
            let id = tree.resolve(&ev.path).unwrap();
            assert_eq!(tree.attr(id, &AttrName::Text).unwrap(), &Value::Text("x".into()));
            h.fetch_add(1, Ordering::SeqCst);
        });
        let ev = UiEvent::new(
            path("root.field"),
            EventKind::TextCommitted,
            vec![Value::Text("x".into())],
        );
        tk.deliver(&ev).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(tk.executed_callbacks(), 1);
    }

    #[test]
    fn input_on_disabled_widget_fails() {
        let mut tk = setup();
        let id = tk.tree().resolve(&path("root.btn")).unwrap();
        tk.tree_mut().set_lock_disabled(id, true).unwrap();
        let ev = UiEvent::simple(path("root.btn"), EventKind::Activate);
        assert!(matches!(tk.input(&ev), Err(UiError::Disabled { .. })));
        // But remote execution bypasses the check.
        tk.execute_remote(&ev).unwrap();
    }

    #[test]
    fn invalid_event_kind_rejected() {
        let mut tk = setup();
        let ev = UiEvent::new(path("root.btn"), EventKind::Toggled, vec![Value::Bool(true)]);
        assert!(matches!(tk.input(&ev), Err(UiError::InvalidEvent { .. })));
    }

    #[test]
    fn unknown_path_rejected() {
        let mut tk = setup();
        let ev = UiEvent::simple(path("root.nope"), EventKind::Activate);
        assert!(matches!(tk.input(&ev), Err(UiError::UnknownPath { .. })));
    }

    #[test]
    fn callbacks_only_fire_for_matching_slot() {
        let mut tk = setup();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        tk.on(path("root.btn"), EventKind::Activate, move |_, _| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        tk.deliver(&UiEvent::simple(path("root.btn"), EventKind::Activate)).unwrap();
        tk.deliver(&UiEvent::new(
            path("root.field"),
            EventKind::TextCommitted,
            vec![Value::Text("y".into())],
        ))
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn off_removes_callbacks() {
        let mut tk = setup();
        tk.on(path("root.btn"), EventKind::Activate, |_, _| {});
        tk.on(path("root.btn"), EventKind::Activate, |_, _| {});
        assert_eq!(tk.off(&path("root.btn"), &EventKind::Activate), 2);
        assert_eq!(tk.off(&path("root.btn"), &EventKind::Activate), 0);
    }

    #[test]
    fn rollback_undoes_feedback_after_rejection() {
        let mut tk = setup();
        let ev = UiEvent::new(
            path("root.field"),
            EventKind::TextCommitted,
            vec![Value::Text("rejected".into())],
        );
        let undo = tk.input(&ev).unwrap();
        let id = tk.tree().resolve(&path("root.field")).unwrap();
        assert_eq!(tk.tree().attr(id, &AttrName::Text).unwrap(), &Value::Text("rejected".into()));
        undo.rollback(tk.tree_mut(), id).unwrap();
        assert_eq!(tk.tree().attr(id, &AttrName::Text).unwrap(), &Value::Text(String::new()));
        assert_eq!(tk.executed_callbacks(), 0, "callbacks never ran");
    }

    #[test]
    fn callback_can_mutate_other_widgets() {
        let mut tk = setup();
        // A classic dependent-object callback: button press writes a label.
        let root = tk.tree().root().unwrap();
        tk.tree_mut().create(root, WidgetKind::Label, "status").unwrap();
        tk.on(path("root.btn"), EventKind::Activate, |tree, _| {
            let id = tree.resolve(&ObjectPath::parse("root.status").unwrap()).unwrap();
            tree.set_attr(id, AttrName::Text, Value::Text("pressed".into())).unwrap();
        });
        tk.deliver(&UiEvent::simple(path("root.btn"), EventKind::Activate)).unwrap();
        let id = tk.tree().resolve(&path("root.status")).unwrap();
        assert_eq!(tk.tree().attr(id, &AttrName::Text).unwrap(), &Value::Text("pressed".into()));
    }
}
