//! Syntactic built-in feedback of callback events.
//!
//! The toolkit distinguishes the *syntactic feedback* of an event (the
//! immediate local attribute change a widget performs itself — the toggle
//! flips, the text appears) from the *callbacks* an application attaches.
//! This split is what makes the paper's lock-failure path implementable:
//! "undo syntactic built-in feedback of the event e" (§3.2 algorithm).

use cosoft_wire::{AttrName, EventKind, UiEvent, Value};

use crate::tree::{WidgetId, WidgetTree};
use crate::UiError;

/// Record of attribute values overwritten by one event's syntactic
/// feedback; applying it back restores the pre-event state.
///
/// Rollback restores the recorded previous values unconditionally; *when*
/// a rollback is safe is the coupling runtime's decision (it tracks
/// whether a remote re-execution touched the object since the echo — see
/// the session's per-path remote-execution epochs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeedbackUndo {
    /// `(attribute, value before feedback, value the feedback wrote)`.
    changes: Vec<(AttrName, Option<Value>, Value)>,
}

impl FeedbackUndo {
    /// Whether the event changed any attribute.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Restores the recorded previous values on `widget`.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] if the widget no longer exists.
    pub fn rollback(self, tree: &mut WidgetTree, widget: WidgetId) -> Result<(), UiError> {
        for (name, prev, _written) in self.changes.into_iter().rev() {
            match prev {
                Some(v) => {
                    tree.set_attr_unchecked(widget, name, v)?;
                }
                None => {
                    // The attribute did not exist before; best effort —
                    // reset to the schema default if one is declared.
                    let kind = tree.widget(widget)?.kind().clone();
                    if let Some(default) =
                        tree.schema_of(&kind).and_then(|s| s.attr(&name).map(|a| a.default.clone()))
                    {
                        tree.set_attr_unchecked(widget, name, default)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Applies the syntactic feedback of `event` to `widget`, returning the
/// undo record.
///
/// Feedback per event kind:
///
/// | event | feedback |
/// |---|---|
/// | `Toggled(b)` | `checked := b` |
/// | `SelectionChanged(i)` | `selected := i` |
/// | `TextCommitted(s)` | `text := s` |
/// | `TextEdited(pos, s)` | insert `s` at `pos` (or delete one char when `s` is empty) |
/// | `ValueChanged(x)` | `value := clamp(x, min, max)` |
/// | `StrokeAdded(k)` | append `k` to `strokes` |
/// | `CanvasCleared` | `strokes := []` |
/// | `Activate`, `RowActivated`, `Custom` | none |
///
/// # Errors
///
/// [`UiError::BadEventParams`] when the parameter list does not match the
/// event kind; [`UiError::UnknownPath`] for a dead widget.
pub fn apply_feedback(
    tree: &mut WidgetTree,
    widget: WidgetId,
    event: &UiEvent,
) -> Result<FeedbackUndo, UiError> {
    let mut undo = FeedbackUndo::default();
    let mut set = |tree: &mut WidgetTree, name: AttrName, value: Value| -> Result<(), UiError> {
        let prev = tree.set_attr_unchecked(widget, name.clone(), value.clone())?;
        undo.changes.push((name, prev, value));
        Ok(())
    };

    match &event.kind {
        EventKind::Toggled => {
            let b = param_bool(event, 0)?;
            set(tree, AttrName::Checked, Value::Bool(b))?;
        }
        EventKind::SelectionChanged => {
            let i = param_int(event, 0)?;
            set(tree, AttrName::Selected, Value::Int(i))?;
        }
        EventKind::TextCommitted => {
            let s = param_text(event, 0)?;
            set(tree, AttrName::Text, Value::Text(s))?;
        }
        EventKind::TextEdited => {
            let pos = param_int(event, 0)? as usize;
            let insert = param_text(event, 1)?;
            let current = tree
                .attr(widget, &AttrName::Text)
                .ok()
                .and_then(|v| v.as_text().map(str::to_owned))
                .unwrap_or_default();
            let new_text = apply_edit(&current, pos, &insert);
            set(tree, AttrName::Text, Value::Text(new_text))?;
        }
        EventKind::ValueChanged => {
            let x = param_float(event, 0)?;
            let min = tree.attr(widget, &AttrName::Min).ok().and_then(Value::as_float);
            let max = tree.attr(widget, &AttrName::Max).ok().and_then(Value::as_float);
            let mut clamped = x;
            if let Some(min) = min {
                clamped = clamped.max(min);
            }
            if let Some(max) = max {
                clamped = clamped.min(max);
            }
            set(tree, AttrName::ValueNum, Value::Float(clamped))?;
        }
        EventKind::StrokeAdded => {
            let stroke = match event.params.first() {
                Some(Value::Stroke(pts)) => pts.clone(),
                _ => {
                    return Err(UiError::BadEventParams {
                        event: event.kind.clone(),
                        reason: "param 0 must be a stroke",
                    })
                }
            };
            let mut strokes = match tree.attr(widget, &AttrName::Strokes).ok() {
                Some(Value::StrokeList(s)) => s.clone(),
                _ => Vec::new(),
            };
            strokes.push(stroke);
            set(tree, AttrName::Strokes, Value::StrokeList(strokes))?;
        }
        EventKind::CanvasCleared => {
            set(tree, AttrName::Strokes, Value::StrokeList(Vec::new()))?;
        }
        EventKind::Activate | EventKind::RowActivated | EventKind::Custom(_) => {}
    }
    Ok(undo)
}

fn apply_edit(current: &str, pos: usize, insert: &str) -> String {
    let chars: Vec<char> = current.chars().collect();
    let pos = pos.min(chars.len());
    let mut out: String = chars[..pos].iter().collect();
    if insert.is_empty() {
        // Deletion of the character at `pos`.
        out.extend(chars.get(pos + 1..).unwrap_or(&[]));
    } else {
        out.push_str(insert);
        out.extend(chars.get(pos..).unwrap_or(&[]));
    }
    out
}

fn param_bool(event: &UiEvent, i: usize) -> Result<bool, UiError> {
    event.params.get(i).and_then(Value::as_bool).ok_or(UiError::BadEventParams {
        event: event.kind.clone(),
        reason: "expected bool parameter",
    })
}

fn param_int(event: &UiEvent, i: usize) -> Result<i64, UiError> {
    event.params.get(i).and_then(Value::as_int).ok_or(UiError::BadEventParams {
        event: event.kind.clone(),
        reason: "expected int parameter",
    })
}

fn param_float(event: &UiEvent, i: usize) -> Result<f64, UiError> {
    match event.params.get(i) {
        Some(Value::Float(x)) => Ok(*x),
        Some(Value::Int(n)) => Ok(*n as f64),
        _ => Err(UiError::BadEventParams {
            event: event.kind.clone(),
            reason: "expected numeric parameter",
        }),
    }
}

fn param_text(event: &UiEvent, i: usize) -> Result<String, UiError> {
    event.params.get(i).and_then(|v| v.as_text().map(str::to_owned)).ok_or(
        UiError::BadEventParams { event: event.kind.clone(), reason: "expected text parameter" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosoft_wire::{ObjectPath, WidgetKind};

    fn setup() -> (WidgetTree, WidgetId) {
        let mut t = WidgetTree::new();
        let root = t.create_root(WidgetKind::Form, "root").unwrap();
        (t, root)
    }

    fn ev(kind: EventKind, params: Vec<Value>) -> UiEvent {
        UiEvent::new(ObjectPath::parse("root.w").unwrap(), kind, params)
    }

    #[test]
    fn toggle_feedback_and_rollback() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::ToggleButton, "w").unwrap();
        let undo =
            apply_feedback(&mut t, w, &ev(EventKind::Toggled, vec![Value::Bool(true)])).unwrap();
        assert_eq!(t.attr(w, &AttrName::Checked).unwrap(), &Value::Bool(true));
        undo.rollback(&mut t, w).unwrap();
        assert_eq!(t.attr(w, &AttrName::Checked).unwrap(), &Value::Bool(false));
    }

    #[test]
    fn text_commit_feedback() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::TextField, "w").unwrap();
        apply_feedback(&mut t, w, &ev(EventKind::TextCommitted, vec![Value::Text("abc".into())]))
            .unwrap();
        assert_eq!(t.attr(w, &AttrName::Text).unwrap(), &Value::Text("abc".into()));
    }

    #[test]
    fn text_edit_insert_and_delete() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::TextField, "w").unwrap();
        t.set_attr(w, AttrName::Text, Value::Text("held".into())).unwrap();
        // Insert "llo wor" at position 3 -> "helllo word"? Test simpler ops.
        apply_feedback(
            &mut t,
            w,
            &ev(EventKind::TextEdited, vec![Value::Int(2), Value::Text("X".into())]),
        )
        .unwrap();
        assert_eq!(t.attr(w, &AttrName::Text).unwrap(), &Value::Text("heXld".into()));
        // Delete the inserted char.
        apply_feedback(
            &mut t,
            w,
            &ev(EventKind::TextEdited, vec![Value::Int(2), Value::Text(String::new())]),
        )
        .unwrap();
        assert_eq!(t.attr(w, &AttrName::Text).unwrap(), &Value::Text("held".into()));
    }

    #[test]
    fn edit_positions_are_clamped() {
        assert_eq!(apply_edit("ab", 99, "X"), "abX");
        assert_eq!(apply_edit("ab", 99, ""), "ab");
        assert_eq!(apply_edit("", 0, "a"), "a");
    }

    #[test]
    fn value_changed_clamps_to_range() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::Slider, "w").unwrap();
        apply_feedback(&mut t, w, &ev(EventKind::ValueChanged, vec![Value::Float(7.0)])).unwrap();
        assert_eq!(t.attr(w, &AttrName::ValueNum).unwrap(), &Value::Float(1.0));
        apply_feedback(&mut t, w, &ev(EventKind::ValueChanged, vec![Value::Float(-3.0)])).unwrap();
        assert_eq!(t.attr(w, &AttrName::ValueNum).unwrap(), &Value::Float(0.0));
    }

    #[test]
    fn strokes_accumulate_and_clear() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::Canvas, "w").unwrap();
        let s1 = vec![(0, 0), (1, 1)];
        let s2 = vec![(5, 5)];
        apply_feedback(&mut t, w, &ev(EventKind::StrokeAdded, vec![Value::Stroke(s1.clone())]))
            .unwrap();
        let undo2 =
            apply_feedback(&mut t, w, &ev(EventKind::StrokeAdded, vec![Value::Stroke(s2.clone())]))
                .unwrap();
        assert_eq!(
            t.attr(w, &AttrName::Strokes).unwrap(),
            &Value::StrokeList(vec![s1.clone(), s2])
        );
        undo2.rollback(&mut t, w).unwrap();
        assert_eq!(t.attr(w, &AttrName::Strokes).unwrap(), &Value::StrokeList(vec![s1]));
        apply_feedback(&mut t, w, &ev(EventKind::CanvasCleared, vec![])).unwrap();
        assert_eq!(t.attr(w, &AttrName::Strokes).unwrap(), &Value::StrokeList(vec![]));
    }

    #[test]
    fn activate_has_no_feedback() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::Button, "w").unwrap();
        let undo = apply_feedback(&mut t, w, &ev(EventKind::Activate, vec![])).unwrap();
        assert!(undo.is_empty());
    }

    #[test]
    fn bad_params_rejected() {
        let (mut t, root) = setup();
        let w = t.create(root, WidgetKind::ToggleButton, "w").unwrap();
        let err = apply_feedback(&mut t, w, &ev(EventKind::Toggled, vec![])).unwrap_err();
        assert!(matches!(err, UiError::BadEventParams { .. }));
        let err =
            apply_feedback(&mut t, w, &ev(EventKind::Toggled, vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, UiError::BadEventParams { .. }));
    }
}
