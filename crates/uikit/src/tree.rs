//! The widget tree: an arena of UI objects organized along the
//! parent/child relationship, addressed by hierarchical pathnames (§3).

use cosoft_wire::{AttrMap, AttrName, ObjectPath, StateNode, Value, WidgetKind};

use crate::schema::{SchemaRegistry, WidgetSchema};
use crate::UiError;

/// Index of a widget within a [`WidgetTree`] arena.
///
/// Ids are not reused within the lifetime of a tree, so a stale id held
/// across a destroy is detected rather than silently aliased.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WidgetId(usize);

/// One UI object.
#[derive(Debug, Clone)]
pub struct Widget {
    kind: WidgetKind,
    name: String,
    attrs: AttrMap,
    parent: Option<WidgetId>,
    children: Vec<WidgetId>,
    lock_disabled: bool,
    alive: bool,
}

impl Widget {
    /// The widget's class.
    pub fn kind(&self) -> &WidgetKind {
        &self.kind
    }

    /// The widget's own name (last pathname segment).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The widget's current attribute map.
    pub fn attrs(&self) -> &AttrMap {
        &self.attrs
    }

    /// Child widget ids in creation order.
    pub fn children(&self) -> &[WidgetId] {
        &self.children
    }

    /// Parent widget id, `None` for the root.
    pub fn parent(&self) -> Option<WidgetId> {
        self.parent
    }

    /// Whether floor control has disabled this widget (§3.2 "disable
    /// object").
    pub fn is_lock_disabled(&self) -> bool {
        self.lock_disabled
    }

    /// Whether the widget currently accepts user events: it must be
    /// `enabled` and not disabled by floor control.
    pub fn is_interactable(&self) -> bool {
        !self.lock_disabled
            && self.attrs.get(&AttrName::Enabled).and_then(Value::as_bool).unwrap_or(true)
    }
}

/// Arena of widgets forming one application instance's UI-object tree.
#[derive(Debug, Clone, Default)]
pub struct WidgetTree {
    nodes: Vec<Widget>,
    root: Option<WidgetId>,
    registry: SchemaRegistry,
}

impl WidgetTree {
    /// Creates an empty tree with the builtin schemas.
    pub fn new() -> Self {
        WidgetTree::default()
    }

    /// Creates an empty tree with a custom schema registry.
    pub fn with_registry(registry: SchemaRegistry) -> Self {
        WidgetTree { nodes: Vec::new(), root: None, registry }
    }

    /// Mutable access to the schema registry, for registering custom
    /// widget classes after construction.
    pub fn registry_mut(&mut self) -> &mut SchemaRegistry {
        &mut self.registry
    }

    /// Resolves the schema for a kind through the tree's registry.
    pub fn schema_of(&self, kind: &WidgetKind) -> Option<WidgetSchema> {
        self.registry.resolve(kind)
    }

    /// The root widget id, if a root was created.
    pub fn root(&self) -> Option<WidgetId> {
        self.root
    }

    /// Number of live widgets.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|w| w.alive).count()
    }

    /// Whether the tree has no live widgets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn default_attrs(&self, kind: &WidgetKind) -> AttrMap {
        match self.registry.resolve(kind) {
            Some(schema) => {
                schema.attrs.iter().map(|a| (a.name.clone(), a.default.clone())).collect()
            }
            None => AttrMap::new(),
        }
    }

    /// Creates the root widget.
    ///
    /// # Errors
    ///
    /// [`UiError::RootExists`] if a root was already created.
    pub fn create_root(&mut self, kind: WidgetKind, name: &str) -> Result<WidgetId, UiError> {
        if self.root.is_some() {
            return Err(UiError::RootExists);
        }
        let attrs = self.default_attrs(&kind);
        let id = WidgetId(self.nodes.len());
        self.nodes.push(Widget {
            kind,
            name: name.to_owned(),
            attrs,
            parent: None,
            children: Vec::new(),
            lock_disabled: false,
            alive: true,
        });
        self.root = Some(id);
        Ok(id)
    }

    /// Creates a child widget under `parent`.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead parent id,
    /// [`UiError::NotContainer`] if the parent kind cannot hold children,
    /// [`UiError::DuplicateName`] if a sibling already uses `name`.
    pub fn create(
        &mut self,
        parent: WidgetId,
        kind: WidgetKind,
        name: &str,
    ) -> Result<WidgetId, UiError> {
        let parent_widget = self.widget(parent)?;
        let parent_kind = parent_widget.kind.clone();
        let container = self
            .registry
            .resolve(&parent_kind)
            .map(|s| s.container)
            .unwrap_or_else(|| parent_kind.is_container());
        if !container {
            return Err(UiError::NotContainer { kind: parent_kind });
        }
        if parent_widget
            .children
            .iter()
            .any(|&c| self.nodes[c.0].alive && self.nodes[c.0].name == name)
        {
            return Err(UiError::DuplicateName {
                parent: self.path_of(parent).expect("live parent has path"),
                name: name.to_owned(),
            });
        }
        let attrs = self.default_attrs(&kind);
        let id = WidgetId(self.nodes.len());
        self.nodes.push(Widget {
            kind,
            name: name.to_owned(),
            attrs,
            parent: Some(parent),
            children: Vec::new(),
            lock_disabled: false,
            alive: true,
        });
        self.nodes[parent.0].children.push(id);
        Ok(id)
    }

    /// Destroys a widget and its whole subtree, returning the pathnames of
    /// every destroyed widget (the coupling layer decouples them, §3.2:
    /// "the decoupling algorithm is applied automatically when a UI object
    /// is destroyed").
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead or unknown id.
    pub fn destroy(&mut self, id: WidgetId) -> Result<Vec<ObjectPath>, UiError> {
        self.widget(id)?;
        let mut destroyed = Vec::new();
        self.collect_paths(id, &mut destroyed);
        self.kill(id);
        if let Some(parent) = self.nodes[id.0].parent {
            self.nodes[parent.0].children.retain(|&c| c != id);
        }
        if self.root == Some(id) {
            self.root = None;
        }
        Ok(destroyed)
    }

    fn collect_paths(&self, id: WidgetId, out: &mut Vec<ObjectPath>) {
        if let Some(p) = self.path_of(id) {
            out.push(p);
        }
        for &c in &self.nodes[id.0].children {
            if self.nodes[c.0].alive {
                self.collect_paths(c, out);
            }
        }
    }

    fn kill(&mut self, id: WidgetId) {
        let children = self.nodes[id.0].children.clone();
        for c in children {
            self.kill(c);
        }
        self.nodes[id.0].alive = false;
        self.nodes[id.0].children.clear();
    }

    /// Immutable access to a widget.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] if the id is dead or out of range.
    pub fn widget(&self, id: WidgetId) -> Result<&Widget, UiError> {
        self.nodes
            .get(id.0)
            .filter(|w| w.alive)
            .ok_or_else(|| UiError::UnknownPath { path: ObjectPath::root() })
    }

    /// Resolves a pathname to a widget id.
    ///
    /// The first segment names the root widget; subsequent segments name
    /// the chain of children. The empty (root) path resolves to the root
    /// widget.
    pub fn resolve(&self, path: &ObjectPath) -> Option<WidgetId> {
        let root = self.root?;
        let segs = path.segments();
        if segs.is_empty() {
            return Some(root);
        }
        if self.nodes[root.0].name != segs[0] {
            return None;
        }
        let mut cur = root;
        for seg in &segs[1..] {
            cur = *self.nodes[cur.0]
                .children
                .iter()
                .find(|&&c| self.nodes[c.0].alive && self.nodes[c.0].name == *seg)?;
        }
        Some(cur)
    }

    /// Resolves a pathname, returning an error for diagnostics.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] if no widget lives at `path`.
    pub fn resolve_required(&self, path: &ObjectPath) -> Result<WidgetId, UiError> {
        self.resolve(path).ok_or_else(|| UiError::UnknownPath { path: path.clone() })
    }

    /// Computes the pathname of a live widget (root name included).
    pub fn path_of(&self, id: WidgetId) -> Option<ObjectPath> {
        let w = self.nodes.get(id.0).filter(|w| w.alive)?;
        let mut segs = vec![w.name.clone()];
        let mut cur = w.parent;
        while let Some(p) = cur {
            segs.push(self.nodes[p.0].name.clone());
            cur = self.nodes[p.0].parent;
        }
        segs.reverse();
        ObjectPath::from_segments(segs).ok()
    }

    /// Reads an attribute value.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead id; [`UiError::InvalidAttr`] if
    /// the attribute is not present.
    pub fn attr(&self, id: WidgetId, name: &AttrName) -> Result<&Value, UiError> {
        let w = self.widget(id)?;
        w.attrs
            .get(name)
            .ok_or_else(|| UiError::InvalidAttr { kind: w.kind.clone(), attr: name.clone() })
    }

    /// Sets an attribute after schema validation, returning the previous
    /// value (exposing the intermediate result, C-INTERMEDIATE).
    ///
    /// Widgets of unregistered custom kinds accept any attribute.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`], [`UiError::InvalidAttr`] or
    /// [`UiError::TypeMismatch`].
    pub fn set_attr(
        &mut self,
        id: WidgetId,
        name: AttrName,
        value: Value,
    ) -> Result<Option<Value>, UiError> {
        let kind = self.widget(id)?.kind.clone();
        if let Some(schema) = self.registry.resolve(&kind) {
            schema.validate(&name, &value)?;
        }
        Ok(self.nodes[id.0].attrs.insert(name, value))
    }

    /// Sets an attribute without schema validation.
    ///
    /// Used by state application paths that must reproduce a remote state
    /// byte-for-byte (the remote side already validated).
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead id.
    pub fn set_attr_unchecked(
        &mut self,
        id: WidgetId,
        name: AttrName,
        value: Value,
    ) -> Result<Option<Value>, UiError> {
        self.widget(id)?;
        Ok(self.nodes[id.0].attrs.insert(name, value))
    }

    /// Marks a widget (and subtree) as disabled/enabled by floor control.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead id.
    pub fn set_lock_disabled(&mut self, id: WidgetId, disabled: bool) -> Result<(), UiError> {
        self.widget(id)?;
        self.nodes[id.0].lock_disabled = disabled;
        Ok(())
    }

    /// Takes a snapshot of the subtree rooted at `id`.
    ///
    /// With `relevant_only`, attributes are filtered to the kind's relevant
    /// set (the coupling payload of §3.1); otherwise the full state is
    /// captured (used for the historical-UI-state store).
    ///
    /// The `semantic` payloads are left empty; the coupling layer fills
    /// them through the application's `store` hooks.
    ///
    /// # Errors
    ///
    /// [`UiError::UnknownPath`] for a dead id.
    pub fn snapshot(&self, id: WidgetId, relevant_only: bool) -> Result<StateNode, UiError> {
        let w = self.widget(id)?;
        let mut node = StateNode::new(w.kind.clone(), &w.name);
        let schema = self.registry.resolve(&w.kind);
        for (k, v) in &w.attrs {
            let include = if relevant_only {
                match &schema {
                    Some(s) => s.attr(k).map(|a| a.relevant).unwrap_or(false),
                    // Unregistered custom kinds: everything is relevant.
                    None => true,
                }
            } else {
                true
            };
            if include {
                node.attrs.insert(k.clone(), v.clone());
            }
        }
        for &c in &w.children {
            if self.nodes[c.0].alive {
                node.children.push(self.snapshot(c, relevant_only)?);
            }
        }
        Ok(node)
    }

    /// Walks the live subtree under `id` in pre-order.
    pub fn walk(&self, id: WidgetId) -> Vec<WidgetId> {
        let mut out = Vec::new();
        if self.widget(id).is_ok() {
            self.walk_rec(id, &mut out);
        }
        out
    }

    fn walk_rec(&self, id: WidgetId, out: &mut Vec<WidgetId>) {
        out.push(id);
        for &c in &self.nodes[id.0].children {
            if self.nodes[c.0].alive {
                self.walk_rec(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_form() -> (WidgetTree, WidgetId) {
        let mut t = WidgetTree::new();
        let root = t.create_root(WidgetKind::Form, "root").unwrap();
        (t, root)
    }

    #[test]
    fn create_and_resolve() {
        let (mut t, root) = tree_with_form();
        let panel = t.create(root, WidgetKind::Panel, "panel").unwrap();
        let btn = t.create(panel, WidgetKind::Button, "ok").unwrap();
        assert_eq!(t.resolve(&ObjectPath::parse("root.panel.ok").unwrap()), Some(btn));
        assert_eq!(t.resolve(&ObjectPath::parse("root.panel").unwrap()), Some(panel));
        assert_eq!(t.resolve(&ObjectPath::parse("root").unwrap()), Some(root));
        assert_eq!(t.resolve(&ObjectPath::root()), Some(root));
        assert_eq!(t.resolve(&ObjectPath::parse("root.missing").unwrap()), None);
        assert_eq!(t.resolve(&ObjectPath::parse("other").unwrap()), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn path_of_round_trips() {
        let (mut t, root) = tree_with_form();
        let panel = t.create(root, WidgetKind::Panel, "p").unwrap();
        let field = t.create(panel, WidgetKind::TextField, "f").unwrap();
        let p = t.path_of(field).unwrap();
        assert_eq!(p.to_string(), "root.p.f");
        assert_eq!(t.resolve(&p), Some(field));
    }

    #[test]
    fn duplicate_sibling_names_rejected() {
        let (mut t, root) = tree_with_form();
        t.create(root, WidgetKind::Button, "b").unwrap();
        let err = t.create(root, WidgetKind::Button, "b").unwrap_err();
        assert!(matches!(err, UiError::DuplicateName { .. }));
    }

    #[test]
    fn non_container_rejects_children() {
        let (mut t, root) = tree_with_form();
        let btn = t.create(root, WidgetKind::Button, "b").unwrap();
        let err = t.create(btn, WidgetKind::Label, "l").unwrap_err();
        assert!(matches!(err, UiError::NotContainer { kind: WidgetKind::Button }));
    }

    #[test]
    fn second_root_rejected() {
        let (mut t, _) = tree_with_form();
        assert!(matches!(t.create_root(WidgetKind::Form, "again"), Err(UiError::RootExists)));
    }

    #[test]
    fn destroy_removes_subtree_and_reports_paths() {
        let (mut t, root) = tree_with_form();
        let panel = t.create(root, WidgetKind::Panel, "p").unwrap();
        let f1 = t.create(panel, WidgetKind::TextField, "f1").unwrap();
        t.create(panel, WidgetKind::TextField, "f2").unwrap();
        let destroyed = t.destroy(panel).unwrap();
        let paths: Vec<String> = destroyed.iter().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["root.p", "root.p.f1", "root.p.f2"]);
        assert!(t.widget(panel).is_err());
        assert!(t.widget(f1).is_err());
        assert_eq!(t.len(), 1);
        // The name is free again.
        assert!(t.create(root, WidgetKind::Panel, "p").is_ok());
    }

    #[test]
    fn attrs_initialized_from_schema_defaults() {
        let (mut t, root) = tree_with_form();
        let slider = t.create(root, WidgetKind::Slider, "s").unwrap();
        assert_eq!(t.attr(slider, &AttrName::ValueNum).unwrap(), &Value::Float(0.0));
        assert_eq!(t.attr(slider, &AttrName::Max).unwrap(), &Value::Float(1.0));
    }

    #[test]
    fn set_attr_validates_and_returns_previous() {
        let (mut t, root) = tree_with_form();
        let field = t.create(root, WidgetKind::TextField, "f").unwrap();
        let prev = t.set_attr(field, AttrName::Text, Value::Text("hi".into())).unwrap();
        assert_eq!(prev, Some(Value::Text(String::new())));
        assert!(matches!(
            t.set_attr(field, AttrName::Text, Value::Int(3)),
            Err(UiError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.set_attr(field, AttrName::Checked, Value::Bool(true)),
            Err(UiError::InvalidAttr { .. })
        ));
    }

    #[test]
    fn lock_disable_affects_interactability() {
        let (mut t, root) = tree_with_form();
        let btn = t.create(root, WidgetKind::Button, "b").unwrap();
        assert!(t.widget(btn).unwrap().is_interactable());
        t.set_lock_disabled(btn, true).unwrap();
        assert!(!t.widget(btn).unwrap().is_interactable());
        t.set_lock_disabled(btn, false).unwrap();
        t.set_attr(btn, AttrName::Enabled, Value::Bool(false)).unwrap();
        assert!(!t.widget(btn).unwrap().is_interactable());
    }

    #[test]
    fn snapshot_relevant_only_filters_geometry() {
        let (mut t, root) = tree_with_form();
        let field = t.create(root, WidgetKind::TextField, "f").unwrap();
        t.set_attr(field, AttrName::Text, Value::Text("q".into())).unwrap();
        let snap = t.snapshot(field, true).unwrap();
        assert_eq!(snap.attrs.len(), 1);
        assert_eq!(snap.attrs.get(&AttrName::Text), Some(&Value::Text("q".into())));
        let full = t.snapshot(field, false).unwrap();
        assert!(full.attrs.len() > 1);
        assert!(full.attrs.contains_key(&AttrName::Width));
    }

    #[test]
    fn snapshot_captures_subtree() {
        let (mut t, root) = tree_with_form();
        let panel = t.create(root, WidgetKind::Panel, "p").unwrap();
        t.create(panel, WidgetKind::Label, "l").unwrap();
        let snap = t.snapshot(root, true).unwrap();
        assert_eq!(snap.node_count(), 3);
        assert_eq!(snap.children[0].name, "p");
        assert_eq!(snap.children[0].children[0].name, "l");
    }

    #[test]
    fn walk_is_preorder() {
        let (mut t, root) = tree_with_form();
        let p1 = t.create(root, WidgetKind::Panel, "p1").unwrap();
        t.create(p1, WidgetKind::Label, "l1").unwrap();
        t.create(root, WidgetKind::Panel, "p2").unwrap();
        let names: Vec<&str> =
            t.walk(root).into_iter().map(|id| t.widget(id).unwrap().name()).collect();
        assert_eq!(names, vec!["root", "p1", "l1", "p2"]);
    }

    #[test]
    fn custom_kind_accepts_any_attr() {
        let mut t = WidgetTree::new();
        let root = t.create_root(WidgetKind::Custom("simview".into()), "sim").unwrap();
        t.set_attr(root, AttrName::custom("speed"), Value::Float(2.0)).unwrap();
        assert_eq!(t.attr(root, &AttrName::custom("speed")).unwrap(), &Value::Float(2.0));
        // Everything is relevant for unregistered custom kinds.
        let snap = t.snapshot(root, true).unwrap();
        assert!(snap.attrs.contains_key(&AttrName::custom("speed")));
    }
}
