use std::fmt;

use cosoft_wire::{AttrName, EventKind, ObjectPath, WidgetKind};

/// Error produced by toolkit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UiError {
    /// No widget exists at the given path.
    UnknownPath {
        /// The unresolved path.
        path: ObjectPath,
    },
    /// A sibling with the same name already exists.
    DuplicateName {
        /// Parent path.
        parent: ObjectPath,
        /// Conflicting child name.
        name: String,
    },
    /// Attempted to add a child to a non-container widget.
    NotContainer {
        /// The non-container widget's kind.
        kind: WidgetKind,
    },
    /// The attribute is not defined for the widget kind.
    InvalidAttr {
        /// Widget kind.
        kind: WidgetKind,
        /// Offending attribute.
        attr: AttrName,
    },
    /// The value's type does not match the attribute's declared type.
    TypeMismatch {
        /// The attribute being set.
        attr: AttrName,
        /// Expected value type name.
        expected: &'static str,
        /// Actual value type name.
        actual: &'static str,
    },
    /// The event kind is not emitted by the widget kind.
    InvalidEvent {
        /// Widget kind.
        kind: WidgetKind,
        /// Offending event kind.
        event: EventKind,
    },
    /// The event's parameter list is malformed.
    BadEventParams {
        /// The event kind.
        event: EventKind,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The widget is disabled (locked by floor control) and cannot accept
    /// user events.
    Disabled {
        /// Path of the locked widget.
        path: ObjectPath,
    },
    /// A UI-spec source failed to parse.
    SpecParse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The root widget was already created.
    RootExists,
}

impl fmt::Display for UiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiError::UnknownPath { path } => write!(f, "no widget at path {path}"),
            UiError::DuplicateName { parent, name } => {
                write!(f, "widget {parent} already has a child named {name:?}")
            }
            UiError::NotContainer { kind } => write!(f, "{kind} widgets cannot have children"),
            UiError::InvalidAttr { kind, attr } => {
                write!(f, "attribute {attr} is not defined for {kind} widgets")
            }
            UiError::TypeMismatch { attr, expected, actual } => {
                write!(f, "attribute {attr} expects {expected}, got {actual}")
            }
            UiError::InvalidEvent { kind, event } => {
                write!(f, "{kind} widgets do not emit {event} events")
            }
            UiError::BadEventParams { event, reason } => {
                write!(f, "malformed parameters for {event}: {reason}")
            }
            UiError::Disabled { path } => write!(f, "widget {path} is disabled (locked)"),
            UiError::SpecParse { line, reason } => {
                write!(f, "ui-spec parse error at line {line}: {reason}")
            }
            UiError::RootExists => write!(f, "root widget already exists"),
        }
    }
}

impl std::error::Error for UiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = UiError::InvalidAttr { kind: WidgetKind::Button, attr: AttrName::Text };
        assert!(e.to_string().contains("button"));
        let e = UiError::TypeMismatch { attr: AttrName::Text, expected: "text", actual: "int" };
        assert!(e.to_string().contains("expects text"));
        let e = UiError::SpecParse { line: 3, reason: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UiError>();
    }
}
