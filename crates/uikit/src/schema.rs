//! Per-widget-kind attribute schemas.
//!
//! Each widget kind declares its attribute set with default values, the
//! subset of *relevant* attributes ("those that have to be shared (i.e.
//! made identical) when instances of these types are coupled", §3.1), and
//! the callback events the kind emits. Application-defined widget classes
//! register their own schemas in a [`SchemaRegistry`].

use std::collections::HashMap;

use cosoft_wire::{AttrName, EventKind, Value, WidgetKind};

use crate::UiError;

/// Declared type of one attribute with its default value.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSpec {
    /// The attribute name.
    pub name: AttrName,
    /// Default value; its variant also fixes the attribute's type.
    pub default: Value,
    /// Whether the attribute must be made identical between coupled
    /// objects of this kind.
    pub relevant: bool,
}

impl AttrSpec {
    fn new(name: AttrName, default: Value, relevant: bool) -> Self {
        AttrSpec { name, default, relevant }
    }
}

/// Schema of one widget kind.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetSchema {
    /// The widget kind this schema describes.
    pub kind: WidgetKind,
    /// All attributes with defaults, in declaration order.
    pub attrs: Vec<AttrSpec>,
    /// Callback events this kind emits.
    pub events: Vec<EventKind>,
    /// Whether widgets of this kind accept children.
    pub container: bool,
}

impl WidgetSchema {
    /// Looks up an attribute spec by name.
    pub fn attr(&self, name: &AttrName) -> Option<&AttrSpec> {
        self.attrs.iter().find(|a| &a.name == name)
    }

    /// Names of the relevant (couplable) attributes.
    pub fn relevant_attrs(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().filter(|a| a.relevant).map(|a| &a.name)
    }

    /// Whether the widget kind emits `event`.
    pub fn emits(&self, event: &EventKind) -> bool {
        matches!(event, EventKind::Custom(_)) || self.events.contains(event)
    }

    /// Validates that `value` matches the declared type of `name`.
    ///
    /// # Errors
    ///
    /// [`UiError::InvalidAttr`] if the attribute is not declared,
    /// [`UiError::TypeMismatch`] if the value has the wrong variant.
    pub fn validate(&self, name: &AttrName, value: &Value) -> Result<(), UiError> {
        let spec = self
            .attr(name)
            .ok_or_else(|| UiError::InvalidAttr { kind: self.kind.clone(), attr: name.clone() })?;
        if !spec.default.same_type(value) {
            return Err(UiError::TypeMismatch {
                attr: name.clone(),
                expected: spec.default.type_name(),
                actual: value.type_name(),
            });
        }
        Ok(())
    }
}

fn geometry() -> Vec<AttrSpec> {
    vec![
        AttrSpec::new(AttrName::X, Value::Int(0), false),
        AttrSpec::new(AttrName::Y, Value::Int(0), false),
        AttrSpec::new(AttrName::Width, Value::Int(10), false),
        AttrSpec::new(AttrName::Height, Value::Int(1), false),
        AttrSpec::new(AttrName::Enabled, Value::Bool(true), false),
        AttrSpec::new(AttrName::Visible, Value::Bool(true), false),
        AttrSpec::new(AttrName::Foreground, Value::Color(0, 0, 0), false),
        AttrSpec::new(AttrName::Background, Value::Color(255, 255, 255), false),
        AttrSpec::new(AttrName::Font, Value::Text("fixed".into()), false),
    ]
}

fn with_geometry(mut extra: Vec<AttrSpec>) -> Vec<AttrSpec> {
    let mut v = geometry();
    v.append(&mut extra);
    v
}

/// Builds the builtin schema for `kind`, or `None` for custom kinds.
pub fn builtin_schema(kind: &WidgetKind) -> Option<WidgetSchema> {
    let schema = match kind {
        WidgetKind::Form => WidgetSchema {
            kind: WidgetKind::Form,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Title,
                Value::Text(String::new()),
                true,
            )]),
            events: vec![],
            container: true,
        },
        WidgetKind::Panel => WidgetSchema {
            kind: WidgetKind::Panel,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Title,
                Value::Text(String::new()),
                false,
            )]),
            events: vec![],
            container: true,
        },
        WidgetKind::Button => WidgetSchema {
            kind: WidgetKind::Button,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Title,
                Value::Text(String::new()),
                false,
            )]),
            events: vec![EventKind::Activate],
            container: false,
        },
        WidgetKind::ToggleButton => WidgetSchema {
            kind: WidgetKind::ToggleButton,
            attrs: with_geometry(vec![
                AttrSpec::new(AttrName::Title, Value::Text(String::new()), false),
                AttrSpec::new(AttrName::Checked, Value::Bool(false), true),
            ]),
            events: vec![EventKind::Toggled],
            container: false,
        },
        WidgetKind::Menu => WidgetSchema {
            kind: WidgetKind::Menu,
            attrs: with_geometry(vec![
                AttrSpec::new(AttrName::Items, Value::TextList(Vec::new()), true),
                AttrSpec::new(AttrName::Selected, Value::Int(-1), true),
            ]),
            events: vec![EventKind::SelectionChanged],
            container: false,
        },
        WidgetKind::TextField => WidgetSchema {
            kind: WidgetKind::TextField,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Text,
                Value::Text(String::new()),
                true,
            )]),
            events: vec![EventKind::TextCommitted, EventKind::TextEdited],
            container: false,
        },
        WidgetKind::TextArea => WidgetSchema {
            kind: WidgetKind::TextArea,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Text,
                Value::Text(String::new()),
                true,
            )]),
            events: vec![EventKind::TextCommitted, EventKind::TextEdited],
            container: false,
        },
        WidgetKind::Label => WidgetSchema {
            kind: WidgetKind::Label,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Text,
                Value::Text(String::new()),
                true,
            )]),
            events: vec![],
            container: false,
        },
        WidgetKind::List => WidgetSchema {
            kind: WidgetKind::List,
            attrs: with_geometry(vec![
                AttrSpec::new(AttrName::Items, Value::TextList(Vec::new()), true),
                AttrSpec::new(AttrName::Selected, Value::Int(-1), true),
            ]),
            events: vec![EventKind::SelectionChanged, EventKind::RowActivated],
            container: false,
        },
        WidgetKind::Slider => WidgetSchema {
            kind: WidgetKind::Slider,
            attrs: with_geometry(vec![
                AttrSpec::new(AttrName::ValueNum, Value::Float(0.0), true),
                AttrSpec::new(AttrName::Min, Value::Float(0.0), false),
                AttrSpec::new(AttrName::Max, Value::Float(1.0), false),
            ]),
            events: vec![EventKind::ValueChanged],
            container: false,
        },
        WidgetKind::Canvas => WidgetSchema {
            kind: WidgetKind::Canvas,
            attrs: with_geometry(vec![AttrSpec::new(
                AttrName::Strokes,
                Value::StrokeList(Vec::new()),
                true,
            )]),
            events: vec![EventKind::StrokeAdded, EventKind::CanvasCleared],
            container: false,
        },
        WidgetKind::Table => WidgetSchema {
            kind: WidgetKind::Table,
            attrs: with_geometry(vec![
                AttrSpec::new(AttrName::custom("columns"), Value::TextList(Vec::new()), true),
                AttrSpec::new(AttrName::custom("rows"), Value::TextList(Vec::new()), true),
                AttrSpec::new(AttrName::Selected, Value::Int(-1), true),
            ]),
            events: vec![EventKind::RowActivated, EventKind::SelectionChanged],
            container: false,
        },
        WidgetKind::Custom(_) => return None,
    };
    Some(schema)
}

/// Registry resolving widget kinds to schemas, with support for
/// application-defined custom widget classes.
#[derive(Debug, Clone, Default)]
pub struct SchemaRegistry {
    custom: HashMap<String, WidgetSchema>,
}

impl SchemaRegistry {
    /// Creates a registry containing only the builtin schemas.
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Registers (or replaces) the schema of a custom widget class.
    pub fn register(&mut self, schema: WidgetSchema) {
        if let WidgetKind::Custom(name) = &schema.kind {
            self.custom.insert(name.clone(), schema);
        }
    }

    /// Resolves the schema for `kind`.
    ///
    /// Unregistered custom kinds get a permissive fallback: container,
    /// no declared attributes (every set is accepted as-is and treated as
    /// relevant), custom events only.
    pub fn schema(&self, kind: &WidgetKind) -> Option<&WidgetSchema> {
        match kind {
            WidgetKind::Custom(name) => self.custom.get(name),
            _ => None,
        }
    }

    /// Resolves a schema, falling back to the builtin table.
    pub fn resolve(&self, kind: &WidgetKind) -> Option<WidgetSchema> {
        if let Some(s) = self.schema(kind) {
            return Some(s.clone());
        }
        builtin_schema(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_kind_has_schema() {
        for kind in [
            WidgetKind::Form,
            WidgetKind::Panel,
            WidgetKind::Button,
            WidgetKind::ToggleButton,
            WidgetKind::Menu,
            WidgetKind::TextField,
            WidgetKind::TextArea,
            WidgetKind::Label,
            WidgetKind::List,
            WidgetKind::Slider,
            WidgetKind::Canvas,
            WidgetKind::Table,
        ] {
            let s = builtin_schema(&kind).unwrap_or_else(|| panic!("{kind} missing"));
            assert_eq!(s.kind, kind);
            assert!(!s.attrs.is_empty());
        }
    }

    #[test]
    fn relevant_attrs_match_paper_examples() {
        // "two text input fields may have different size and fonts, but
        // just share the same content" (§3.1)
        let tf = builtin_schema(&WidgetKind::TextField).unwrap();
        let relevant: Vec<_> = tf.relevant_attrs().collect();
        assert_eq!(relevant, vec![&AttrName::Text]);
        assert!(!tf.attr(&AttrName::Width).unwrap().relevant);
        assert!(!tf.attr(&AttrName::Font).unwrap().relevant);
    }

    #[test]
    fn validate_accepts_correct_type() {
        let s = builtin_schema(&WidgetKind::Slider).unwrap();
        assert!(s.validate(&AttrName::ValueNum, &Value::Float(0.4)).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let s = builtin_schema(&WidgetKind::Slider).unwrap();
        let err = s.validate(&AttrName::ValueNum, &Value::Int(1)).unwrap_err();
        assert!(matches!(err, UiError::TypeMismatch { .. }));
    }

    #[test]
    fn validate_rejects_undeclared_attr() {
        let s = builtin_schema(&WidgetKind::Button).unwrap();
        let err = s.validate(&AttrName::Checked, &Value::Bool(true)).unwrap_err();
        assert!(matches!(err, UiError::InvalidAttr { .. }));
    }

    #[test]
    fn custom_events_always_allowed() {
        let s = builtin_schema(&WidgetKind::Label).unwrap();
        assert!(s.emits(&EventKind::Custom("poke".into())));
        assert!(!s.emits(&EventKind::Activate));
    }

    #[test]
    fn registry_resolves_custom_kinds() {
        let mut reg = SchemaRegistry::new();
        let kind = WidgetKind::Custom("simview".into());
        reg.register(WidgetSchema {
            kind: kind.clone(),
            attrs: vec![AttrSpec::new(AttrName::custom("speed"), Value::Float(1.0), true)],
            events: vec![EventKind::ValueChanged],
            container: false,
        });
        let s = reg.resolve(&kind).unwrap();
        assert_eq!(s.attrs.len(), 1);
        assert!(reg.resolve(&WidgetKind::Custom("unknown".into())).is_none());
        // Builtins still resolve through the registry.
        assert!(reg.resolve(&WidgetKind::Button).is_some());
    }
}
